//! Barrier-divergence checking.
//!
//! In a barrier-phased program every process must pass through the same
//! sequence of barriers the same number of times. A process that skips a
//! barrier episode (or arrives at a different barrier than its peers)
//! diverges: the phases it believed were separated by a global barrier
//! were not, and any cross-phase accesses lose their ordering edges.
//! Forced barrier episodes recorded by the replayer (a barrier that never
//! collected all arrivals) are divergence by definition.

use dashlat_cpu::events::{EventKind, EventLog};
use dashlat_cpu::ops::BarrierId;

use crate::report::BarrierSummary;

/// Detailed divergence descriptions kept in the summary.
const DETAIL_CAP: usize = 16;

/// Runs the barrier-divergence pass over `log`.
pub fn run(log: &EventLog) -> BarrierSummary {
    let mut seqs: Vec<Vec<BarrierId>> = vec![Vec::new(); log.nprocs];
    let mut out = BarrierSummary::default();
    for ev in &log.events {
        match ev.kind {
            EventKind::BarrierArrive(b) => {
                out.arrivals += 1;
                seqs[ev.pid.0].push(b);
            }
            EventKind::BarrierForced(_) => out.forced += 1,
            _ => {}
        }
    }
    // Processes that never arrive at any barrier are fine (pure
    // lock-based or independent workers); divergence is only judged
    // among the processes that participate in barriers at all.
    let participants: Vec<usize> = (0..log.nprocs).filter(|&p| !seqs[p].is_empty()).collect();
    if let Some(&first) = participants.first() {
        for &p in &participants[1..] {
            if seqs[p] != seqs[first] {
                out.divergent = true;
                if out.details.len() < DETAIL_CAP {
                    out.details.push(format!(
                        "P{p} saw barrier sequence {:?} but P{first} saw {:?}",
                        ids(&seqs[p]),
                        ids(&seqs[first]),
                    ));
                }
            }
        }
    }
    if out.forced > 0 {
        out.divergent = true;
        if out.details.len() < DETAIL_CAP {
            out.details.push(format!(
                "{} barrier episode(s) never collected all arrivals and were force-released",
                out.forced
            ));
        }
    }
    out
}

fn ids(seq: &[BarrierId]) -> Vec<usize> {
    seq.iter().map(|b| b.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dashlat_cpu::events::events_from_trace;
    use dashlat_cpu::ops::{Op, SyncConfig};
    use dashlat_cpu::trace::Trace;
    use dashlat_mem::addr::Addr;

    fn trace(streams: Vec<Vec<Op>>) -> Trace {
        Trace {
            streams,
            sync: SyncConfig {
                lock_addrs: Vec::new(),
                barrier_addrs: vec![Addr(0x2000), Addr(0x2040)],
                labeled_ranges: Vec::new(),
            },
            page_homes: None,
        }
    }

    #[test]
    fn matched_sequences_pass() {
        let t = trace(vec![
            vec![
                Op::Barrier(BarrierId(0)),
                Op::Barrier(BarrierId(1)),
                Op::Done,
            ],
            vec![
                Op::Barrier(BarrierId(0)),
                Op::Barrier(BarrierId(1)),
                Op::Done,
            ],
        ]);
        let s = run(&events_from_trace(&t));
        assert!(!s.divergent, "details: {:?}", s.details);
        assert_eq!(s.arrivals, 4);
        assert_eq!(s.forced, 0);
    }

    #[test]
    fn skipped_episode_diverges() {
        // P1 skips the second barrier entirely: the replayer forces the
        // stuck episode and the arrival sequences differ.
        let t = trace(vec![
            vec![
                Op::Barrier(BarrierId(0)),
                Op::Barrier(BarrierId(1)),
                Op::Done,
            ],
            vec![Op::Barrier(BarrierId(0)), Op::Done],
        ]);
        let s = run(&events_from_trace(&t));
        assert!(s.divergent);
        assert_eq!(s.forced, 1);
        assert!(s.details.iter().any(|d| d.contains("force-released")));
    }

    #[test]
    fn non_participants_are_ignored() {
        let t = trace(vec![
            vec![Op::Barrier(BarrierId(0)), Op::Done],
            vec![Op::Compute(3), Op::Done],
        ]);
        // Only P0 uses barriers; it can never complete the episode, so the
        // replayer forces it -- which *is* divergence (a barrier that
        // gates nothing), but the sequence comparison itself is skipped.
        let s = run(&events_from_trace(&t));
        assert_eq!(s.arrivals, 1);
        assert!(s.divergent);
    }
}
