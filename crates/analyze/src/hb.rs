//! FastTrack-style happens-before race detection.
//!
//! Every process carries a vector clock; acquires join the releasing
//! clock of the lock, barrier episodes join all participants, and each
//! shared location remembers its last write epoch and last read
//! epoch(s). A conflicting access with no ordering edge back to the
//! previous access is a race — unless the location lies in a declared
//! labeled-competing range, in which case the conflict is by design
//! (properly-labeled semantics) and is only counted.

use std::collections::HashMap;

use dashlat_cpu::events::{EventKind, EventLog};
use dashlat_cpu::ops::{BarrierId, LockId, ProcId};
use dashlat_mem::addr::{Addr, LineAddr};
use dashlat_sim::vclock::{Epoch, VectorClock};
use dashlat_sim::Cycle;

use crate::report::{HbSummary, Race, Site, SyncPoint};

/// Detailed race reports kept per run; further races only bump the count.
const RACE_CAP: usize = 64;
/// Detailed race reports kept per location (racy lines tend to race on
/// every iteration; two examples suffice).
const PER_ADDR_CAP: u8 = 2;

#[derive(Debug, Clone)]
struct SiteInfo {
    op_index: u64,
    cycle: Cycle,
    locks: Vec<LockId>,
    last_sync: Option<SyncPoint>,
}

impl SiteInfo {
    fn site(&self, pid: usize, is_write: bool) -> Site {
        Site {
            pid: ProcId(pid),
            op_index: self.op_index,
            cycle: self.cycle,
            is_write,
            locks_held: self.locks.clone(),
            last_sync: self.last_sync,
        }
    }
}

#[derive(Debug, Default)]
enum ReadState {
    #[default]
    None,
    /// The common case: all reads so far ordered, summarized by one epoch.
    One(Epoch, SiteInfo),
    /// Concurrent readers: per-process clocks (FastTrack's read vector).
    Many(HashMap<usize, (u64, SiteInfo)>),
}

#[derive(Debug, Default)]
struct AddrState {
    write: Option<(Epoch, SiteInfo)>,
    reads: ReadState,
    reported: u8,
}

/// Pass state.
struct Hb<'a> {
    log: &'a EventLog,
    clocks: Vec<VectorClock>,
    lock_clocks: HashMap<LockId, VectorClock>,
    barrier_pending: HashMap<BarrierId, (VectorClock, Vec<usize>)>,
    held: Vec<Vec<LockId>>,
    last_sync: Vec<Option<SyncPoint>>,
    addrs: HashMap<Addr, AddrState>,
    last_prefetch: HashMap<LineAddr, Cycle>,
    out: HbSummary,
}

/// Runs the happens-before pass over `log`.
pub fn run(log: &EventLog) -> HbSummary {
    let n = log.nprocs;
    let mut clocks: Vec<VectorClock> = (0..n).map(|_| VectorClock::new(n)).collect();
    for (p, c) in clocks.iter_mut().enumerate() {
        c.inc(p);
    }
    let mut hb = Hb {
        log,
        clocks,
        lock_clocks: HashMap::new(),
        barrier_pending: HashMap::new(),
        held: vec![Vec::new(); n],
        last_sync: vec![None; n],
        addrs: HashMap::new(),
        last_prefetch: HashMap::new(),
        out: HbSummary::default(),
    };
    for ev in &log.events {
        let p = ev.pid.0;
        match ev.kind {
            EventKind::Read(a) => hb.access(p, a, ev.op_index, ev.cycle, false),
            EventKind::Write(a) => hb.access(p, a, ev.op_index, ev.cycle, true),
            EventKind::Prefetch { addr, .. } => {
                hb.last_prefetch.insert(addr.line(), ev.cycle);
            }
            EventKind::Acquire(l) => {
                if let Some(lc) = hb.lock_clocks.get(&l) {
                    hb.clocks[p].join(lc);
                }
                hb.held[p].push(l);
                hb.last_sync[p] = Some(SyncPoint::Acquire(l, ev.op_index));
            }
            EventKind::Release(l) => {
                let snapshot = hb.clocks[p].clone();
                hb.lock_clocks.insert(l, snapshot);
                hb.clocks[p].inc(p);
                if let Some(i) = hb.held[p].iter().rposition(|&h| h == l) {
                    hb.held[p].remove(i);
                }
                hb.last_sync[p] = Some(SyncPoint::Release(l, ev.op_index));
            }
            EventKind::BarrierArrive(b) => {
                let n = hb.log.nprocs;
                let entry = hb
                    .barrier_pending
                    .entry(b)
                    .or_insert_with(|| (VectorClock::new(n), Vec::new()));
                entry.0.join(&hb.clocks[p]);
                entry.1.push(p);
                hb.last_sync[p] = Some(SyncPoint::Barrier(b, ev.op_index));
                if entry.1.len() == n {
                    let (joined, arrived) = hb.barrier_pending.remove(&b).expect("just inserted");
                    for q in arrived {
                        hb.clocks[q].assign(&joined);
                        hb.clocks[q].inc(q);
                    }
                }
            }
            EventKind::BarrierForced(b) => {
                // Forced release of a stuck episode: discard it without
                // creating any ordering edge.
                hb.barrier_pending.remove(&b);
            }
            EventKind::Done => {}
        }
    }
    hb.out
}

impl Hb<'_> {
    fn site_info(&self, p: usize, op_index: u64, cycle: Cycle) -> SiteInfo {
        SiteInfo {
            op_index,
            cycle,
            locks: self.held[p].clone(),
            last_sync: self.last_sync[p],
        }
    }

    fn access(&mut self, p: usize, a: Addr, op_index: u64, cycle: Cycle, is_write: bool) {
        if self.log.sync.label_of(a).is_some() {
            self.out.labeled_accesses += 1;
            return;
        }
        self.out.checked_accesses += 1;
        let info = self.site_info(p, op_index, cycle);
        // Take the state out, work on it, put it back (sidesteps borrow
        // conflicts between the map and the reporter).
        let mut st = self.addrs.remove(&a).unwrap_or_default();
        let clock = self.clocks[p].clone();
        let mut racy_pairs: Vec<(Site, Site)> = Vec::new();

        // Write-X race: the previous write must happen-before us.
        if let Some((we, wsite)) = &st.write {
            if we.pid != p && !we.le(&clock) {
                racy_pairs.push((wsite.site(we.pid, true), info.site(p, is_write)));
            }
        }
        if is_write {
            // Read-write races: every recorded read must happen-before us.
            match &st.reads {
                ReadState::None => {}
                ReadState::One(re, rsite) => {
                    if re.pid != p && !re.le(&clock) {
                        racy_pairs.push((rsite.site(re.pid, false), info.site(p, true)));
                    }
                }
                ReadState::Many(map) => {
                    // Report the lowest unordered reader only (one racy
                    // write would otherwise fan out into nprocs reports).
                    let racy = map
                        .iter()
                        .filter(|(&q, (c, _))| q != p && *c > clock.get(q))
                        .min_by_key(|(&q, _)| q);
                    if let Some((&q, (_, rsite))) = racy {
                        racy_pairs.push((rsite.site(q, false), info.site(p, true)));
                    }
                }
            }
            // The write dominates: it was checked against all prior
            // accesses, so they can be forgotten (FastTrack's write
            // epoch).
            st.write = Some((clock.epoch(p), info));
            st.reads = ReadState::None;
        } else {
            let epoch = clock.epoch(p);
            match &mut st.reads {
                ReadState::None => st.reads = ReadState::One(epoch, info),
                ReadState::One(re, rsite) => {
                    if re.pid == p || re.le(&clock) {
                        // Same reader, or ordered before us: the new read
                        // subsumes it.
                        *re = epoch;
                        *rsite = info;
                    } else {
                        // Concurrent readers: inflate to the read vector.
                        let mut map = HashMap::new();
                        map.insert(re.pid, (re.clock, rsite.clone()));
                        map.insert(p, (epoch.clock, info));
                        st.reads = ReadState::Many(map);
                    }
                }
                ReadState::Many(map) => {
                    map.insert(p, (epoch.clock, info));
                }
            }
        }
        for (first, second) in racy_pairs {
            self.report(a, first, second, &mut st);
        }
        self.addrs.insert(a, st);
    }

    fn report(&mut self, a: Addr, first: Site, second: Site, st: &mut AddrState) {
        self.out.races_total += 1;
        if st.reported >= PER_ADDR_CAP || self.out.races.len() >= RACE_CAP {
            return;
        }
        st.reported += 1;
        let missing_locks: Vec<LockId> = first
            .locks_held
            .iter()
            .filter(|l| !second.locks_held.contains(l))
            .chain(
                second
                    .locks_held
                    .iter()
                    .filter(|l| !first.locks_held.contains(l)),
            )
            .copied()
            .collect();
        let prefetch_between = self
            .last_prefetch
            .get(&a.line())
            .is_some_and(|&t| t >= first.cycle && t <= second.cycle);
        self.out.races.push(Race {
            addr: a,
            line: a.line(),
            first,
            second,
            missing_locks,
            prefetch_between,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dashlat_cpu::events::events_from_trace;
    use dashlat_cpu::ops::{Op, SyncConfig};
    use dashlat_cpu::trace::Trace;
    use dashlat_cpu::LabeledRange;

    fn trace_with(streams: Vec<Vec<Op>>, labeled: Vec<LabeledRange>) -> Trace {
        Trace {
            streams,
            sync: SyncConfig {
                lock_addrs: vec![Addr(0x1000)],
                barrier_addrs: vec![Addr(0x2000)],
                labeled_ranges: labeled,
            },
            page_homes: None,
        }
    }

    #[test]
    fn locked_conflict_is_ordered() {
        let t = trace_with(
            vec![
                vec![
                    Op::Acquire(LockId(0)),
                    Op::Write(Addr(0x40)),
                    Op::Release(LockId(0)),
                    Op::Done,
                ],
                vec![
                    Op::Acquire(LockId(0)),
                    Op::Write(Addr(0x40)),
                    Op::Release(LockId(0)),
                    Op::Done,
                ],
            ],
            Vec::new(),
        );
        let s = run(&events_from_trace(&t));
        assert_eq!(s.races_total, 0, "races: {:?}", s.races);
        assert_eq!(s.checked_accesses, 2);
    }

    #[test]
    fn unlocked_write_write_is_a_race() {
        let t = trace_with(
            vec![
                vec![Op::Write(Addr(0x40)), Op::Done],
                vec![Op::Write(Addr(0x40)), Op::Done],
            ],
            Vec::new(),
        );
        let s = run(&events_from_trace(&t));
        assert_eq!(s.races_total, 1);
        let r = &s.races[0];
        assert_eq!(r.addr, Addr(0x40));
        assert_eq!(r.line, Addr(0x40).line());
        assert!(r.first.is_write && r.second.is_write);
        let pids = [r.first.pid.0, r.second.pid.0];
        assert!(pids.contains(&0) && pids.contains(&1));
    }

    #[test]
    fn barrier_orders_phases() {
        let t = trace_with(
            vec![
                vec![Op::Write(Addr(0x40)), Op::Barrier(BarrierId(0)), Op::Done],
                vec![
                    Op::Barrier(BarrierId(0)),
                    Op::Read(Addr(0x40)),
                    Op::Write(Addr(0x40)),
                    Op::Done,
                ],
            ],
            Vec::new(),
        );
        let s = run(&events_from_trace(&t));
        assert_eq!(s.races_total, 0, "races: {:?}", s.races);
    }

    #[test]
    fn labeled_range_is_exempt() {
        let t = trace_with(
            vec![
                vec![Op::Write(Addr(0x40)), Op::Done],
                vec![Op::Write(Addr(0x40)), Op::Done],
            ],
            vec![LabeledRange::new(Addr(0x40), 16, "chaotic")],
        );
        let s = run(&events_from_trace(&t));
        assert_eq!(s.races_total, 0);
        assert_eq!(s.labeled_accesses, 2);
        assert_eq!(s.checked_accesses, 0);
    }

    #[test]
    fn concurrent_reads_then_unordered_write_races() {
        // P0 and P1 read concurrently (fine); P2 writes with no sync.
        let t = trace_with(
            vec![
                vec![Op::Read(Addr(0x40)), Op::Done],
                vec![Op::Read(Addr(0x40)), Op::Done],
                vec![Op::Compute(1), Op::Write(Addr(0x40)), Op::Done],
            ],
            Vec::new(),
        );
        let s = run(&events_from_trace(&t));
        assert!(s.races_total >= 1);
        let r = &s.races[0];
        assert!(!r.first.is_write && r.second.is_write);
    }

    #[test]
    fn release_acquire_chain_is_transitive() {
        // P0 -> (lock) -> P1 -> (lock) -> P2; P2's read of P0's write is
        // ordered transitively.
        let t = trace_with(
            vec![
                vec![
                    Op::Write(Addr(0x40)),
                    Op::Acquire(LockId(0)),
                    Op::Release(LockId(0)),
                    Op::Done,
                ],
                vec![
                    Op::Compute(1),
                    Op::Acquire(LockId(0)),
                    Op::Release(LockId(0)),
                    Op::Done,
                ],
                vec![
                    Op::Compute(1),
                    Op::Compute(1),
                    Op::Acquire(LockId(0)),
                    Op::Read(Addr(0x40)),
                    Op::Release(LockId(0)),
                    Op::Done,
                ],
            ],
            Vec::new(),
        );
        let s = run(&events_from_trace(&t));
        // The write itself is before the acquire in P0's program order and
        // the lock chain carries it to P2.
        assert_eq!(s.races_total, 0, "races: {:?}", s.races);
    }

    #[test]
    fn missing_lock_is_named() {
        // P0 writes under lock 0; P1 writes with no lock.
        let t = trace_with(
            vec![
                vec![
                    Op::Acquire(LockId(0)),
                    Op::Write(Addr(0x40)),
                    Op::Release(LockId(0)),
                    Op::Done,
                ],
                vec![Op::Write(Addr(0x40)), Op::Done],
            ],
            Vec::new(),
        );
        let s = run(&events_from_trace(&t));
        assert_eq!(s.races_total, 1);
        assert_eq!(s.races[0].missing_locks, vec![LockId(0)]);
    }
}
