#![deny(missing_docs)]
//! `dashlat-analyze` — multi-pass static/dynamic analysis over simulated
//! reference streams.
//!
//! The paper's latency results are only meaningful for *properly labeled*
//! programs: every pair of competing accesses must either be ordered by
//! synchronization (locks, barriers) or be explicitly labeled as
//! competing. This crate certifies that property over the event streams
//! produced by the machine model (live runs via
//! [`dashlat_cpu::machine::Machine::with_event_log`]) or reconstructed
//! from trace files (fault-tolerant logical replay via
//! [`dashlat_cpu::events::events_from_trace`]).
//!
//! Passes:
//!
//! * [hb] — FastTrack-style vector-clock happens-before race detection;
//!   the pass that grants or denies the properly-labeled verdict.
//! * [lockset] — Eraser-style lockset intersection (lint-grade).
//! * [barrier] — barrier-divergence check (same arrival sequence on every
//!   participating process).
//! * [prefetch] — prefetch-semantics audit (non-binding prefetches must
//!   never be the sole ordering edge; flag useless/late/wrong-mode ones).
//! * [syncbal] — acquire/release pairing and barrier arithmetic lint.
//!
//! Entry points: [`analyze`] over an [`EventLog`], [`analyze_trace`] over
//! a parsed [`Trace`], and [`parse_passes`] for CLI `--analyze` strings.
//!
//! The [`lint`] module is the *static* counterpart: it analyzes extracted
//! programs (not executions) — lock-order deadlock detection, barrier
//! divergence, properly-labeled inference and prefetch placement — with
//! zero simulation cycles. See [`lint::lint_workload`].

pub mod barrier;
pub mod hb;
pub mod lint;
pub mod lockset;
pub mod prefetch;
pub mod report;
pub mod syncbal;

use dashlat_cpu::events::{events_from_trace, EventLog};
use dashlat_cpu::trace::Trace;

pub use report::{
    AnalysisReport, BarrierSummary, HbSummary, LocksetSummary, LocksetWarning, OpTimeline,
    PrefetchSummary, Race, Site, SyncBalanceSummary, SyncIssue, SyncPoint,
};

/// One analysis pass selectable from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassKind {
    /// Vector-clock happens-before race detection (the certifying pass).
    HappensBefore,
    /// Eraser-style lockset lint.
    Lockset,
    /// Barrier-divergence check.
    Barrier,
    /// Prefetch-semantics audit.
    Prefetch,
    /// Acquire/release pairing and barrier arithmetic lint.
    SyncBalance,
}

impl PassKind {
    /// Every pass, in report order.
    pub const ALL: [PassKind; 5] = [
        PassKind::HappensBefore,
        PassKind::Lockset,
        PassKind::Barrier,
        PassKind::Prefetch,
        PassKind::SyncBalance,
    ];

    /// The canonical CLI name of the pass.
    pub fn name(self) -> &'static str {
        match self {
            PassKind::HappensBefore => "hb",
            PassKind::Lockset => "lockset",
            PassKind::Barrier => "barrier",
            PassKind::Prefetch => "prefetch",
            PassKind::SyncBalance => "syncbalance",
        }
    }
}

impl std::fmt::Display for PassKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for PassKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "hb" | "happens-before" | "happensbefore" | "race" | "races" => {
                Ok(PassKind::HappensBefore)
            }
            "lockset" | "eraser" => Ok(PassKind::Lockset),
            "barrier" | "barriers" => Ok(PassKind::Barrier),
            "prefetch" | "prefetches" => Ok(PassKind::Prefetch),
            "syncbalance" | "sync-balance" | "syncbal" => Ok(PassKind::SyncBalance),
            other => Err(format!(
                "unknown analysis pass '{other}' (expected hb, lockset, barrier, prefetch, syncbalance or all)"
            )),
        }
    }
}

/// Parses a comma-separated pass list (`"hb,lockset"`), with `"all"`
/// (or the empty string) selecting every pass.
///
/// # Errors
///
/// Returns a message naming the first unrecognized pass.
pub fn parse_passes(s: &str) -> Result<Vec<PassKind>, String> {
    let s = s.trim();
    if s.is_empty() || s.eq_ignore_ascii_case("all") {
        return Ok(PassKind::ALL.to_vec());
    }
    let mut out = Vec::new();
    for part in s.split(',') {
        let pass: PassKind = part.parse()?;
        if !out.contains(&pass) {
            out.push(pass);
        }
    }
    Ok(out)
}

/// Runs the selected passes over an event log.
///
/// `subject` names the analyzed run in the rendered report (a workload
/// name or trace path).
pub fn analyze(subject: &str, log: &EventLog, passes: &[PassKind]) -> AnalysisReport {
    let mut report = AnalysisReport {
        subject: subject.to_string(),
        nprocs: log.nprocs,
        events: log.len(),
        passes: passes.to_vec(),
        hb: None,
        lockset: None,
        barrier: None,
        prefetch: None,
        sync_balance: None,
        replay_notes: log
            .notes
            .iter()
            .map(std::string::ToString::to_string)
            .collect(),
    };
    for &pass in passes {
        match pass {
            PassKind::HappensBefore => report.hb = Some(hb::run(log)),
            PassKind::Lockset => report.lockset = Some(lockset::run(log)),
            PassKind::Barrier => report.barrier = Some(barrier::run(log)),
            PassKind::Prefetch => report.prefetch = Some(prefetch::run(log)),
            PassKind::SyncBalance => report.sync_balance = Some(syncbal::run(log)),
        }
    }
    // Non-binding prefetches carry no ordering semantics; a race whose
    // only intervening "edge" was a prefetch is the exact pattern the
    // prefetch pass exists to surface. Needs both passes.
    if let (Some(hb), Some(pf)) = (&report.hb, &mut report.prefetch) {
        pf.sole_ordering_edges = hb.races.iter().filter(|r| r.prefetch_between).count() as u64;
    }
    report
}

/// Replays a trace into an event log and runs the selected passes.
pub fn analyze_trace(subject: &str, trace: &Trace, passes: &[PassKind]) -> AnalysisReport {
    let log = events_from_trace(trace);
    analyze(subject, &log, passes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dashlat_cpu::ops::{LockId, Op, SyncConfig};
    use dashlat_mem::addr::Addr;

    fn two_proc_trace(drop_release: bool) -> Trace {
        let mut p0 = vec![
            Op::Acquire(LockId(0)),
            Op::Write(Addr(0x40)),
            Op::Release(LockId(0)),
            Op::Done,
        ];
        if drop_release {
            p0.remove(2);
        }
        Trace {
            streams: vec![
                p0,
                vec![
                    Op::Acquire(LockId(0)),
                    Op::Write(Addr(0x40)),
                    Op::Release(LockId(0)),
                    Op::Done,
                ],
            ],
            sync: SyncConfig {
                lock_addrs: vec![Addr(0x1000)],
                barrier_addrs: Vec::new(),
                labeled_ranges: Vec::new(),
            },
            page_homes: None,
        }
    }

    #[test]
    fn parse_all_and_lists() {
        assert_eq!(parse_passes("all").unwrap(), PassKind::ALL.to_vec());
        assert_eq!(parse_passes("").unwrap(), PassKind::ALL.to_vec());
        assert_eq!(
            parse_passes("hb,lockset,hb").unwrap(),
            vec![PassKind::HappensBefore, PassKind::Lockset]
        );
        assert!(parse_passes("hb,bogus").is_err());
    }

    #[test]
    fn clean_trace_certifies() {
        let report = analyze_trace("test", &two_proc_trace(false), &PassKind::ALL);
        assert_eq!(report.properly_labeled(), Some(true), "{}", report.render());
        assert!(!report.race_detected());
    }

    #[test]
    fn dropped_release_breaks_certification() {
        let report = analyze_trace("test", &two_proc_trace(true), &PassKind::ALL);
        assert_eq!(report.properly_labeled(), Some(false));
        assert!(report.race_detected(), "{}", report.render());
        assert!(!report.replay_notes.is_empty());
    }

    #[test]
    fn no_hb_pass_means_no_verdict() {
        let report = analyze_trace("test", &two_proc_trace(false), &[PassKind::Lockset]);
        assert_eq!(report.properly_labeled(), None);
        let rendered = report.render();
        assert!(rendered.contains("no certification"), "{rendered}");
    }
}
