//! Lock-order deadlock detection over the sync skeleton.
//!
//! Three finding families:
//!
//! * **Lock-order cycles** — a cycle `l₁ → l₂ → … → l₁` in the nested-
//!   acquire graph, where each edge `lᵢ → lᵢ₊₁` witnesses some process
//!   acquiring `lᵢ₊₁` while holding `lᵢ`. A process blocks on at most
//!   one acquire at a time, so a realizable deadlock needs **pairwise
//!   distinct processes** around the cycle (the Goodlock condition);
//!   cycles that reuse a process are structural artifacts — LU's
//!   ready-lock pipeline produces exactly such artifact cycles (priming
//!   acquires run low→high, pivot waits run high→low) and must not be
//!   flagged.
//! * **Unreleased locks** — a lock still held when its holder's stream
//!   ends. If any other process has an acquire of that lock not forced
//!   (by must-happens-before) to precede the holder's, that process can
//!   block forever: a definite static deadlock. This is the pass that
//!   re-catches the original seed LU bug, where the final column's
//!   owner kept its ready-lock into the end barrier.
//! * **Bad releases** — releasing a lock the process does not hold.

use std::collections::HashMap;

use dashlat_cpu::ops::{LockId, ProcId};

use super::report::{DeadlockFindings, LockCycle, UnreleasedLock};
use super::skeleton::{HeldEdge, Skeleton};

/// Most cycles reported per program (each is already fatal).
const CYCLE_CAP: usize = 8;
/// Longest cycle searched for (deadlocks in practice involve few locks).
const MAX_CYCLE_LEN: usize = 6;

/// Runs the deadlock pass.
pub fn run(sk: &Skeleton) -> DeadlockFindings {
    let mut out = DeadlockFindings {
        cycles: find_cycles(&sk.held_edges),
        unreleased: Vec::new(),
        bad_releases: sk.bad_releases.clone(),
    };
    for &(pid, lock, acquired_at) in &sk.unreleased {
        // The unmatched acquire's node index, for must-hb queries.
        let acq_node = sk.syncs[pid.0]
            .iter()
            .position(|n| n.op_index == acquired_at)
            .expect("acquire op is a sync node");
        let waiters: Vec<ProcId> = sk
            .lock_uses
            .get(&lock)
            .map(|uses| {
                uses.iter()
                    .filter(|u| u.pid != pid.0)
                    .filter(|u| !sk.node_must_hb(u.pid, u.acq_node, pid.0, acq_node))
                    .map(|u| ProcId(u.pid))
                    .collect()
            })
            .unwrap_or_default();
        let mut waiters = waiters;
        waiters.sort_unstable();
        waiters.dedup();
        out.unreleased.push(UnreleasedLock {
            pid,
            lock,
            acquired_at,
            waiters,
        });
    }
    out
}

/// Enumerates simple cycles in the nested-acquire graph whose edges can
/// be witnessed by pairwise distinct processes.
fn find_cycles(edges: &[HeldEdge]) -> Vec<LockCycle> {
    // adjacency: held lock -> edges out of it, one witness per
    // (acquired, pid) to keep the search small.
    let mut adj: HashMap<LockId, Vec<HeldEdge>> = HashMap::new();
    for &e in edges {
        let outs = adj.entry(e.held).or_default();
        if !outs
            .iter()
            .any(|o| o.acquired == e.acquired && o.pid == e.pid)
        {
            outs.push(e);
        }
    }
    let mut starts: Vec<LockId> = adj.keys().copied().collect();
    starts.sort_unstable_by_key(|l| l.0);

    let mut cycles = Vec::new();
    let mut seen_lock_sets: Vec<Vec<usize>> = Vec::new();
    for &start in &starts {
        if cycles.len() >= CYCLE_CAP {
            break;
        }
        // DFS from `start`, only visiting locks with id >= start so each
        // cycle is found once (from its minimum lock).
        let mut path: Vec<HeldEdge> = Vec::new();
        dfs(
            start,
            start,
            &adj,
            &mut path,
            &mut cycles,
            &mut seen_lock_sets,
        );
    }
    cycles
}

fn dfs(
    start: LockId,
    at: LockId,
    adj: &HashMap<LockId, Vec<HeldEdge>>,
    path: &mut Vec<HeldEdge>,
    cycles: &mut Vec<LockCycle>,
    seen: &mut Vec<Vec<usize>>,
) {
    if cycles.len() >= CYCLE_CAP || path.len() >= MAX_CYCLE_LEN {
        return;
    }
    let Some(outs) = adj.get(&at) else { return };
    for &e in outs {
        if e.acquired.0 < start.0 {
            continue;
        }
        // Goodlock: every edge in the cycle must come from a distinct
        // process.
        if path.iter().any(|p| p.pid == e.pid) {
            continue;
        }
        if e.acquired == start {
            // A self-edge (path empty, held == acquired) is a process
            // re-acquiring a lock it holds: deadlock on its own.
            let mut full = path.clone();
            full.push(e);
            let mut lockset: Vec<usize> = full.iter().map(|w| w.held.0).collect();
            lockset.sort_unstable();
            if !seen.contains(&lockset) {
                seen.push(lockset);
                cycles.push(LockCycle {
                    locks: full.iter().map(|w| w.held).collect(),
                    witnesses: full
                        .iter()
                        .map(|w| {
                            (
                                ProcId(w.pid),
                                w.held,
                                w.held_since,
                                w.acquired,
                                w.acquired_at,
                            )
                        })
                        .collect(),
                });
            }
            continue;
        }
        if path.iter().any(|p| p.held == e.acquired) {
            continue; // not a simple cycle
        }
        path.push(e);
        dfs(start, e.acquired, adj, path, cycles, seen);
        path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dashlat_cpu::ops::{Op, SyncConfig};
    use dashlat_cpu::trace::Trace;
    use dashlat_mem::addr::Addr;

    fn lint_deadlock(streams: Vec<Vec<Op>>, locks: usize) -> DeadlockFindings {
        let trace = Trace {
            streams,
            sync: SyncConfig {
                lock_addrs: (0..locks).map(|i| Addr(0x1000 + 0x40 * i as u64)).collect(),
                barrier_addrs: Vec::new(),
                labeled_ranges: Vec::new(),
            },
            page_homes: None,
        };
        run(&Skeleton::build(&trace))
    }

    #[test]
    fn ab_ba_cycle_detected() {
        use dashlat_cpu::ops::LockId as L;
        let f = lint_deadlock(
            vec![
                vec![
                    Op::Acquire(L(0)),
                    Op::Acquire(L(1)),
                    Op::Release(L(1)),
                    Op::Release(L(0)),
                    Op::Done,
                ],
                vec![
                    Op::Acquire(L(1)),
                    Op::Acquire(L(0)),
                    Op::Release(L(0)),
                    Op::Release(L(1)),
                    Op::Done,
                ],
            ],
            2,
        );
        assert_eq!(f.cycles.len(), 1, "{f:?}");
        assert_eq!(f.cycles[0].witnesses.len(), 2);
        assert!(f.is_critical());
    }

    #[test]
    fn single_process_reuse_is_not_a_cycle() {
        use dashlat_cpu::ops::LockId as L;
        // One process nests 0->1 in one section and 1->0 in another:
        // a graph cycle, but one process cannot deadlock with itself
        // here (it never holds one while blocked on the other in two
        // places at once).
        let f = lint_deadlock(
            vec![vec![
                Op::Acquire(L(0)),
                Op::Acquire(L(1)),
                Op::Release(L(1)),
                Op::Release(L(0)),
                Op::Acquire(L(1)),
                Op::Acquire(L(0)),
                Op::Release(L(0)),
                Op::Release(L(1)),
                Op::Done,
            ]],
            2,
        );
        assert!(f.cycles.is_empty(), "{f:?}");
    }

    #[test]
    fn consistent_nesting_is_clean() {
        use dashlat_cpu::ops::LockId as L;
        let section = vec![
            Op::Acquire(L(0)),
            Op::Acquire(L(1)),
            Op::Release(L(1)),
            Op::Release(L(0)),
            Op::Done,
        ];
        let f = lint_deadlock(vec![section.clone(), section], 2);
        assert!(!f.is_critical(), "{f:?}");
    }

    #[test]
    fn unreleased_lock_with_waiter_is_definite_deadlock() {
        use dashlat_cpu::ops::LockId as L;
        let f = lint_deadlock(
            vec![
                vec![Op::Acquire(L(0)), Op::Done],
                vec![Op::Acquire(L(0)), Op::Release(L(0)), Op::Done],
            ],
            1,
        );
        assert_eq!(f.unreleased.len(), 1);
        assert_eq!(f.unreleased[0].waiters, vec![ProcId(1)]);
        assert!(f.is_critical());
    }

    #[test]
    fn unreleased_lock_without_waiters_still_flagged() {
        use dashlat_cpu::ops::LockId as L;
        let f = lint_deadlock(vec![vec![Op::Acquire(L(0)), Op::Done]], 1);
        assert_eq!(f.unreleased.len(), 1);
        assert!(f.unreleased[0].waiters.is_empty());
        assert!(f.is_critical());
    }

    #[test]
    fn bad_release_flagged() {
        use dashlat_cpu::ops::LockId as L;
        let f = lint_deadlock(vec![vec![Op::Release(L(0)), Op::Done]], 1);
        assert_eq!(f.bad_releases.len(), 1);
    }
}
