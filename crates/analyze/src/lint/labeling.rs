//! Static properly-labeled (PL) inference.
//!
//! For every cross-process conflicting pair of shared accesses (same
//! byte address, at least one write; `Rmw` counts as a write) the pass
//! decides, from the sync skeleton alone:
//!
//! * **labeled** — the address lies in a declared labeled-competing
//!   range: the race is by design, exempt (PL's "competing and labeled
//!   as such").
//! * **protected** — both sides hold a common lock: mutual exclusion
//!   orders them in every execution even though no *fixed* order is
//!   forced.
//! * **ordered** — one side must-happens-before the other (barrier
//!   phases or forced lock edges).
//! * **competing** — none of the above: a statically possible unlabeled
//!   race. Running this program under RC is unsound (SC-under-RC no
//!   longer follows from the PL theorem), so the pair is a critical
//!   finding.
//!
//! Because the static must-happens-before relation is a subset of the
//! happens-before of any real schedule, every race the dynamic
//! FastTrack pass can ever report is classified *competing* here:
//! static findings ⊇ dynamic findings (the soundness property the
//! property tests pin).
//!
//! The pass also grades the opposite direction: a declared label whose
//! conflicting pairs are all ordered or protected anyway is
//! **over-labeling**. It costs real performance under RC — a labeled
//! (competing) write cannot retire through the write buffer and pays
//! its ownership-miss latency in the open — so each such range is
//! reported with an estimated forfeited stall-cycle count
//! (`writes × write_owned_remote`).

use dashlat_mem::addr::Addr;

use super::report::{CompetingPair, LabelingFindings, OverLabel};
use super::skeleton::{AccessRep, Skeleton};
use super::LintOptions;
use dashlat_cpu::ops::{ProcId, SyncConfig};

/// Witness pairs kept in the report (one per address; the full address
/// list is always kept).
const WITNESS_CAP: usize = 16;

/// Runs the PL-labeling pass.
pub fn run(sk: &Skeleton, sync: &SyncConfig, opts: &LintOptions) -> LabelingFindings {
    let mut out = LabelingFindings {
        addrs_checked: sk.accesses.len(),
        ..Default::default()
    };
    // Per labeled range (by index): (conflicting pairs seen, all of them
    // ordered/protected so far, total writes inside the range).
    let mut label_stats: Vec<(usize, bool, usize)> = vec![(0, true, 0); sync.labeled_ranges.len()];

    let mut addrs: Vec<&Addr> = sk.accesses.keys().collect();
    addrs.sort_unstable();
    for &addr in addrs {
        let reps = &sk.accesses[&addr];
        let label = sync.labeled_ranges.iter().position(|r| r.contains(addr));
        if let Some(li) = label {
            label_stats[li].2 += reps
                .iter()
                .filter(|r| r.is_write)
                .map(|r| r.count)
                .sum::<usize>();
        }
        let mut competing_witness: Option<CompetingPair> = None;
        for (i, a) in reps.iter().enumerate() {
            for b in reps.iter().skip(i + 1) {
                if a.pid == b.pid || (!a.is_write && !b.is_write) {
                    continue;
                }
                out.pairs_checked += 1;
                let ordered = ordered_or_protected(sk, a, b);
                match label {
                    Some(li) => {
                        label_stats[li].0 += 1;
                        if !ordered {
                            label_stats[li].1 = false;
                        }
                    }
                    None => {
                        if !ordered && competing_witness.is_none() {
                            competing_witness = Some(CompetingPair {
                                addr,
                                line: addr.line(),
                                first: (ProcId(a.pid), a.op_index, a.is_write),
                                second: (ProcId(b.pid), b.op_index, b.is_write),
                            });
                        }
                    }
                }
            }
        }
        if let Some(w) = competing_witness {
            out.under_labeled_addrs.push(addr);
            if out.under_labeled.len() < WITNESS_CAP {
                out.under_labeled.push(w);
            }
        }
    }

    let write_miss = opts.write_miss_cycles;
    for (li, range) in sync.labeled_ranges.iter().enumerate() {
        let (pairs, all_ordered, writes) = label_stats[li];
        if pairs == 0 || all_ordered {
            out.over_labeled.push(OverLabel {
                name: range.name.clone(),
                base: range.base,
                len: range.len,
                conflicting_pairs: pairs,
                writes,
                est_stall_cycles: writes as u64 * write_miss,
            });
        }
    }
    out
}

/// True when the pair cannot race in any execution: a forced order in
/// either direction, or a common lock held on both sides.
fn ordered_or_protected(sk: &Skeleton, a: &AccessRep, b: &AccessRep) -> bool {
    if a.held.iter().any(|l| b.held.contains(l)) {
        return true;
    }
    sk.run_must_hb(a.pid, a.op_index, b.pid, b.run)
        || sk.run_must_hb(b.pid, b.op_index, a.pid, a.run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dashlat_cpu::ops::{BarrierId, LabeledRange, LockId, Op};
    use dashlat_cpu::trace::Trace;

    fn lint(streams: Vec<Vec<Op>>, sync: SyncConfig) -> LabelingFindings {
        let trace = Trace {
            streams,
            sync: sync.clone(),
            page_homes: None,
        };
        run(&Skeleton::build(&trace), &sync, &LintOptions::default())
    }

    fn sync(locks: usize, barriers: usize, ranges: Vec<LabeledRange>) -> SyncConfig {
        SyncConfig {
            lock_addrs: (0..locks).map(|i| Addr(0x1000 + 0x40 * i as u64)).collect(),
            barrier_addrs: (0..barriers)
                .map(|i| Addr(0x8000 + 0x40 * i as u64))
                .collect(),
            labeled_ranges: ranges,
        }
    }

    #[test]
    fn unordered_conflict_is_under_labeled() {
        let f = lint(
            vec![
                vec![Op::Write(Addr(0x40)), Op::Done],
                vec![Op::Read(Addr(0x40)), Op::Done],
            ],
            sync(0, 0, vec![]),
        );
        assert!(!f.properly_labeled());
        assert_eq!(f.under_labeled_addrs, vec![Addr(0x40)]);
    }

    #[test]
    fn barrier_ordered_conflict_certifies() {
        let f = lint(
            vec![
                vec![Op::Write(Addr(0x40)), Op::Barrier(BarrierId(0)), Op::Done],
                vec![Op::Barrier(BarrierId(0)), Op::Read(Addr(0x40)), Op::Done],
            ],
            sync(0, 1, vec![]),
        );
        assert!(f.properly_labeled(), "{f:?}");
        assert_eq!(f.pairs_checked, 1);
    }

    #[test]
    fn common_lock_certifies_without_fixed_order() {
        let cs = |v| {
            vec![
                Op::Acquire(LockId(0)),
                Op::Write(Addr(v)),
                Op::Release(LockId(0)),
                Op::Done,
            ]
        };
        let f = lint(vec![cs(0x40), cs(0x40)], sync(1, 0, vec![]));
        assert!(f.properly_labeled(), "{f:?}");
    }

    #[test]
    fn label_exempts_competing_pair() {
        let f = lint(
            vec![
                vec![Op::Write(Addr(0x40)), Op::Done],
                vec![Op::Rmw(Addr(0x40)), Op::Done],
            ],
            sync(0, 0, vec![LabeledRange::new(Addr(0x40), 16, "chaotic")]),
        );
        assert!(f.properly_labeled(), "{f:?}");
        assert!(f.over_labeled.is_empty(), "label is genuinely needed");
    }

    #[test]
    fn needless_label_is_over_labeled_with_cost() {
        let f = lint(
            vec![
                vec![Op::Write(Addr(0x40)), Op::Barrier(BarrierId(0)), Op::Done],
                vec![Op::Barrier(BarrierId(0)), Op::Read(Addr(0x40)), Op::Done],
            ],
            sync(0, 1, vec![LabeledRange::new(Addr(0x40), 16, "needless")]),
        );
        assert!(f.properly_labeled());
        assert_eq!(f.over_labeled.len(), 1);
        let o = &f.over_labeled[0];
        assert_eq!(o.conflicting_pairs, 1);
        assert_eq!(o.writes, 1);
        assert!(o.est_stall_cycles > 0);
    }

    #[test]
    fn unused_label_reported() {
        let f = lint(
            vec![vec![Op::Write(Addr(0x40)), Op::Done]],
            sync(0, 0, vec![LabeledRange::new(Addr(0x800), 64, "unused")]),
        );
        assert_eq!(f.over_labeled.len(), 1);
        assert_eq!(f.over_labeled[0].conflicting_pairs, 0);
    }

    #[test]
    fn reads_only_never_conflict() {
        let f = lint(
            vec![
                vec![Op::Read(Addr(0x40)), Op::Done],
                vec![Op::Read(Addr(0x40)), Op::Done],
            ],
            sync(0, 0, vec![]),
        );
        assert!(f.properly_labeled());
        assert_eq!(f.pairs_checked, 0);
    }
}
