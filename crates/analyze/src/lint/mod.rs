//! `dashlat lint` — whole-program static analysis of workload programs,
//! with **zero simulation cycles**.
//!
//! Where the passes in the crate root analyze *event streams* from a
//! simulated or replayed execution, this module analyzes the *program
//! itself*: the per-process op streams obtained by
//! [`dashlat_cpu::extract::extract_program`] (or any serialized
//! [`Trace`]). Four passes run over the sync-skeleton CFG:
//!
//! 1. [`deadlock`] — lock-order cycles (Goodlock-filtered),
//!    acquire/release imbalance, never-released locks with possible
//!    waiters.
//! 2. barrier divergence — all processes must traverse the same barrier
//!    sequence (computed while building the [`skeleton::Skeleton`]).
//! 3. [`labeling`] — static properly-labeled inference over the
//!    must-happens-before closure; under-labeling is fatal (SC-under-RC
//!    unsound), over-labeling is costed advice.
//! 4. [`prefetch`] — dead / late / duplicate prefetch placement.
//!
//! Entry points: [`lint_workload`] for live workloads and
//! [`lint_trace`] for serialized programs or fixture mutations.

pub mod deadlock;
pub mod labeling;
pub mod prefetch;
pub mod report;
pub mod skeleton;

use dashlat_cpu::extract::{extract_program, ExtractError, ExtractOptions};
use dashlat_cpu::ops::Workload;
use dashlat_cpu::trace::Trace;
use dashlat_mem::latency::LatencyTable;

pub use report::{
    BarrierFindings, CompetingPair, DeadlockFindings, LabelingFindings, LintReport, LockCycle,
    OverLabel, PrefetchLints, Severity, UnreleasedLock,
};
pub use skeleton::{BarrierDivergence, Skeleton};

/// Thresholds and caps for the lint passes.
#[derive(Debug, Clone)]
pub struct LintOptions {
    /// Miss latency a read-shared prefetch must cover (defaults to the
    /// DASH remote read fill).
    pub read_miss_cycles: u64,
    /// Miss latency a read-exclusive prefetch or write must cover
    /// (defaults to the DASH remote ownership acquisition).
    pub write_miss_cycles: u64,
    /// Extraction op budget.
    pub max_total_ops: usize,
}

impl LintOptions {
    /// Thresholds taken from a machine latency table.
    pub fn from_latencies(lat: &LatencyTable) -> Self {
        LintOptions {
            read_miss_cycles: lat.read_fill_remote.as_u64(),
            write_miss_cycles: lat.write_owned_remote.as_u64(),
            max_total_ops: ExtractOptions::default().max_total_ops,
        }
    }
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions::from_latencies(&LatencyTable::dash())
    }
}

/// Lints an extracted (or serialized, or fixture-mutated) program.
///
/// `extraction_notes` and `truncated` come from extraction when the
/// trace was just extracted; pass empty/false for programs loaded from
/// disk.
pub fn lint_trace(
    subject: &str,
    trace: &Trace,
    extraction_notes: Vec<String>,
    truncated: bool,
    opts: &LintOptions,
) -> LintReport {
    let sk = Skeleton::build(trace);
    let deadlock = deadlock::run(&sk);
    let labeling = labeling::run(&sk, &trace.sync, opts);
    let prefetch = prefetch::run(trace, opts);
    LintReport {
        subject: subject.to_string(),
        nprocs: sk.nprocs,
        total_ops: sk.total_ops,
        extraction_notes,
        truncated,
        converged: sk.converged,
        deadlock,
        barriers: BarrierFindings {
            episodes: sk.joined_episodes,
            divergence: sk.divergence.clone(),
        },
        labeling,
        prefetch,
    }
}

/// Extracts a workload's program and lints it.
///
/// # Errors
///
/// Returns [`ExtractError`] when the workload cannot be forked for
/// extraction.
pub fn lint_workload<W: Workload + ?Sized>(
    subject: &str,
    workload: &W,
    opts: &LintOptions,
) -> Result<LintReport, ExtractError> {
    let ext = extract_program(
        workload,
        ExtractOptions {
            max_total_ops: opts.max_total_ops,
        },
    )?;
    let notes = ext.notes.iter().map(ToString::to_string).collect();
    Ok(lint_trace(
        subject,
        &ext.trace,
        notes,
        !ext.truncated.is_empty(),
        opts,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dashlat_cpu::ops::{BarrierId, LockId, Op, SyncConfig};
    use dashlat_cpu::script::ScriptWorkload;
    use dashlat_mem::addr::Addr;

    #[test]
    fn clean_pipeline_lints_clean() {
        let w = ScriptWorkload::new(vec![
            vec![Op::Write(Addr(0x40)), Op::Barrier(BarrierId(0)), Op::Done],
            vec![Op::Barrier(BarrierId(0)), Op::Read(Addr(0x40)), Op::Done],
        ])
        .with_barriers(vec![Addr(0x8000)]);
        let r = lint_workload("clean", &w, &LintOptions::default()).expect("lints");
        assert!(!r.is_critical(), "{}", r.render());
        assert!(!r.is_incomplete());
        assert!(r.labeling.properly_labeled());
        assert_eq!(r.barriers.episodes, 1);
    }

    #[test]
    fn unlabeled_race_is_critical() {
        let w = ScriptWorkload::new(vec![
            vec![Op::Write(Addr(0x40)), Op::Done],
            vec![Op::Read(Addr(0x40)), Op::Done],
        ]);
        let r = lint_workload("racy", &w, &LintOptions::default()).expect("lints");
        assert!(r.is_critical());
        assert!(!r.labeling.properly_labeled());
        assert!(r.render().contains("under-labeled"));
    }

    #[test]
    fn extraction_notes_are_critical() {
        // Dropped release: extraction force-grants, and the static pass
        // also reports the unreleased lock.
        let w = ScriptWorkload::new(vec![
            vec![Op::Acquire(LockId(0)), Op::Done],
            vec![Op::Acquire(LockId(0)), Op::Release(LockId(0)), Op::Done],
        ])
        .with_locks(vec![Addr(0x1000)]);
        let r = lint_workload("stuck", &w, &LintOptions::default()).expect("lints");
        assert!(!r.extraction_notes.is_empty());
        assert!(!r.deadlock.unreleased.is_empty());
        assert!(r.is_critical());
    }

    #[test]
    fn json_is_parseable() {
        let w = ScriptWorkload::new(vec![vec![Op::Write(Addr(0x40)), Op::Done]]);
        let r = lint_workload("json", &w, &LintOptions::default()).expect("lints");
        let v = dashlat_sim::json::Value::parse(&r.to_json()).expect("valid json");
        assert_eq!(v.get("subject").and_then(|s| s.as_str()), Some("json"));
        assert_eq!(
            v.get("critical")
                .and_then(dashlat_sim::json::Value::as_bool),
            Some(false)
        );
        assert!(v.get("labeling").is_some());
    }

    #[test]
    fn lint_trace_accepts_mutated_programs() {
        // The fixture path: mutate a trace (drop a release) and lint it
        // without extraction.
        let t = Trace {
            streams: vec![
                vec![Op::Acquire(LockId(0)), Op::Write(Addr(0x40)), Op::Done],
                vec![
                    Op::Acquire(LockId(0)),
                    Op::Read(Addr(0x40)),
                    Op::Release(LockId(0)),
                    Op::Done,
                ],
            ],
            sync: SyncConfig {
                lock_addrs: vec![Addr(0x1000)],
                barrier_addrs: Vec::new(),
                labeled_ranges: Vec::new(),
            },
            page_homes: None,
        };
        let r = lint_trace("mutated", &t, Vec::new(), false, &LintOptions::default());
        assert_eq!(r.deadlock.unreleased.len(), 1);
        assert_eq!(r.deadlock.unreleased[0].waiters.len(), 1);
        assert!(r.is_critical());
    }
}
