//! Static prefetch placement lints (all advisory).
//!
//! The paper's software-controlled prefetching hides latency only when a
//! prefetch lands early enough and is actually consumed. Walking each
//! process's stream in program order:
//!
//! * **dead** — no demand access (read/write/rmw) touches the
//!   prefetched line before the next synchronization op. Sync ops bound
//!   the useful lifetime: a prefetched line may be invalidated by
//!   whatever the sync ordered, so a prefetch that does not feed a
//!   demand access in its own sync interval bought nothing.
//! * **late** — the static distance to the first demand access of the
//!   line (Σ compute cycles + 1 issue cycle per intervening op) is
//!   below the configured miss latency: the demand access still stalls
//!   for the remainder.
//! * **duplicate** — the line was already prefetched in this sync
//!   interval with no intervening demand access to it.

use std::collections::HashMap;

use dashlat_cpu::ops::{Op, ProcId};
use dashlat_cpu::trace::Trace;
use dashlat_mem::addr::LineAddr;

use super::report::PrefetchLints;
use super::LintOptions;

/// Witness sites kept per category.
const SITE_CAP: usize = 64;

/// Runs the prefetch pass directly over the extracted streams.
pub fn run(trace: &Trace, opts: &LintOptions) -> PrefetchLints {
    let mut out = PrefetchLints::default();
    for (p, stream) in trace.streams.iter().enumerate() {
        let pid = ProcId(p);
        // Open prefetches in the current sync interval:
        // line -> (issue index, exclusive, cycles accumulated since).
        let mut open: HashMap<LineAddr, (usize, bool, u64)> = HashMap::new();
        for (i, &op) in stream.iter().enumerate() {
            match op {
                Op::Prefetch { addr, exclusive } => {
                    out.total += 1;
                    let line = addr.line();
                    if open.contains_key(&line) && out.duplicate.len() < SITE_CAP {
                        out.duplicate.push((pid, i, line));
                    }
                    open.insert(line, (i, exclusive, 0));
                    bump(&mut open, 1);
                }
                Op::Compute(c) => bump(&mut open, c.max(1)),
                Op::Read(a) | Op::Write(a) | Op::Rmw(a) => {
                    let line = a.line();
                    if let Some((at, exclusive, dist)) = open.remove(&line) {
                        let needed = if exclusive || !matches!(op, Op::Read(_)) {
                            opts.write_miss_cycles
                        } else {
                            opts.read_miss_cycles
                        };
                        if dist < needed && out.late.len() < SITE_CAP {
                            out.late.push(((pid, at, line), dist, needed));
                        }
                    }
                    bump(&mut open, 1);
                }
                Op::Acquire(_) | Op::Release(_) | Op::Barrier(_) | Op::Done => {
                    // Interval ends: whatever is still open never fed a
                    // demand access.
                    let mut stale: Vec<(usize, LineAddr)> =
                        open.drain().map(|(l, (at, _, _))| (at, l)).collect();
                    stale.sort_unstable();
                    for (at, l) in stale {
                        if out.dead.len() < SITE_CAP {
                            out.dead.push((pid, at, l));
                        }
                    }
                }
            }
        }
    }
    out
}

fn bump(open: &mut HashMap<LineAddr, (usize, bool, u64)>, cycles: u64) {
    for (_, _, d) in open.values_mut() {
        *d += cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dashlat_cpu::ops::{LockId, SyncConfig};
    use dashlat_mem::addr::Addr;

    fn lints(stream: Vec<Op>) -> PrefetchLints {
        let trace = Trace {
            streams: vec![stream],
            sync: SyncConfig {
                lock_addrs: vec![Addr(0x1000)],
                barrier_addrs: Vec::new(),
                labeled_ranges: Vec::new(),
            },
            page_homes: None,
        };
        run(
            &trace,
            &LintOptions {
                read_miss_cycles: 90,
                write_miss_cycles: 82,
                ..LintOptions::default()
            },
        )
    }

    fn pf(a: u64) -> Op {
        Op::Prefetch {
            addr: Addr(a),
            exclusive: false,
        }
    }

    #[test]
    fn timely_prefetch_is_clean() {
        let f = lints(vec![
            pf(0x40),
            Op::Compute(200),
            Op::Read(Addr(0x40)),
            Op::Done,
        ]);
        assert_eq!(f.total, 1);
        assert!(f.dead.is_empty() && f.late.is_empty() && f.duplicate.is_empty());
    }

    #[test]
    fn late_prefetch_reports_distance() {
        let f = lints(vec![
            pf(0x40),
            Op::Compute(10),
            Op::Read(Addr(0x40)),
            Op::Done,
        ]);
        assert_eq!(f.late.len(), 1);
        let ((_, at, _), dist, needed) = f.late[0];
        assert_eq!(at, 0);
        assert_eq!(dist, 11); // 1 issue cycle + 10 compute
        assert_eq!(needed, 90);
    }

    #[test]
    fn sync_kills_open_prefetch() {
        let f = lints(vec![
            pf(0x40),
            Op::Compute(200),
            Op::Acquire(LockId(0)),
            Op::Read(Addr(0x40)),
            Op::Release(LockId(0)),
            Op::Done,
        ]);
        assert_eq!(f.dead.len(), 1, "{f:?}");
    }

    #[test]
    fn duplicate_prefetch_flagged_but_access_between_resets() {
        let f = lints(vec![
            pf(0x40),
            pf(0x40),
            Op::Compute(200),
            Op::Read(Addr(0x40)),
            pf(0x40),
            Op::Compute(200),
            Op::Read(Addr(0x40)),
            Op::Done,
        ]);
        assert_eq!(f.duplicate.len(), 1);
        assert_eq!(f.total, 3);
    }

    #[test]
    fn exclusive_prefetch_uses_write_threshold() {
        let f = lints(vec![
            Op::Prefetch {
                addr: Addr(0x40),
                exclusive: true,
            },
            Op::Compute(85),
            Op::Write(Addr(0x40)),
            Op::Done,
        ]);
        // 86 cycles covered >= 82 write-miss threshold: not late.
        assert!(f.late.is_empty(), "{f:?}");
    }

    #[test]
    fn same_line_different_byte_still_matches() {
        let f = lints(vec![
            pf(0x40),
            Op::Compute(200),
            Op::Read(Addr(0x48)),
            Op::Done,
        ]);
        assert!(f.dead.is_empty());
    }
}
