//! Findings produced by the static lint passes, the rendered report,
//! and its JSON form.

use dashlat_cpu::ops::{BarrierId, LockId, ProcId};
use dashlat_mem::addr::{Addr, LineAddr};
use dashlat_sim::json::quote;

use super::skeleton::BarrierDivergence;

/// How a finding affects the exit status.
///
/// * `Critical` findings mean the program's sync skeleton is broken
///   (possible deadlock, barrier divergence, statically possible
///   unlabeled race): `dashlat lint` fails.
/// * `Info` findings are performance or hygiene advice (over-labeling,
///   prefetch placement): reported, never fatal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the lint.
    Critical,
    /// Advisory only.
    Info,
}

/// A lock-order cycle: a set of nested acquires that distinct processes
/// can be blocked in simultaneously.
#[derive(Debug, Clone)]
pub struct LockCycle {
    /// The locks around the cycle, in order.
    pub locks: Vec<LockId>,
    /// One witness per cycle edge: `(pid, held lock, held-since op
    /// index, acquired lock, acquire op index)` — all pids distinct.
    pub witnesses: Vec<(ProcId, LockId, usize, LockId, usize)>,
}

impl std::fmt::Display for LockCycle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ring: Vec<String> = self.locks.iter().map(|l| l.0.to_string()).collect();
        writeln!(f, "lock-order cycle {} -> {}:", ring.join(" -> "), ring[0])?;
        for (pid, held, since, acq, at) in &self.witnesses {
            writeln!(
                f,
                "      {pid} acquires lock {} (op #{at}) while holding lock {} (since op #{since})",
                acq.0, held.0
            )?;
        }
        Ok(())
    }
}

/// A lock a process still holds when its stream ends.
#[derive(Debug, Clone)]
pub struct UnreleasedLock {
    /// The holder.
    pub pid: ProcId,
    /// The lock.
    pub lock: LockId,
    /// Stream index of the unmatched acquire.
    pub acquired_at: usize,
    /// Other processes whose acquires of this lock are not forced to
    /// precede the holder's — they can block forever.
    pub waiters: Vec<ProcId>,
}

impl std::fmt::Display for UnreleasedLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} never releases lock {} (acquired op #{})",
            self.pid, self.lock.0, self.acquired_at
        )?;
        if self.waiters.is_empty() {
            write!(f, "; no other process acquires it")
        } else {
            let w: Vec<String> = self.waiters.iter().map(ToString::to_string).collect();
            write!(
                f,
                "; {} can block on it forever — definite deadlock",
                w.join(", ")
            )
        }
    }
}

/// Deadlock-pass findings.
#[derive(Debug, Clone, Default)]
pub struct DeadlockFindings {
    /// Lock-order cycles realizable by distinct processes.
    pub cycles: Vec<LockCycle>,
    /// Locks held past the end of a process's stream.
    pub unreleased: Vec<UnreleasedLock>,
    /// Releases of locks not held: `(pid, lock, op index)`.
    pub bad_releases: Vec<(ProcId, LockId, usize)>,
}

impl DeadlockFindings {
    /// Any finding that fails the lint.
    pub fn is_critical(&self) -> bool {
        !self.cycles.is_empty() || !self.unreleased.is_empty() || !self.bad_releases.is_empty()
    }
}

/// Barrier-pass findings.
#[derive(Debug, Clone, Default)]
pub struct BarrierFindings {
    /// Barrier episodes every process traverses identically.
    pub episodes: usize,
    /// First divergence, if the sequences differ.
    pub divergence: Option<BarrierDivergence>,
}

/// One statically possible unlabeled race (a competing pair the program
/// does not label).
#[derive(Debug, Clone)]
pub struct CompetingPair {
    /// The conflicting byte address.
    pub addr: Addr,
    /// Its cache line.
    pub line: LineAddr,
    /// One side: `(pid, op index, is_write)`.
    pub first: (ProcId, usize, bool),
    /// The other side.
    pub second: (ProcId, usize, bool),
}

impl std::fmt::Display for CompetingPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let k = |w: bool| if w { "write" } else { "read" };
        write!(
            f,
            "addr {:#x}: {} {} (op #{}) vs {} {} (op #{}) — no forced order, no common lock, unlabeled",
            self.addr.0,
            self.first.0,
            k(self.first.2),
            self.first.1,
            self.second.0,
            k(self.second.2),
            self.second.1,
        )
    }
}

/// A declared labeled range the program would certify without.
#[derive(Debug, Clone)]
pub struct OverLabel {
    /// The range's declared name.
    pub name: String,
    /// Range start.
    pub base: Addr,
    /// Range length in bytes.
    pub len: u64,
    /// Conflicting cross-process pairs inside the range (0 = unused
    /// label).
    pub conflicting_pairs: usize,
    /// Writes to the range across all processes.
    pub writes: usize,
    /// Estimated cycles of write latency the label forfeits under RC:
    /// labeled-competing writes must be performed conservatively, so
    /// each one pays roughly a remote ownership miss instead of retiring
    /// through the write buffer.
    pub est_stall_cycles: u64,
}

impl std::fmt::Display for OverLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.conflicting_pairs == 0 {
            write!(
                f,
                "label '{}' ({:#x}+{}): no cross-process conflicting access — unused label",
                self.name, self.base.0, self.len
            )
        } else {
            write!(
                f,
                "label '{}' ({:#x}+{}): all {} conflicting pairs already sync-ordered or \
                 lock-protected; labeling its {} writes competing forfeits ~{} cycles of RC \
                 write-latency hiding",
                self.name,
                self.base.0,
                self.len,
                self.conflicting_pairs,
                self.writes,
                self.est_stall_cycles
            )
        }
    }
}

/// PL-labeling-pass findings.
#[derive(Debug, Clone, Default)]
pub struct LabelingFindings {
    /// Every distinct address with at least one competing unlabeled
    /// pair (full list, for soundness cross-checks).
    pub under_labeled_addrs: Vec<Addr>,
    /// Witness pairs (capped; one per address).
    pub under_labeled: Vec<CompetingPair>,
    /// Labels the program does not need.
    pub over_labeled: Vec<OverLabel>,
    /// Cross-process conflicting pairs classified.
    pub pairs_checked: usize,
    /// Distinct shared addresses examined.
    pub addrs_checked: usize,
}

impl LabelingFindings {
    /// The static properly-labeled verdict: no statically possible
    /// unlabeled race.
    pub fn properly_labeled(&self) -> bool {
        self.under_labeled_addrs.is_empty()
    }
}

/// One prefetch finding site: `(pid, op index, line)`.
pub type PrefetchSite = (ProcId, usize, LineAddr);

/// Prefetch-lint findings (all advisory).
#[derive(Debug, Clone, Default)]
pub struct PrefetchLints {
    /// Prefetches with no matching demand access before the next sync.
    pub dead: Vec<PrefetchSite>,
    /// Prefetches whose static distance to the first demand access is
    /// below the configured miss latency: `(site, distance, needed)`.
    pub late: Vec<(PrefetchSite, u64, u64)>,
    /// Prefetches re-fetching a line already prefetched with no
    /// intervening demand access or sync.
    pub duplicate: Vec<PrefetchSite>,
    /// Total prefetches examined.
    pub total: usize,
}

/// The full static lint report for one program.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Workload or trace name.
    pub subject: String,
    /// Process count.
    pub nprocs: usize,
    /// Total operations extracted.
    pub total_ops: usize,
    /// Forced transitions the extractor had to make (each one is a
    /// critical finding: the sync skeleton alone could not make
    /// progress).
    pub extraction_notes: Vec<String>,
    /// True when extraction hit its op budget.
    pub truncated: bool,
    /// False when the must-happens-before fixpoint hit its sweep cap
    /// (conservative: may over-report competing pairs).
    pub converged: bool,
    /// Deadlock pass.
    pub deadlock: DeadlockFindings,
    /// Barrier pass.
    pub barriers: BarrierFindings,
    /// PL-labeling pass.
    pub labeling: LabelingFindings,
    /// Prefetch pass.
    pub prefetch: PrefetchLints,
}

impl LintReport {
    /// True when any finding is fatal (exit code `LINT`).
    pub fn is_critical(&self) -> bool {
        !self.extraction_notes.is_empty()
            || self.deadlock.is_critical()
            || self.barriers.divergence.is_some()
            || !self.labeling.properly_labeled()
    }

    /// True when `--strict` should additionally fail: the analysis was
    /// incomplete (truncated extraction or unconverged fixpoint).
    pub fn is_incomplete(&self) -> bool {
        self.truncated || !self.converged
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "== lint {} ==  ({} procs, {} ops, {} sync-identical barrier episodes)",
            self.subject, self.nprocs, self.total_ops, self.barriers.episodes
        );
        for note in &self.extraction_notes {
            let _ = writeln!(s, "  CRITICAL extraction: {note}");
        }
        if self.truncated {
            let _ = writeln!(s, "  WARNING extraction truncated by op budget");
        }
        if !self.converged {
            let _ = writeln!(s, "  WARNING must-happens-before fixpoint hit sweep cap");
        }
        for c in &self.deadlock.cycles {
            let _ = write!(s, "  CRITICAL deadlock: {c}");
        }
        for u in &self.deadlock.unreleased {
            let _ = writeln!(s, "  CRITICAL deadlock: {u}");
        }
        for (pid, l, i) in &self.deadlock.bad_releases {
            let _ = writeln!(
                s,
                "  CRITICAL deadlock: {pid} releases lock {} (op #{i}) without holding it",
                l.0
            );
        }
        if let Some(d) = &self.barriers.divergence {
            let _ = writeln!(
                s,
                "  CRITICAL barrier: divergence at episode {}: {} arrives at {}, {} at {}",
                d.episode,
                d.expected.0,
                fmt_barrier(d.expected.1),
                d.got.0,
                fmt_barrier(d.got.1),
            );
        }
        let lb = &self.labeling;
        let _ = writeln!(
            s,
            "  labeling: {} addrs, {} cross-process conflicting pairs -> {}",
            lb.addrs_checked,
            lb.pairs_checked,
            if lb.properly_labeled() {
                "properly labeled (static)".to_string()
            } else {
                format!("{} under-labeled addrs", lb.under_labeled_addrs.len())
            }
        );
        for p in &lb.under_labeled {
            let _ = writeln!(s, "  CRITICAL under-labeled: {p}");
        }
        for o in &lb.over_labeled {
            let _ = writeln!(s, "  INFO over-labeled: {o}");
        }
        let pf = &self.prefetch;
        let _ = writeln!(
            s,
            "  prefetch: {} issued, {} dead, {} late, {} duplicate",
            pf.total,
            pf.dead.len(),
            pf.late.len(),
            pf.duplicate.len()
        );
        for &(pid, i, line) in pf.dead.iter().take(4) {
            let _ = writeln!(
                s,
                "  INFO dead prefetch: {pid} op #{i} line {:#x} never demanded before next sync",
                line.base().0
            );
        }
        for &((pid, i, _), dist, need) in pf.late.iter().take(4) {
            let _ = writeln!(
                s,
                "  INFO late prefetch: {pid} op #{i} covers only {dist} of {need} miss cycles",
            );
        }
        for &(pid, i, line) in pf.duplicate.iter().take(4) {
            let _ = writeln!(
                s,
                "  INFO duplicate prefetch: {pid} op #{i} re-fetches line {:#x}",
                line.base().0
            );
        }
        let _ = writeln!(
            s,
            "  verdict: {}",
            if self.is_critical() { "FAIL" } else { "clean" }
        );
        s
    }

    /// JSON object for `--json` output.
    pub fn to_json(&self) -> String {
        let under: Vec<String> = self
            .labeling
            .under_labeled_addrs
            .iter()
            .map(|a| a.0.to_string())
            .collect();
        let over: Vec<String> = self
            .labeling
            .over_labeled
            .iter()
            .map(|o| {
                format!(
                    "{{\"name\":{},\"base\":{},\"len\":{},\"conflicting_pairs\":{},\"writes\":{},\"est_stall_cycles\":{}}}",
                    quote(&o.name), o.base.0, o.len, o.conflicting_pairs, o.writes, o.est_stall_cycles
                )
            })
            .collect();
        let notes: Vec<String> = self.extraction_notes.iter().map(|n| quote(n)).collect();
        format!(
            "{{\"subject\":{},\"nprocs\":{},\"total_ops\":{},\"critical\":{},\"incomplete\":{},\
             \"extraction_notes\":[{}],\
             \"deadlock\":{{\"cycles\":{},\"unreleased\":{},\"bad_releases\":{}}},\
             \"barriers\":{{\"episodes\":{},\"diverged\":{}}},\
             \"labeling\":{{\"properly_labeled\":{},\"under_labeled_addrs\":[{}],\"over_labeled\":[{}],\
             \"pairs_checked\":{},\"addrs_checked\":{}}},\
             \"prefetch\":{{\"total\":{},\"dead\":{},\"late\":{},\"duplicate\":{}}}}}",
            quote(&self.subject),
            self.nprocs,
            self.total_ops,
            self.is_critical(),
            self.is_incomplete(),
            notes.join(","),
            self.deadlock.cycles.len(),
            self.deadlock.unreleased.len(),
            self.deadlock.bad_releases.len(),
            self.barriers.episodes,
            self.barriers.divergence.is_some(),
            self.labeling.properly_labeled(),
            under.join(","),
            over.join(","),
            self.labeling.pairs_checked,
            self.labeling.addrs_checked,
            self.prefetch.total,
            self.prefetch.dead.len(),
            self.prefetch.late.len(),
            self.prefetch.duplicate.len(),
        )
    }
}

fn fmt_barrier(b: Option<BarrierId>) -> String {
    match b {
        Some(b) => format!("barrier {}", b.0),
        None => "no barrier (stream ends)".to_string(),
    }
}
