//! The sync-skeleton control-flow view of an extracted program, and the
//! static *must-happens-before* relation computed over it.
//!
//! Each process's op stream is cut at its synchronization operations
//! (acquire, release, barrier, done). The sync ops become **nodes**; the
//! maximal op runs between them become **runs**. Every node carries a
//! vector timestamp `vt[p]` = "the number of operations of process `p`
//! guaranteed complete before this node completes, in *every* execution".
//!
//! Edges:
//!
//! * program order within a process;
//! * barrier episodes — once the barrier-divergence check proves all
//!   processes traverse the same barrier sequence, the i-th arrivals
//!   form an all-to-all join;
//! * forced lock edges, discovered to a fixpoint: if acquire `a` (proc
//!   A) must-happen-before acquire `b` (proc B) of the same lock, then
//!   mutual exclusion puts A's whole critical section before B's entry
//!   in every execution, so `release(a) → b` is a must edge.
//!
//! This relation is a **subset** of the happens-before any real schedule
//! exhibits (forced edges only), which is exactly the direction the
//! properly-labeled pass needs: a pair unordered dynamically is also
//! unordered statically, so static findings ⊇ dynamic FastTrack races.
//!
//! A key economy: the ordering verdict between two accesses depends only
//! on their enclosing runs, never on their exact indices — vector
//! timestamps are joins of sync-node positions, so a timestamp can never
//! split a run. Accesses are therefore deduplicated to one
//! representative per `(address, process, run, read/write)` before any
//! pairwise classification.

use std::collections::HashMap;

use dashlat_cpu::ops::{BarrierId, LockId, Op, ProcId};
use dashlat_cpu::trace::Trace;
use dashlat_mem::addr::Addr;

/// Fixpoint sweep cap. Forced-lock-edge discovery converges in a couple
/// of sweeps for pipeline programs (one sweep finds the barrier-implied
/// orders, the next propagates the release knowledge); the cap is a
/// safety net, and hitting it is reported (fewer edges = conservative).
const MAX_SWEEPS: usize = 16;

/// Kind of a sync-skeleton node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Lock acquire.
    Acquire(LockId),
    /// Lock release.
    Release(LockId),
    /// Barrier arrival.
    Barrier(BarrierId),
    /// End of stream.
    Done,
}

/// One sync operation of one process.
#[derive(Debug, Clone)]
pub struct SyncNode {
    /// Index of the op in its process's stream.
    pub op_index: usize,
    /// What the op is.
    pub kind: NodeKind,
    /// Must-happens-before vector timestamp (ops of each proc guaranteed
    /// complete before this node completes).
    pub vt: Vec<usize>,
}

/// One representative shared access: all accesses by `pid` to one
/// address within one run with the same read/write kind share its
/// ordering verdicts.
#[derive(Debug, Clone)]
pub struct AccessRep {
    /// Accessing process.
    pub pid: usize,
    /// Enclosing run (number of sync nodes preceding it).
    pub run: usize,
    /// True for writes (`Rmw` counts as a write).
    pub is_write: bool,
    /// Stream index of the first access this entry represents.
    pub op_index: usize,
    /// How many accesses it represents.
    pub count: usize,
    /// Locks held throughout the run.
    pub held: Vec<LockId>,
}

/// One use of a lock by a process: the acquire node and, if the process
/// ever released it, the matching release node.
#[derive(Debug, Clone, Copy)]
pub struct LockUse {
    /// Acquiring process.
    pub pid: usize,
    /// Index of the acquire in `syncs[pid]`.
    pub acq_node: usize,
    /// Index of the matching release in `syncs[pid]`, if any.
    pub rel_node: Option<usize>,
}

/// A lock-order graph edge: `pid` acquired `acquired` while holding
/// `held`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeldEdge {
    /// The process.
    pub pid: usize,
    /// The lock already held.
    pub held: LockId,
    /// Stream index of the acquire that took `held`.
    pub held_since: usize,
    /// The lock being acquired.
    pub acquired: LockId,
    /// Stream index of the nested acquire.
    pub acquired_at: usize,
}

/// Where two processes' barrier sequences first disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BarrierDivergence {
    /// Episode index (position in the per-process barrier sequence).
    pub episode: usize,
    /// A process at that episode, with the barrier it arrives at
    /// (`None` when its stream has no such episode).
    pub expected: (ProcId, Option<BarrierId>),
    /// The first process that disagrees.
    pub got: (ProcId, Option<BarrierId>),
}

/// The extracted sync skeleton plus everything the passes consume.
#[derive(Debug)]
pub struct Skeleton {
    /// Process count.
    pub nprocs: usize,
    /// Sync nodes per process, in program order.
    pub syncs: Vec<Vec<SyncNode>>,
    /// Barrier episodes joined into must-happens-before (the agreeing
    /// prefix of all processes' barrier sequences).
    pub joined_episodes: usize,
    /// First barrier-sequence disagreement, if any.
    pub divergence: Option<BarrierDivergence>,
    /// Deduplicated shared accesses grouped by byte address.
    pub accesses: HashMap<Addr, Vec<AccessRep>>,
    /// All uses of each lock.
    pub lock_uses: HashMap<LockId, Vec<LockUse>>,
    /// Lock-order graph edges (nested acquires).
    pub held_edges: Vec<HeldEdge>,
    /// Releases of locks the process did not hold: `(pid, lock,
    /// op_index)`.
    pub bad_releases: Vec<(ProcId, LockId, usize)>,
    /// Locks still held when the process finished: `(pid, lock, index of
    /// the unmatched acquire)`.
    pub unreleased: Vec<(ProcId, LockId, usize)>,
    /// Total operations across all streams.
    pub total_ops: usize,
    /// False when the fixpoint hit [`MAX_SWEEPS`] (timestamps then
    /// under-approximate must-happens-before, which is conservative).
    pub converged: bool,
}

impl Skeleton {
    /// Builds the skeleton from extracted per-process op streams and
    /// computes the must-happens-before timestamps.
    pub fn build(trace: &Trace) -> Skeleton {
        let nprocs = trace.streams.len();
        let mut syncs: Vec<Vec<SyncNode>> = vec![Vec::new(); nprocs];
        let mut barrier_seq: Vec<Vec<BarrierId>> = vec![Vec::new(); nprocs];
        let mut accesses: HashMap<Addr, Vec<AccessRep>> = HashMap::new();
        let mut lock_uses: HashMap<LockId, Vec<LockUse>> = HashMap::new();
        let mut held_edges = Vec::new();
        let mut bad_releases = Vec::new();
        let mut unreleased = Vec::new();
        let mut total_ops = 0usize;

        for (p, stream) in trace.streams.iter().enumerate() {
            // Held stack: (lock, acquire op index, index into lock_uses[lock]).
            let mut held: Vec<(LockId, usize, usize)> = Vec::new();
            let held_ids = |held: &[(LockId, usize, usize)]| -> Vec<LockId> {
                held.iter().map(|&(l, _, _)| l).collect()
            };
            for (i, &op) in stream.iter().enumerate() {
                total_ops += 1;
                let run = syncs[p].len();
                match op {
                    Op::Read(a) | Op::Write(a) | Op::Rmw(a) => {
                        let is_write = !matches!(op, Op::Read(_));
                        let reps = accesses.entry(a).or_default();
                        // Reps for this proc arrive in run order; a match
                        // can only sit among the trailing entries of the
                        // current run (at most a read and a write).
                        let found = reps
                            .iter_mut()
                            .rev()
                            .take_while(|r| r.pid == p && r.run == run)
                            .find(|r| r.is_write == is_write);
                        match found {
                            Some(r) => r.count += 1,
                            None => reps.push(AccessRep {
                                pid: p,
                                run,
                                is_write,
                                op_index: i,
                                count: 1,
                                held: held_ids(&held),
                            }),
                        }
                    }
                    Op::Acquire(l) => {
                        for &(h, since, _) in &held {
                            held_edges.push(HeldEdge {
                                pid: p,
                                held: h,
                                held_since: since,
                                acquired: l,
                                acquired_at: i,
                            });
                        }
                        let uses = lock_uses.entry(l).or_default();
                        uses.push(LockUse {
                            pid: p,
                            acq_node: syncs[p].len(),
                            rel_node: None,
                        });
                        held.push((l, i, uses.len() - 1));
                        syncs[p].push(SyncNode {
                            op_index: i,
                            kind: NodeKind::Acquire(l),
                            vt: Vec::new(),
                        });
                    }
                    Op::Release(l) => {
                        match held.iter().rposition(|&(h, _, _)| h == l) {
                            Some(at) => {
                                let (_, _, use_idx) = held.remove(at);
                                lock_uses.get_mut(&l).expect("use recorded")[use_idx].rel_node =
                                    Some(syncs[p].len());
                            }
                            None => bad_releases.push((ProcId(p), l, i)),
                        }
                        syncs[p].push(SyncNode {
                            op_index: i,
                            kind: NodeKind::Release(l),
                            vt: Vec::new(),
                        });
                    }
                    Op::Barrier(b) => {
                        barrier_seq[p].push(b);
                        syncs[p].push(SyncNode {
                            op_index: i,
                            kind: NodeKind::Barrier(b),
                            vt: Vec::new(),
                        });
                    }
                    Op::Done => {
                        syncs[p].push(SyncNode {
                            op_index: i,
                            kind: NodeKind::Done,
                            vt: Vec::new(),
                        });
                    }
                    Op::Compute(_) | Op::Prefetch { .. } => {}
                }
            }
            for &(l, at, _) in &held {
                unreleased.push((ProcId(p), l, at));
            }
        }

        let (joined_episodes, divergence) = check_barriers(&barrier_seq);

        let mut sk = Skeleton {
            nprocs,
            syncs,
            joined_episodes,
            divergence,
            accesses,
            lock_uses,
            held_edges,
            bad_releases,
            unreleased,
            total_ops,
            converged: true,
        };
        sk.compute_vts();
        sk
    }

    /// True when the node `(p, i)` must happen before the node `(q, j)`
    /// in every execution.
    pub fn node_must_hb(&self, p: usize, i: usize, q: usize, j: usize) -> bool {
        if p == q {
            return i < j;
        }
        self.syncs[q][j].vt[p] > self.syncs[p][i].op_index
    }

    /// True when every access in run `run_a` of process `p` must happen
    /// before every access in run `run_b` of process `q ≠ p`.
    /// `first_index` is the stream index of any access inside `run_a`
    /// (verdicts are uniform across a run).
    pub fn run_must_hb(&self, p: usize, first_index: usize, q: usize, run_b: usize) -> bool {
        if run_b == 0 {
            return false; // nothing precedes q's first sync
        }
        self.syncs[q][run_b - 1].vt[p] > first_index
    }

    /// Vector-timestamp fixpoint: program order, barrier joins, and
    /// forced lock edges discovered until nothing changes.
    fn compute_vts(&mut self) {
        let n = self.nprocs;
        // Static incoming edges from barrier episodes: all-to-all among
        // the i-th arrivals. Maps (proc, node) -> sources.
        let mut incoming: HashMap<(usize, usize), Vec<(usize, usize)>> = HashMap::new();
        let barrier_nodes: Vec<Vec<usize>> = self
            .syncs
            .iter()
            .map(|nodes| {
                nodes
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| matches!(s.kind, NodeKind::Barrier(_)))
                    .map(|(k, _)| k)
                    .collect()
            })
            .collect();
        for p in 0..n {
            for q in 0..n {
                if p == q {
                    continue;
                }
                let episodes = barrier_nodes[p]
                    .iter()
                    .zip(&barrier_nodes[q])
                    .take(self.joined_episodes);
                for (&bp, &bq) in episodes {
                    incoming.entry((p, bp)).or_default().push((q, bq));
                }
            }
        }
        for nodes in &mut self.syncs {
            for node in nodes.iter_mut() {
                node.vt = vec![0; n];
            }
        }

        let mut known_lock_edges: Vec<((usize, usize), (usize, usize))> = Vec::new();
        let mut converged = false;
        for _ in 0..MAX_SWEEPS {
            let mut changed = false;
            // Propagate program order + recorded incoming edges. A few
            // inner rounds let joins flow both directions between procs
            // within one sweep.
            loop {
                let mut inner_changed = false;
                for p in 0..n {
                    let mut carry = vec![0usize; n];
                    for k in 0..self.syncs[p].len() {
                        carry[p] = carry[p].max(self.syncs[p][k].op_index + 1);
                        if let Some(srcs) = incoming.get(&(p, k)) {
                            for &(q, j) in srcs {
                                let src_vt = self.syncs[q][j].vt.clone();
                                for (c, s) in carry.iter_mut().zip(src_vt) {
                                    *c = (*c).max(s);
                                }
                            }
                        }
                        let node = &mut self.syncs[p][k];
                        for (dst, src) in node.vt.iter_mut().zip(&carry) {
                            if *src > *dst {
                                *dst = *src;
                                inner_changed = true;
                            }
                        }
                        carry.clone_from(&node.vt);
                    }
                }
                if !inner_changed {
                    break;
                }
                changed = true;
            }
            // Discover forced lock edges: acq_a must-hb acq_b of the
            // same lock => rel_a -> acq_b.
            let mut new_edges = Vec::new();
            for uses in self.lock_uses.values() {
                for a in uses {
                    let Some(rel) = a.rel_node else { continue };
                    for b in uses {
                        if a.pid == b.pid {
                            continue;
                        }
                        if self.node_must_hb(a.pid, a.acq_node, b.pid, b.acq_node) {
                            let edge = ((a.pid, rel), (b.pid, b.acq_node));
                            if !known_lock_edges.contains(&edge) {
                                new_edges.push(edge);
                            }
                        }
                    }
                }
            }
            if new_edges.is_empty() && !changed {
                converged = true;
                break;
            }
            for edge in new_edges {
                incoming
                    .entry(edge.1)
                    .or_default()
                    .push((edge.0 .0, edge.0 .1));
                known_lock_edges.push(edge);
            }
        }
        self.converged = converged;
    }
}

/// Compares per-process barrier sequences: returns the number of
/// episodes on which every process agrees, and the first divergence.
fn check_barriers(seqs: &[Vec<BarrierId>]) -> (usize, Option<BarrierDivergence>) {
    let max_len = seqs.iter().map(Vec::len).max().unwrap_or(0);
    let min_len = seqs.iter().map(Vec::len).min().unwrap_or(0);
    for e in 0..max_len {
        let expected = seqs[0].get(e).copied();
        for (q, seq) in seqs.iter().enumerate().skip(1) {
            let got = seq.get(e).copied();
            if got != expected {
                return (
                    e.min(min_len),
                    Some(BarrierDivergence {
                        episode: e,
                        expected: (ProcId(0), expected),
                        got: (ProcId(q), got),
                    }),
                );
            }
        }
    }
    (min_len, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dashlat_cpu::ops::{Op, SyncConfig};

    fn trace(streams: Vec<Vec<Op>>, locks: usize, barriers: usize) -> Trace {
        Trace {
            streams,
            sync: SyncConfig {
                lock_addrs: (0..locks).map(|i| Addr(0x1000 + 0x40 * i as u64)).collect(),
                barrier_addrs: (0..barriers)
                    .map(|i| Addr(0x8000 + 0x40 * i as u64))
                    .collect(),
                labeled_ranges: Vec::new(),
            },
            page_homes: None,
        }
    }

    #[test]
    fn barrier_orders_across_processes() {
        // P0 writes before the barrier; P1 reads after it.
        let t = trace(
            vec![
                vec![Op::Write(Addr(0x40)), Op::Barrier(BarrierId(0)), Op::Done],
                vec![Op::Barrier(BarrierId(0)), Op::Read(Addr(0x40)), Op::Done],
            ],
            0,
            1,
        );
        let sk = Skeleton::build(&t);
        assert_eq!(sk.joined_episodes, 1);
        assert!(sk.divergence.is_none());
        // P0's write (index 0) is in run 0; P1's read is in run 1.
        assert!(sk.run_must_hb(0, 0, 1, 1));
        assert!(!sk.run_must_hb(1, 1, 0, 0));
    }

    #[test]
    fn forced_lock_edge_orders_pipeline() {
        // Producer holds lock 0 from the start (before the barrier);
        // consumer acquires it after the barrier. The fixpoint must find
        // rel(P0) -> acq(P1), ordering the pre-release write before the
        // post-acquire read.
        let t = trace(
            vec![
                vec![
                    Op::Acquire(LockId(0)),
                    Op::Barrier(BarrierId(0)),
                    Op::Write(Addr(0x40)),
                    Op::Release(LockId(0)),
                    Op::Done,
                ],
                vec![
                    Op::Barrier(BarrierId(0)),
                    Op::Acquire(LockId(0)),
                    Op::Release(LockId(0)),
                    Op::Read(Addr(0x40)),
                    Op::Done,
                ],
            ],
            1,
            1,
        );
        let sk = Skeleton::build(&t);
        assert!(sk.converged);
        // P0's write is at stream index 2, inside run 2 (after Acquire,
        // Barrier). P1's read is inside run 3 (after Barrier, Acquire,
        // Release).
        assert!(sk.run_must_hb(0, 2, 1, 3));
    }

    #[test]
    fn concurrent_acquires_stay_unordered() {
        let t = trace(
            vec![
                vec![
                    Op::Acquire(LockId(0)),
                    Op::Write(Addr(0x40)),
                    Op::Release(LockId(0)),
                    Op::Done,
                ],
                vec![
                    Op::Acquire(LockId(0)),
                    Op::Write(Addr(0x40)),
                    Op::Release(LockId(0)),
                    Op::Done,
                ],
            ],
            1,
            0,
        );
        let sk = Skeleton::build(&t);
        // Neither critical section is forced before the other.
        assert!(!sk.run_must_hb(0, 1, 1, 1));
        assert!(!sk.run_must_hb(1, 1, 0, 1));
        // But both writes are under the same lock.
        let reps = &sk.accesses[&Addr(0x40)];
        assert_eq!(reps.len(), 2);
        assert!(reps.iter().all(|r| r.held == vec![LockId(0)]));
    }

    #[test]
    fn access_dedup_within_run() {
        let t = trace(
            vec![vec![
                Op::Read(Addr(0x40)),
                Op::Read(Addr(0x40)),
                Op::Write(Addr(0x40)),
                Op::Rmw(Addr(0x40)),
                Op::Done,
            ]],
            0,
            0,
        );
        let sk = Skeleton::build(&t);
        let reps = &sk.accesses[&Addr(0x40)];
        // One read rep (count 2) and one write rep (count 2: Write+Rmw).
        assert_eq!(reps.len(), 2);
        assert_eq!(reps.iter().find(|r| !r.is_write).unwrap().count, 2);
        assert_eq!(reps.iter().find(|r| r.is_write).unwrap().count, 2);
    }

    #[test]
    fn divergent_barriers_reported() {
        let t = trace(
            vec![
                vec![
                    Op::Barrier(BarrierId(0)),
                    Op::Barrier(BarrierId(1)),
                    Op::Done,
                ],
                vec![
                    Op::Barrier(BarrierId(0)),
                    Op::Barrier(BarrierId(0)),
                    Op::Done,
                ],
            ],
            0,
            2,
        );
        let sk = Skeleton::build(&t);
        assert_eq!(sk.joined_episodes, 1);
        let d = sk.divergence.expect("diverges");
        assert_eq!(d.episode, 1);
    }

    #[test]
    fn imbalance_recorded() {
        let t = trace(
            vec![
                vec![Op::Acquire(LockId(0)), Op::Done],
                vec![Op::Release(LockId(0)), Op::Done],
            ],
            1,
            0,
        );
        let sk = Skeleton::build(&t);
        assert_eq!(sk.unreleased, vec![(ProcId(0), LockId(0), 0)]);
        assert_eq!(sk.bad_releases, vec![(ProcId(1), LockId(0), 0)]);
    }

    #[test]
    fn nested_acquires_build_held_edges() {
        let t = trace(
            vec![vec![
                Op::Acquire(LockId(0)),
                Op::Acquire(LockId(1)),
                Op::Release(LockId(1)),
                Op::Release(LockId(0)),
                Op::Done,
            ]],
            2,
            0,
        );
        let sk = Skeleton::build(&t);
        assert_eq!(
            sk.held_edges,
            vec![HeldEdge {
                pid: 0,
                held: LockId(0),
                held_since: 0,
                acquired: LockId(1),
                acquired_at: 1,
            }]
        );
    }
}
