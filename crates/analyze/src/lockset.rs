//! Eraser-style lockset checking (lint-grade).
//!
//! Each shared location's *candidate lockset* is the intersection of the
//! locks held at every access once the location becomes shared; an empty
//! candidate set on a written location means no single lock consistently
//! protected it. Unlike the happens-before pass this is a heuristic:
//! barrier-phased sharing (LU hands columns across barriers, not locks)
//! produces false positives, which is why lockset findings are reported
//! as warnings and never affect the properly-labeled verdict.

use std::collections::{HashMap, HashSet};

use dashlat_cpu::events::{EventKind, EventLog};
use dashlat_cpu::ops::{LockId, ProcId};
use dashlat_mem::addr::Addr;

use crate::report::{LocksetSummary, LocksetWarning};

/// Detailed warnings kept; further ones only bump the count.
const WARNING_CAP: usize = 64;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Touched by one process only so far.
    Exclusive(usize),
    /// Read-shared across processes.
    Shared,
    /// Written while shared: candidate set violations are reportable.
    SharedModified,
}

struct Loc {
    phase: Phase,
    candidates: Vec<LockId>,
    pids: Vec<ProcId>,
    warned: bool,
}

/// Runs the lockset pass over `log`.
pub fn run(log: &EventLog) -> LocksetSummary {
    let mut held: Vec<Vec<LockId>> = vec![Vec::new(); log.nprocs];
    let mut locs: HashMap<Addr, Loc> = HashMap::new();
    let mut labeled: HashSet<Addr> = HashSet::new();
    let mut out = LocksetSummary::default();
    for ev in &log.events {
        let p = ev.pid.0;
        let (a, is_write) = match ev.kind {
            EventKind::Read(a) => (a, false),
            EventKind::Write(a) => (a, true),
            EventKind::Acquire(l) => {
                held[p].push(l);
                continue;
            }
            EventKind::Release(l) => {
                if let Some(i) = held[p].iter().rposition(|&h| h == l) {
                    held[p].remove(i);
                }
                continue;
            }
            _ => continue,
        };
        if log.sync.label_of(a).is_some() {
            labeled.insert(a);
            continue;
        }
        let loc = locs.entry(a).or_insert_with(|| Loc {
            phase: Phase::Exclusive(p),
            candidates: held[p].clone(),
            pids: Vec::new(),
            warned: false,
        });
        if !loc.pids.contains(&ProcId(p)) {
            loc.pids.push(ProcId(p));
        }
        match loc.phase {
            Phase::Exclusive(owner) if owner == p => {
                // First-owner accesses refresh the candidate set: the
                // initialization pattern (one process sets up, others
                // join later) should not poison it.
                loc.candidates = held[p].clone();
            }
            Phase::Exclusive(_) => {
                loc.phase = if is_write {
                    Phase::SharedModified
                } else {
                    Phase::Shared
                };
                loc.candidates.retain(|l| held[p].contains(l));
            }
            Phase::Shared => {
                if is_write {
                    loc.phase = Phase::SharedModified;
                }
                loc.candidates.retain(|l| held[p].contains(l));
            }
            Phase::SharedModified => {
                loc.candidates.retain(|l| held[p].contains(l));
            }
        }
        if loc.phase == Phase::SharedModified && loc.candidates.is_empty() && !loc.warned {
            loc.warned = true;
            out.warnings_total += 1;
            if out.warnings.len() < WARNING_CAP {
                out.warnings.push(LocksetWarning {
                    addr: a,
                    line: a.line(),
                    pids: loc.pids.clone(),
                });
            }
        }
    }
    out.labeled_locations = labeled.len() as u64;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dashlat_cpu::events::events_from_trace;
    use dashlat_cpu::ops::{Op, SyncConfig};
    use dashlat_cpu::trace::Trace;

    fn trace(streams: Vec<Vec<Op>>) -> Trace {
        Trace {
            streams,
            sync: SyncConfig {
                lock_addrs: vec![Addr(0x1000), Addr(0x1010)],
                barrier_addrs: Vec::new(),
                labeled_ranges: Vec::new(),
            },
            page_homes: None,
        }
    }

    #[test]
    fn consistent_lock_passes() {
        let t = trace(vec![
            vec![
                Op::Acquire(LockId(0)),
                Op::Write(Addr(0x40)),
                Op::Release(LockId(0)),
                Op::Done,
            ],
            vec![
                Op::Acquire(LockId(0)),
                Op::Write(Addr(0x40)),
                Op::Release(LockId(0)),
                Op::Done,
            ],
        ]);
        let s = run(&events_from_trace(&t));
        assert_eq!(s.warnings_total, 0, "warnings: {:?}", s.warnings);
    }

    #[test]
    fn inconsistent_locks_warn() {
        // P0 protects with lock 0, P1 with lock 1: intersection empty.
        let t = trace(vec![
            vec![
                Op::Acquire(LockId(0)),
                Op::Write(Addr(0x40)),
                Op::Release(LockId(0)),
                Op::Done,
            ],
            vec![
                Op::Acquire(LockId(1)),
                Op::Write(Addr(0x40)),
                Op::Release(LockId(1)),
                Op::Done,
            ],
        ]);
        let s = run(&events_from_trace(&t));
        assert_eq!(s.warnings_total, 1);
        assert_eq!(s.warnings[0].addr, Addr(0x40));
        assert_eq!(s.warnings[0].pids.len(), 2);
    }

    #[test]
    fn exclusive_location_never_warns() {
        let t = trace(vec![
            vec![Op::Write(Addr(0x40)), Op::Write(Addr(0x40)), Op::Done],
            vec![Op::Compute(1), Op::Done],
        ]);
        let s = run(&events_from_trace(&t));
        assert_eq!(s.warnings_total, 0);
    }

    #[test]
    fn read_shared_without_write_never_warns() {
        let t = trace(vec![
            vec![Op::Read(Addr(0x40)), Op::Done],
            vec![Op::Read(Addr(0x40)), Op::Done],
        ]);
        let s = run(&events_from_trace(&t));
        assert_eq!(s.warnings_total, 0);
    }
}
