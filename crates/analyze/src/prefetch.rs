//! Prefetch-semantics checking.
//!
//! Prefetches in the simulated machine are *non-binding*: they move data
//! but carry no ordering semantics, so they must never be the only thing
//! standing between two conflicting accesses (the happens-before pass
//! reports that case via [`crate::report::PrefetchSummary::sole_ordering_edges`]).
//! This pass audits hygiene: every issued prefetch should be followed by
//! a demand access from the same process to the same line (otherwise it
//! is *useless*), not trail the access it was meant to cover too closely
//! (*late*), and a line prefetched in shared mode should not be written
//! (*wrong mode* -- the write still pays the ownership transition).

use std::collections::HashMap;

use dashlat_cpu::events::{EventKind, EventLog};
use dashlat_mem::addr::LineAddr;

use crate::report::PrefetchSummary;

/// Minimum issue-to-demand distance (in event stamps) for a prefetch to
/// have plausibly hidden any latency. Replayed logs stamp events with a
/// global sequence counter, so this is a count of interleaved events
/// rather than machine cycles; either way a distance below the window
/// means the prefetch cannot have overlapped meaningful latency.
const LATE_WINDOW: u64 = 30;

struct Pending {
    issued: u64,
    exclusive: bool,
}

/// Runs the prefetch-semantics pass over `log`.
pub fn run(log: &EventLog) -> PrefetchSummary {
    let mut out = PrefetchSummary::default();
    // Pending prefetch per (process, line): a demand access consumes it.
    let mut pending: HashMap<(usize, LineAddr), Pending> = HashMap::new();
    for ev in &log.events {
        let p = ev.pid.0;
        match ev.kind {
            EventKind::Prefetch { addr, exclusive } => {
                out.issued += 1;
                // Re-prefetching a line before any demand access means
                // the first prefetch did no useful work.
                if pending
                    .insert(
                        (p, addr.line()),
                        Pending {
                            issued: ev.cycle.0,
                            exclusive,
                        },
                    )
                    .is_some()
                {
                    out.useless += 1;
                }
            }
            EventKind::Read(a) | EventKind::Write(a) => {
                let is_write = matches!(ev.kind, EventKind::Write(_));
                if let Some(pf) = pending.remove(&(p, a.line())) {
                    out.covered += 1;
                    if ev.cycle.0.saturating_sub(pf.issued) < LATE_WINDOW {
                        out.late += 1;
                    }
                    if is_write && !pf.exclusive {
                        out.wrong_mode += 1;
                    }
                }
            }
            _ => {}
        }
    }
    // Prefetches never consumed by a demand access.
    out.useless += pending.len() as u64;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dashlat_cpu::events::events_from_trace;
    use dashlat_cpu::ops::{Op, SyncConfig};
    use dashlat_cpu::trace::Trace;
    use dashlat_mem::addr::Addr;

    fn trace(streams: Vec<Vec<Op>>) -> Trace {
        Trace {
            streams,
            sync: SyncConfig::default(),
            page_homes: None,
        }
    }

    fn pf(addr: Addr) -> Op {
        Op::Prefetch {
            addr,
            exclusive: false,
        }
    }

    fn pf_ex(addr: Addr) -> Op {
        Op::Prefetch {
            addr,
            exclusive: true,
        }
    }

    #[test]
    fn covered_prefetch_counts() {
        let mut ops = vec![pf(Addr(0x100))];
        // Pad with unrelated work so the demand access is not "late".
        for i in 0..40 {
            ops.push(Op::Read(Addr(0x4000 + i * 0x40)));
        }
        ops.push(Op::Read(Addr(0x100)));
        ops.push(Op::Done);
        let s = run(&events_from_trace(&trace(vec![ops])));
        assert_eq!(s.issued, 1);
        assert_eq!(s.covered, 1);
        assert_eq!(s.late, 0);
        assert_eq!(s.useless, 0);
    }

    #[test]
    fn unconsumed_prefetch_is_useless() {
        let t = trace(vec![vec![pf(Addr(0x100)), Op::Done]]);
        let s = run(&events_from_trace(&t));
        assert_eq!(s.issued, 1);
        assert_eq!(s.useless, 1);
        assert_eq!(s.covered, 0);
    }

    #[test]
    fn immediate_demand_is_late() {
        let t = trace(vec![vec![pf(Addr(0x100)), Op::Read(Addr(0x100)), Op::Done]]);
        let s = run(&events_from_trace(&t));
        assert_eq!(s.covered, 1);
        assert_eq!(s.late, 1);
    }

    #[test]
    fn shared_prefetch_then_write_is_wrong_mode() {
        let t = trace(vec![vec![
            pf(Addr(0x100)),
            Op::Write(Addr(0x100)),
            Op::Done,
        ]]);
        let s = run(&events_from_trace(&t));
        assert_eq!(s.wrong_mode, 1);
    }

    #[test]
    fn exclusive_prefetch_then_write_is_fine() {
        let t = trace(vec![vec![
            pf_ex(Addr(0x100)),
            Op::Write(Addr(0x100)),
            Op::Done,
        ]]);
        let s = run(&events_from_trace(&t));
        assert_eq!(s.wrong_mode, 0);
        assert_eq!(s.covered, 1);
    }
}
