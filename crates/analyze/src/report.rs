//! Report types shared by all analysis passes, and the rendered summary.

use dashlat_cpu::events::EventLog;
use dashlat_cpu::ops::{BarrierId, LockId, ProcId};
use dashlat_mem::addr::{Addr, LineAddr};
use dashlat_sim::Cycle;

use crate::PassKind;

/// The last synchronization operation a process performed before an
/// access — the edge that *should* have ordered the access but did not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPoint {
    /// An acquire of the given lock, at the process's given op index.
    Acquire(LockId, u64),
    /// A release of the given lock.
    Release(LockId, u64),
    /// A barrier arrival.
    Barrier(BarrierId, u64),
}

impl std::fmt::Display for SyncPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncPoint::Acquire(l, i) => write!(f, "acquire of lock {} (op #{i})", l.0),
            SyncPoint::Release(l, i) => write!(f, "release of lock {} (op #{i})", l.0),
            SyncPoint::Barrier(b, i) => write!(f, "barrier {} arrival (op #{i})", b.0),
        }
    }
}

/// One side of a racy pair: who accessed, where in its stream, and what
/// synchronization context it carried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    /// The accessing process.
    pub pid: ProcId,
    /// Index of the access in that process's stream.
    pub op_index: u64,
    /// Commit time of the access.
    pub cycle: Cycle,
    /// True for a write, false for a read.
    pub is_write: bool,
    /// Locks the process held at the access.
    pub locks_held: Vec<LockId>,
    /// The process's most recent sync operation before the access.
    pub last_sync: Option<SyncPoint>,
}

impl std::fmt::Display for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = if self.is_write { "write" } else { "read" };
        write!(
            f,
            "{} {kind} (op #{}, cycle {}",
            self.pid,
            self.op_index,
            self.cycle.as_u64()
        )?;
        if self.locks_held.is_empty() {
            write!(f, ", holding no locks)")
        } else {
            let held: Vec<String> = self.locks_held.iter().map(|l| l.0.to_string()).collect();
            write!(f, ", holding lock {})", held.join(","))
        }
    }
}

/// An unlabeled conflicting access pair with no happens-before edge — the
/// finding that breaks properly-labeled certification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Race {
    /// The conflicting byte address.
    pub addr: Addr,
    /// The cache line it falls on (the coherence-granularity view).
    pub line: LineAddr,
    /// The earlier access.
    pub first: Site,
    /// The later access.
    pub second: Site,
    /// Locks held at exactly one of the two sites — the locks whose
    /// acquisition on the other side would have ordered the pair.
    pub missing_locks: Vec<LockId>,
    /// A non-binding prefetch touched the racy line between the two
    /// accesses: it may *mask* the race in a timing run without ordering
    /// anything.
    pub prefetch_between: bool,
}

impl std::fmt::Display for Race {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "race on {:#x} ({}): {} vs {}",
            self.addr.0, self.line, self.first, self.second
        )?;
        if !self.missing_locks.is_empty() {
            let locks: Vec<String> = self.missing_locks.iter().map(|l| l.0.to_string()).collect();
            write!(f, "; missing lock {}", locks.join(","))?;
        }
        write!(f, "; last sync {}: ", self.first.pid)?;
        match &self.first.last_sync {
            Some(s) => write!(f, "{s}")?,
            None => write!(f, "none")?,
        }
        write!(f, ", {}: ", self.second.pid)?;
        match &self.second.last_sync {
            Some(s) => write!(f, "{s}")?,
            None => write!(f, "none")?,
        }
        if self.prefetch_between {
            write!(f, " [non-binding prefetch touched the line in between]")?;
        }
        Ok(())
    }
}

/// Outcome of the happens-before pass.
#[derive(Debug, Clone, Default)]
pub struct HbSummary {
    /// Detailed reports, capped (see `races_total` for the full count).
    pub races: Vec<Race>,
    /// Total racy pairs observed, including those beyond the cap.
    pub races_total: u64,
    /// Ordinary (verified) accesses checked.
    pub checked_accesses: u64,
    /// Accesses exempted by declared labeled-competing ranges.
    pub labeled_accesses: u64,
}

/// One lockset (Eraser) warning: a shared location with an empty candidate
/// lockset. Lint-grade — barrier-phased sharing produces false positives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocksetWarning {
    /// The location.
    pub addr: Addr,
    /// Its cache line.
    pub line: LineAddr,
    /// Processes that accessed it.
    pub pids: Vec<ProcId>,
}

impl std::fmt::Display for LocksetWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let pids: Vec<String> = self
            .pids
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        write!(
            f,
            "no common lock protects {:#x} ({}) accessed by {}",
            self.addr.0,
            self.line,
            pids.join(",")
        )
    }
}

/// Outcome of the lockset pass.
#[derive(Debug, Clone, Default)]
pub struct LocksetSummary {
    /// Locations flagged (capped; see `warnings_total`).
    pub warnings: Vec<LocksetWarning>,
    /// Total flagged locations.
    pub warnings_total: u64,
    /// Locations exempted by labels.
    pub labeled_locations: u64,
}

/// Outcome of the barrier-divergence pass.
#[derive(Debug, Clone, Default)]
pub struct BarrierSummary {
    /// True when any two processes saw different barrier sequences.
    pub divergent: bool,
    /// Human-readable divergence details.
    pub details: Vec<String>,
    /// Barrier arrivals observed in total.
    pub arrivals: u64,
    /// Barrier episodes force-released by the replayer (0 for clean runs).
    pub forced: u64,
}

/// Outcome of the prefetch-semantics pass.
#[derive(Debug, Clone, Default)]
pub struct PrefetchSummary {
    /// Prefetches issued.
    pub issued: u64,
    /// Prefetches followed by a same-process demand access to the line.
    pub covered: u64,
    /// Prefetches never followed by a demand access (wasted bandwidth).
    pub useless: u64,
    /// Covered prefetches whose demand access came too soon to hide
    /// latency.
    pub late: u64,
    /// Shared prefetches whose first demand access was a write (would need
    /// a second, exclusive, transaction).
    pub wrong_mode: u64,
    /// Racy lines where a prefetch was the only "edge" between the
    /// conflicting accesses (prefetches are non-binding and order
    /// nothing). Filled from the happens-before pass when both ran.
    pub sole_ordering_edges: u64,
}

impl PrefetchSummary {
    /// Fraction of issued prefetches that were consumed by a demand
    /// access (the paper's coverage notion).
    pub fn coverage(&self) -> f64 {
        if self.issued == 0 {
            return 0.0;
        }
        self.covered as f64 / self.issued as f64
    }
}

/// One sync-balance finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncIssue {
    /// A process finished (or the run ended) still holding a lock.
    UnreleasedLock {
        /// The lock.
        lock: LockId,
        /// The holder.
        pid: ProcId,
    },
    /// A process released a lock it did not hold.
    ReleaseWithoutHold {
        /// The lock.
        lock: LockId,
        /// The releasing process.
        pid: ProcId,
        /// The actual holder at that point.
        holder: Option<ProcId>,
    },
    /// A lock was granted while the event stream shows another holder —
    /// the signature of a dropped Release reconstructed by forced replay.
    GrantWhileHeld {
        /// The lock.
        lock: LockId,
        /// The process granted the lock.
        pid: ProcId,
        /// The process still shown as holding it.
        holder: ProcId,
    },
    /// A barrier's total arrivals were not a multiple of the process
    /// count: some process missed an episode.
    UnbalancedBarrier {
        /// The barrier.
        barrier: BarrierId,
        /// Arrivals observed.
        arrivals: u64,
        /// Process count.
        nprocs: usize,
    },
}

impl SyncIssue {
    /// True for findings that break properly-labeled certification (as
    /// opposed to stylistic lint).
    pub fn is_critical(&self) -> bool {
        // A lock still held when the program ends cannot invalidate any
        // ordering edge an access relied on — it is lint. Everything
        // else breaks Acquire/Release/Barrier pairing mid-run, which
        // the happens-before edges depend on.
        !matches!(self, SyncIssue::UnreleasedLock { .. })
    }
}

impl std::fmt::Display for SyncIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncIssue::UnreleasedLock { lock, pid } => {
                write!(f, "{pid} never released lock {}", lock.0)
            }
            SyncIssue::ReleaseWithoutHold { lock, pid, holder } => match holder {
                Some(h) => write!(f, "{pid} released lock {} held by {h}", lock.0),
                None => write!(f, "{pid} released lock {} that nobody held", lock.0),
            },
            SyncIssue::GrantWhileHeld { lock, pid, holder } => write!(
                f,
                "lock {} granted to {pid} while {holder} still held it (missing Release?)",
                lock.0
            ),
            SyncIssue::UnbalancedBarrier {
                barrier,
                arrivals,
                nprocs,
            } => write!(
                f,
                "barrier {} saw {arrivals} arrivals, not a multiple of {nprocs} processes",
                barrier.0
            ),
        }
    }
}

/// Outcome of the sync-balance pass.
#[derive(Debug, Clone, Default)]
pub struct SyncBalanceSummary {
    /// All findings.
    pub issues: Vec<SyncIssue>,
    /// Acquire events observed.
    pub acquires: u64,
    /// Release events observed.
    pub releases: u64,
}

impl SyncBalanceSummary {
    /// True when any finding breaks certification.
    pub fn has_critical(&self) -> bool {
        self.issues.iter().any(SyncIssue::is_critical)
    }
}

/// A per-processor operation timeline rendered from an [`EventLog`] —
/// the shared trace-display machinery for race reports and the memory-model
/// verifier's counterexample rendering (`dashlat-verify`).
///
/// Each committed event becomes one row, in global commit order, annotated
/// with its cycle and per-process operation index, indented into one column
/// per process so interleavings read top-to-bottom:
///
/// ```text
///   cycle    P0                  P1
///       0    W 0x0 (op 0)
///       0                        R 0x10 (op 0)
/// ```
#[derive(Debug, Clone)]
pub struct OpTimeline {
    rows: Vec<(u64, usize, u64, String)>,
    nprocs: usize,
}

impl OpTimeline {
    /// Builds the timeline from a log's committed events.
    pub fn from_log(log: &EventLog) -> Self {
        use dashlat_cpu::events::EventKind;
        let rows = log
            .events
            .iter()
            .map(|e| {
                let what = match e.kind {
                    EventKind::Read(a) => format!("R {a}"),
                    EventKind::Write(a) => format!("W {a}"),
                    EventKind::Prefetch { addr, exclusive } => {
                        format!("PF{} {addr}", if exclusive { "x" } else { "" })
                    }
                    EventKind::Acquire(l) => format!("acq L{}", l.0),
                    EventKind::Release(l) => format!("rel L{}", l.0),
                    EventKind::BarrierArrive(b) => format!("bar B{}", b.0),
                    EventKind::BarrierForced(b) => format!("bar! B{}", b.0),
                    EventKind::Done => "done".to_string(),
                };
                (e.cycle.as_u64(), e.pid.0, e.op_index, what)
            })
            .collect();
        OpTimeline {
            rows,
            nprocs: log.nprocs,
        }
    }

    /// Number of rendered rows (committed events).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the log had no events.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl std::fmt::Display for OpTimeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        const COL: usize = 20;
        write!(f, "  {:>7}  ", "cycle")?;
        for p in 0..self.nprocs {
            write!(f, "{:<COL$}", format!("P{p}"))?;
        }
        writeln!(f)?;
        for (cycle, pid, op_index, what) in &self.rows {
            write!(f, "  {cycle:>7}  ")?;
            for p in 0..self.nprocs {
                if p == *pid {
                    write!(f, "{:<COL$}", format!("{what} (op {op_index})"))?;
                } else {
                    write!(f, "{:<COL$}", "")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Combined output of an analysis run.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Name of the analyzed subject (workload or trace file).
    pub subject: String,
    /// Process count of the analyzed run.
    pub nprocs: usize,
    /// Events analyzed.
    pub events: usize,
    /// Passes that ran.
    pub passes: Vec<PassKind>,
    /// Happens-before results, when the pass ran.
    pub hb: Option<HbSummary>,
    /// Lockset results, when the pass ran.
    pub lockset: Option<LocksetSummary>,
    /// Barrier-divergence results, when the pass ran.
    pub barrier: Option<BarrierSummary>,
    /// Prefetch-semantics results, when the pass ran.
    pub prefetch: Option<PrefetchSummary>,
    /// Sync-balance results, when the pass ran.
    pub sync_balance: Option<SyncBalanceSummary>,
    /// Replay diagnostics (forced grants/barriers — empty for live runs
    /// and clean traces).
    pub replay_notes: Vec<String>,
}

impl AnalysisReport {
    /// True when the happens-before pass found at least one race.
    pub fn race_detected(&self) -> bool {
        self.hb.as_ref().is_some_and(|h| h.races_total > 0)
    }

    /// Properly-labeled verdict: `Some(true)` when the happens-before pass
    /// ran and every ordinary conflicting access was ordered (and no
    /// structural sync damage was found), `Some(false)` when it ran and
    /// found violations, `None` when it did not run.
    pub fn properly_labeled(&self) -> Option<bool> {
        let hb = self.hb.as_ref()?;
        let clean = hb.races_total == 0
            && !self.barrier.as_ref().is_some_and(|b| b.divergent)
            && !self
                .sync_balance
                .as_ref()
                .is_some_and(SyncBalanceSummary::has_critical)
            && self.replay_notes.is_empty();
        Some(clean)
    }

    /// Renders the full human-readable report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "analysis of {} ({} processes, {} events)",
            self.subject, self.nprocs, self.events
        );
        if let Some(hb) = &self.hb {
            let _ = writeln!(
                out,
                "  happens-before: {} ordinary accesses checked, {} labeled accesses exempt, {} race(s)",
                hb.checked_accesses, hb.labeled_accesses, hb.races_total
            );
            for r in &hb.races {
                let _ = writeln!(out, "    {r}");
            }
            if hb.races_total as usize > hb.races.len() {
                let _ = writeln!(
                    out,
                    "    ... {} further race(s) suppressed",
                    hb.races_total as usize - hb.races.len()
                );
            }
        }
        if let Some(ls) = &self.lockset {
            let _ = writeln!(
                out,
                "  lockset (lint): {} location(s) with empty candidate set, {} labeled exempt",
                ls.warnings_total, ls.labeled_locations
            );
            for w in &ls.warnings {
                let _ = writeln!(out, "    {w}");
            }
            if ls.warnings_total as usize > ls.warnings.len() {
                let _ = writeln!(
                    out,
                    "    ... {} further warning(s) suppressed",
                    ls.warnings_total as usize - ls.warnings.len()
                );
            }
        }
        if let Some(b) = &self.barrier {
            let _ = writeln!(
                out,
                "  barriers: {} arrivals, divergence: {}{}",
                b.arrivals,
                if b.divergent { "YES" } else { "none" },
                if b.forced > 0 {
                    format!(", {} forced episode(s)", b.forced)
                } else {
                    String::new()
                }
            );
            for d in &b.details {
                let _ = writeln!(out, "    {d}");
            }
        }
        if let Some(p) = &self.prefetch {
            let _ = writeln!(
                out,
                "  prefetches: {} issued, {} covered ({:.0}%), {} useless, {} late, {} wrong-mode, {} sole-ordering-edge",
                p.issued,
                p.covered,
                p.coverage() * 100.0,
                p.useless,
                p.late,
                p.wrong_mode,
                p.sole_ordering_edges
            );
        }
        if let Some(s) = &self.sync_balance {
            let _ = writeln!(
                out,
                "  sync balance: {} acquires, {} releases, {} issue(s)",
                s.acquires,
                s.releases,
                s.issues.len()
            );
            for i in &s.issues {
                let _ = writeln!(out, "    {i}");
            }
        }
        for n in &self.replay_notes {
            let _ = writeln!(out, "  replay note: {n}");
        }
        match self.properly_labeled() {
            Some(true) => {
                let _ = writeln!(out, "  verdict: PROPERLY LABELED");
            }
            Some(false) => {
                let _ = writeln!(out, "  verdict: NOT properly labeled");
            }
            None => {
                let _ = writeln!(
                    out,
                    "  verdict: no certification (happens-before pass not run)"
                );
            }
        }
        out
    }
}
