//! Sync-balance lint: acquire/release pairing and barrier arithmetic.
//!
//! The cheapest possible sanity check over a synchronization stream:
//! every lock acquired must be released by its holder, no lock may be
//! granted while another process still holds it (the observable signature
//! of a dropped Release), and total barrier arrivals must divide evenly
//! by the process count. Critical findings here void the properly-labeled
//! verdict because the happens-before pass can only trust sync edges the
//! program actually executed.

use dashlat_cpu::events::{EventKind, EventLog};
use dashlat_cpu::ops::{BarrierId, LockId, ProcId};

use crate::report::{SyncBalanceSummary, SyncIssue};

/// Detailed issues kept; pathological streams are truncated.
const ISSUE_CAP: usize = 64;

/// Runs the sync-balance pass over `log`.
pub fn run(log: &EventLog) -> SyncBalanceSummary {
    let mut out = SyncBalanceSummary::default();
    let mut holder: Vec<Option<ProcId>> = Vec::new();
    let mut arrivals: Vec<u64> = Vec::new();
    let push = |out: &mut SyncBalanceSummary, issue: SyncIssue| {
        if out.issues.len() < ISSUE_CAP {
            out.issues.push(issue);
        }
    };
    for ev in &log.events {
        match ev.kind {
            EventKind::Acquire(l) => {
                out.acquires += 1;
                ensure(&mut holder, l.0);
                if let Some(h) = holder[l.0] {
                    if h != ev.pid {
                        push(
                            &mut out,
                            SyncIssue::GrantWhileHeld {
                                lock: l,
                                pid: ev.pid,
                                holder: h,
                            },
                        );
                    }
                }
                holder[l.0] = Some(ev.pid);
            }
            EventKind::Release(l) => {
                out.releases += 1;
                ensure(&mut holder, l.0);
                match holder[l.0] {
                    Some(h) if h == ev.pid => holder[l.0] = None,
                    other => push(
                        &mut out,
                        SyncIssue::ReleaseWithoutHold {
                            lock: l,
                            pid: ev.pid,
                            holder: other,
                        },
                    ),
                }
            }
            EventKind::BarrierArrive(b) => {
                ensure(&mut arrivals, b.0);
                arrivals[b.0] += 1;
            }
            _ => {}
        }
    }
    for (i, h) in holder.iter().enumerate() {
        if let Some(pid) = *h {
            push(
                &mut out,
                SyncIssue::UnreleasedLock {
                    lock: LockId(i),
                    pid,
                },
            );
        }
    }
    for (i, &n) in arrivals.iter().enumerate() {
        if n % log.nprocs as u64 != 0 {
            push(
                &mut out,
                SyncIssue::UnbalancedBarrier {
                    barrier: BarrierId(i),
                    arrivals: n,
                    nprocs: log.nprocs,
                },
            );
        }
    }
    out
}

fn ensure<T: Default + Clone>(v: &mut Vec<T>, idx: usize) {
    if v.len() <= idx {
        v.resize(idx + 1, T::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dashlat_cpu::events::events_from_trace;
    use dashlat_cpu::ops::{Op, SyncConfig};
    use dashlat_cpu::trace::Trace;
    use dashlat_mem::addr::Addr;

    fn trace(streams: Vec<Vec<Op>>) -> Trace {
        Trace {
            streams,
            sync: SyncConfig {
                lock_addrs: vec![Addr(0x1000)],
                barrier_addrs: vec![Addr(0x2000)],
                labeled_ranges: Vec::new(),
            },
            page_homes: None,
        }
    }

    #[test]
    fn balanced_stream_is_clean() {
        let t = trace(vec![
            vec![
                Op::Acquire(LockId(0)),
                Op::Release(LockId(0)),
                Op::Barrier(BarrierId(0)),
                Op::Done,
            ],
            vec![
                Op::Acquire(LockId(0)),
                Op::Release(LockId(0)),
                Op::Barrier(BarrierId(0)),
                Op::Done,
            ],
        ]);
        let s = run(&events_from_trace(&t));
        assert!(s.issues.is_empty(), "issues: {:?}", s.issues);
        assert_eq!(s.acquires, 2);
        assert_eq!(s.releases, 2);
        assert!(!s.has_critical());
    }

    #[test]
    fn dropped_release_shows_as_grant_while_held() {
        // P0 acquires and never releases; the replayer force-grants the
        // lock to P1, which the lint sees as a grant while held.
        let t = trace(vec![
            vec![Op::Acquire(LockId(0)), Op::Done],
            vec![Op::Acquire(LockId(0)), Op::Release(LockId(0)), Op::Done],
        ]);
        let s = run(&events_from_trace(&t));
        assert!(s.issues.iter().any(|i| matches!(
            i,
            SyncIssue::GrantWhileHeld {
                lock: LockId(0),
                ..
            }
        )));
        assert!(s.has_critical());
    }

    #[test]
    fn lock_held_at_exit_is_reported() {
        let t = trace(vec![vec![Op::Acquire(LockId(0)), Op::Done]]);
        let s = run(&events_from_trace(&t));
        assert!(s.issues.iter().any(|i| matches!(
            i,
            SyncIssue::UnreleasedLock {
                lock: LockId(0),
                ..
            }
        )));
    }

    #[test]
    fn uneven_barrier_arrivals_are_reported() {
        let t = trace(vec![
            vec![Op::Barrier(BarrierId(0)), Op::Done],
            vec![Op::Compute(2), Op::Done],
        ]);
        let s = run(&events_from_trace(&t));
        assert!(s
            .issues
            .iter()
            .any(|i| matches!(i, SyncIssue::UnbalancedBarrier { arrivals: 1, .. })));
    }
}
