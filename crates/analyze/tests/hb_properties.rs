//! Property tests for the happens-before pass over synthetic op streams.
//!
//! The central property mirrors the detector's contract: a stream of
//! balanced critical sections certifies race-free, and removing a Release
//! is flagged as a race *iff* the removed release was a load-bearing
//! ordering edge (some later acquire relied on it to order conflicting
//! accesses). The vendored proptest shim derives inputs from a
//! deterministic per-case RNG, so every run reproduces exactly.

use dashlat_analyze::{analyze, analyze_trace, PassKind};
use dashlat_cpu::events::{events_from_trace, EventKind};
use dashlat_cpu::ops::{LockId, Op, SyncConfig};
use dashlat_cpu::trace::Trace;
use dashlat_mem::addr::Addr;
use proptest::prelude::*;

/// Every critical section reads and writes this address.
const SHARED: Addr = Addr(0x40);

/// One process's behaviour: how many critical sections it runs and how
/// much private work pads them.
#[derive(Debug, Clone)]
struct ProcPlan {
    sections: usize,
    private_reads: u64,
    compute: u64,
}

fn proc_plan() -> impl Strategy<Value = ProcPlan> {
    ((1usize..4), (0u64..4), (1u64..20)).prop_map(|(sections, private_reads, compute)| ProcPlan {
        sections,
        private_reads,
        compute,
    })
}

fn build_streams(plans: &[ProcPlan], first_pid: usize) -> Vec<Vec<Op>> {
    plans
        .iter()
        .enumerate()
        .map(|(i, plan)| {
            let p = (first_pid + i) as u64;
            let mut ops = Vec::new();
            for _ in 0..plan.sections {
                for r in 0..plan.private_reads {
                    ops.push(Op::Read(Addr(0x2000 + p * 0x100 + r * 8)));
                }
                ops.push(Op::Compute(plan.compute));
                ops.push(Op::Acquire(LockId(0)));
                ops.push(Op::Read(SHARED));
                ops.push(Op::Write(SHARED));
                ops.push(Op::Release(LockId(0)));
            }
            ops.push(Op::Done);
            ops
        })
        .collect()
}

fn trace_of(streams: Vec<Vec<Op>>) -> Trace {
    Trace {
        streams,
        sync: SyncConfig {
            lock_addrs: vec![Addr(0x1000)],
            barrier_addrs: Vec::new(),
            labeled_ranges: Vec::new(),
        },
        page_homes: None,
    }
}

/// Removes the last `Release` op of `stream`; panics if there is none.
fn drop_last_release(stream: &mut Vec<Op>) {
    let i = stream
        .iter()
        .rposition(|o| matches!(o, Op::Release(_)))
        .expect("stream has a release");
    stream.remove(i);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Balanced critical sections always certify race-free, and the
    /// analysis is deterministic: re-running renders identically.
    #[test]
    fn balanced_streams_certify(
        plans in proptest::collection::vec(proc_plan(), 2..5),
    ) {
        let t = trace_of(build_streams(&plans, 0));
        let a = analyze_trace("prop", &t, &PassKind::ALL);
        prop_assert_eq!(a.properly_labeled(), Some(true), "{}", a.render());
        prop_assert!(a.replay_notes.is_empty());
        let b = analyze_trace("prop", &t, &PassKind::ALL);
        prop_assert_eq!(a.render(), b.render());
    }

    /// Dropping the Release that guards P0's only critical section —
    /// which is granted first and conflicts with every other section —
    /// is always reported as a race on the shared address, with the
    /// forced lock hand-off noted.
    #[test]
    fn removed_edge_is_always_a_race(
        plans in proptest::collection::vec(proc_plan(), 1..4),
    ) {
        // P0: a single section with its Release dropped, issued first.
        let mut streams = vec![vec![Op::Acquire(LockId(0)), Op::Write(SHARED), Op::Done]];
        streams.extend(build_streams(&plans, 1));
        let t = trace_of(streams);
        let a = analyze_trace("prop", &t, &PassKind::ALL);
        prop_assert!(a.race_detected(), "{}", a.render());
        prop_assert_eq!(a.properly_labeled(), Some(false));
        prop_assert!(!a.replay_notes.is_empty());
        let hb = a.hb.as_ref().expect("hb ran");
        prop_assert!(hb.races.iter().any(|r| r.addr == SHARED));
        let b = analyze_trace("prop", &t, &PassKind::ALL);
        prop_assert_eq!(a.render(), b.render());
    }

    /// The full iff: dropping a randomly chosen process's *last* Release
    /// is flagged as a race exactly when some later acquire depended on
    /// that edge — and certifies race-free when nothing followed.
    #[test]
    fn race_iff_removed_edge_was_load_bearing(
        plans in proptest::collection::vec(proc_plan(), 2..5),
        victim_raw in 0usize..16,
    ) {
        let mut streams = build_streams(&plans, 0);
        let victim = victim_raw % streams.len();
        drop_last_release(&mut streams[victim]);
        let log = events_from_trace(&trace_of(streams));
        // Independent oracle from the event stream alone: the removed
        // release mattered iff any acquire was granted after the
        // victim's final one (every section conflicts on SHARED).
        let last_victim_acq = log
            .events
            .iter()
            .rposition(|e| e.pid.0 == victim && matches!(e.kind, EventKind::Acquire(_)))
            .expect("victim acquired at least once");
        let edge_was_load_bearing = log.events[last_victim_acq + 1..]
            .iter()
            .any(|e| matches!(e.kind, EventKind::Acquire(_)));
        let a = analyze("prop", &log, &PassKind::ALL);
        prop_assert_eq!(
            a.race_detected(),
            edge_was_load_bearing,
            "oracle disagrees:\n{}",
            a.render()
        );
        prop_assert_eq!(a.properly_labeled(), Some(!edge_was_load_bearing), "{}", a.render());
    }
}
