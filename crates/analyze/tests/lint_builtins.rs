//! The static lint must certify every built-in workload: each one is
//! properly labeled by construction (the paper's precondition for its
//! RC results), their sync skeletons are deadlock-free, and all
//! processes traverse the same barrier sequence. These tests run the
//! four passes over the real programs at test scale — zero simulation
//! cycles.

use dashlat_analyze::lint::{lint_workload, LintOptions, LintReport};
use dashlat_cpu::ops::Topology;
use dashlat_mem::layout::AddressSpaceBuilder;
use dashlat_workloads::{Lu, LuParams, Mp3d, Mp3dParams, Pthor, PthorParams};

const NPROCS: usize = 8;

fn lint_lu(prefetch: bool) -> LintReport {
    let topo = Topology::new(NPROCS, 1);
    let mut space = AddressSpaceBuilder::new(NPROCS);
    let w = Lu::new(LuParams::test_scale(), topo, &mut space, prefetch);
    lint_workload("lu", &w, &LintOptions::default()).expect("lu forks")
}

fn lint_mp3d(prefetch: bool) -> LintReport {
    let topo = Topology::new(NPROCS, 1);
    let mut space = AddressSpaceBuilder::new(NPROCS);
    let w = Mp3d::new(Mp3dParams::test_scale(), topo, &mut space, prefetch);
    lint_workload("mp3d", &w, &LintOptions::default()).expect("mp3d forks")
}

fn lint_pthor(prefetch: bool) -> LintReport {
    let topo = Topology::new(NPROCS, 1);
    let mut space = AddressSpaceBuilder::new(NPROCS);
    let w = Pthor::new(PthorParams::test_scale(), topo, &mut space, prefetch);
    lint_workload("pthor", &w, &LintOptions::default()).expect("pthor forks")
}

#[test]
fn lu_certifies_statically() {
    let r = lint_lu(false);
    assert!(!r.is_critical(), "{}", r.render());
    assert!(!r.is_incomplete(), "{}", r.render());
    assert!(r.labeling.properly_labeled());
    // LU's pipeline also must produce no lock-order cycles despite its
    // ready-lock priming (high->low waits vs low->high priming): the
    // Goodlock distinct-process rule filters every artifact cycle.
    assert!(r.deadlock.cycles.is_empty(), "{}", r.render());
    assert_eq!(r.barriers.episodes, 2);
}

#[test]
fn lu_with_prefetch_has_no_dead_or_duplicate_prefetches() {
    let r = lint_lu(true);
    assert!(!r.is_critical(), "{}", r.render());
    assert!(r.prefetch.total > 0);
    assert!(r.prefetch.dead.is_empty(), "{}", r.render());
    assert!(r.prefetch.duplicate.is_empty(), "{}", r.render());
}

#[test]
fn mp3d_certifies_statically() {
    let r = lint_mp3d(false);
    assert!(!r.is_critical(), "{}", r.render());
    assert!(!r.is_incomplete());
    assert!(r.labeling.properly_labeled());
    // MP3D's labels (chaotic cell/global accumulations) are genuinely
    // needed — none may grade as over-labeled.
    assert!(r.labeling.over_labeled.is_empty(), "{}", r.render());
}

#[test]
fn pthor_certifies_statically() {
    let r = lint_pthor(false);
    assert!(!r.is_critical(), "{}", r.render());
    assert!(!r.is_incomplete());
    assert!(r.labeling.properly_labeled());
    assert!(r.deadlock.cycles.is_empty());
}

#[test]
fn prefetch_variants_stay_clean() {
    for r in [lint_mp3d(true), lint_pthor(true)] {
        assert!(!r.is_critical(), "{}", r.render());
    }
}
