//! Regression: the static lint must re-catch the repo's original seed
//! bug — LU's final-column owner never releasing its ready-lock — and
//! the W→W unlabeled-conflict shape the `verify-mutations` harness
//! exercises, both without simulating a cycle.
//!
//! The seed bug is reintroduced as a fixture: extract the clean LU
//! program, then delete the owner's final `Release` — exactly the op
//! the original bug never emitted — and lint the mutated trace.

use dashlat_analyze::lint::{lint_trace, lint_workload, LintOptions};
use dashlat_cpu::extract::{extract_program, ExtractOptions};
use dashlat_cpu::ops::{LockId, Op, ProcId, Topology};
use dashlat_cpu::trace::Trace;
use dashlat_mem::addr::Addr;
use dashlat_mem::layout::AddressSpaceBuilder;
use dashlat_workloads::{Lu, LuParams};

const NPROCS: usize = 8;

fn extract_lu() -> Trace {
    let topo = Topology::new(NPROCS, 1);
    let mut space = AddressSpaceBuilder::new(NPROCS);
    let w = Lu::new(LuParams::test_scale(), topo, &mut space, false);
    let ext = extract_program(&w, ExtractOptions::default()).expect("lu extracts");
    assert!(ext.is_clean(), "clean LU must extract cleanly");
    ext.trace
}

/// Drops the last `Release(lock)` from the stream of the column's
/// owner — the produce-release that signals "column ready" — and
/// returns the owner.
fn drop_owner_release(trace: &mut Trace, lock: LockId) -> ProcId {
    let owner = lock.0 % trace.streams.len();
    let stream = &mut trace.streams[owner];
    let at = stream
        .iter()
        .rposition(|op| matches!(op, Op::Release(l) if *l == lock))
        .unwrap_or_else(|| panic!("owner P{owner} never releases lock {}", lock.0));
    stream.remove(at);
    ProcId(owner)
}

#[test]
fn seed_lu_unreleased_ready_lock_is_caught_statically() {
    let mut trace = extract_lu();
    let n = trace.sync.lock_addrs.len(); // one ready-lock per column
    let final_lock = LockId(n - 1);
    let owner = drop_owner_release(&mut trace, final_lock);
    assert_eq!(owner.0, (n - 1) % NPROCS, "final column's owner");

    let r = lint_trace(
        "lu-seed-bug",
        &trace,
        Vec::new(),
        false,
        &LintOptions::default(),
    );
    assert!(r.is_critical(), "{}", r.render());
    let u = r
        .deadlock
        .unreleased
        .iter()
        .find(|u| u.lock == final_lock)
        .expect("unreleased ready-lock flagged");
    assert_eq!(u.pid, owner);
    assert!(r.render().contains("never releases lock"), "{}", r.render());
}

#[test]
fn dropped_mid_pipeline_release_is_a_definite_deadlock() {
    // Dropping a *consumed* column's release leaves the pivot waiters
    // blocked forever: the lint must name them.
    let mut trace = extract_lu();
    let victim = LockId(1);
    let owner = drop_owner_release(&mut trace, victim);

    let r = lint_trace(
        "lu-mid-drop",
        &trace,
        Vec::new(),
        false,
        &LintOptions::default(),
    );
    assert!(r.is_critical());
    let u = r
        .deadlock
        .unreleased
        .iter()
        .find(|u| u.lock == victim)
        .expect("unreleased pivot lock flagged");
    assert_eq!(u.pid, owner);
    assert!(
        !u.waiters.is_empty(),
        "pivot waiters must be reported: {}",
        r.render()
    );
    // With the release gone, the forced order from the producer's column
    // writes to the consumers' reads evaporates too: the labeling pass
    // must now see statically possible races on that column.
    assert!(!r.labeling.properly_labeled(), "{}", r.render());
}

#[test]
fn ww_conflict_without_labels_fails_statically() {
    // The verify-mutations W→W shape: two processes write the same
    // line with no ordering sync and no label — the exact conflict the
    // store-buffer litmus family exists to expose.
    use dashlat_cpu::script::ScriptWorkload;
    let w = ScriptWorkload::new(vec![
        vec![Op::Write(Addr(0x40)), Op::Read(Addr(0x50)), Op::Done],
        vec![Op::Write(Addr(0x50)), Op::Read(Addr(0x40)), Op::Done],
    ]);
    let r = lint_workload("ww", &w, &LintOptions::default()).expect("lints");
    assert!(r.is_critical());
    assert_eq!(r.labeling.under_labeled_addrs.len(), 2);
}

#[test]
fn fixture_mutation_only_affects_the_dropped_lock() {
    // Sanity: the mutated program is otherwise intact — the lint blames
    // exactly one lock, and the clean trace lints clean.
    let clean = extract_lu();
    let r = lint_trace(
        "lu-clean",
        &clean,
        Vec::new(),
        false,
        &LintOptions::default(),
    );
    assert!(!r.is_critical(), "{}", r.render());

    let mut mutated = clean;
    let n = mutated.sync.lock_addrs.len();
    drop_owner_release(&mut mutated, LockId(n - 1));
    let r = lint_trace(
        "lu-seed-bug",
        &mutated,
        Vec::new(),
        false,
        &LintOptions::default(),
    );
    assert_eq!(r.deadlock.unreleased.len(), 1);
    assert!(r.deadlock.bad_releases.is_empty());
    assert!(r.barriers.divergence.is_none());
}
