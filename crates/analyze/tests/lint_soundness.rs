//! Soundness of the static PL pass against the dynamic FastTrack
//! detector: **static ⊇ dynamic**.
//!
//! The static must-happens-before relation only contains edges forced
//! in *every* execution, while a dynamic replay's happens-before
//! contains the edges of *one* schedule — a superset. So every race the
//! dynamic detector reports on a replayed schedule must appear among
//! the static pass's under-labeled addresses. The property tests pin
//! this over random synthetic workloads mixing lock-protected,
//! barrier-phased, and deliberately unordered accesses.
//!
//! Second property: lock-balanced programs (every acquire matched by a
//! release, no nested acquires in conflicting order) produce no
//! deadlock findings.

use dashlat_analyze::lint::{lint_trace, LintOptions};
use dashlat_analyze::{analyze, PassKind};
use dashlat_cpu::events::events_from_trace;
use dashlat_cpu::ops::{BarrierId, LockId, Op, SyncConfig};
use dashlat_cpu::trace::Trace;
use dashlat_mem::addr::Addr;
use proptest::prelude::*;

/// What one process does in one "slot" of the generated program.
#[derive(Debug, Clone, Copy)]
enum Slot {
    /// Read/write a shared address under a lock.
    Locked { lock: usize, addr: u64, write: bool },
    /// Touch a shared address with no protection at all.
    Bare { addr: u64, write: bool },
    /// Private computation.
    Compute(u64),
}

fn slot() -> impl Strategy<Value = Slot> {
    prop_oneof![
        ((0usize..2), (0u64..3), any::<bool>()).prop_map(|(lock, a, write)| Slot::Locked {
            lock,
            addr: 0x40 + a * 16,
            write
        }),
        ((0u64..3), any::<bool>()).prop_map(|(a, write)| Slot::Bare {
            addr: 0x40 + a * 16,
            write
        }),
        (1u64..10).prop_map(Slot::Compute),
    ]
}

/// A process: slots before the barrier, slots after.
fn proc_plan() -> impl Strategy<Value = (Vec<Slot>, Vec<Slot>)> {
    (
        proptest::collection::vec(slot(), 0..5),
        proptest::collection::vec(slot(), 0..5),
    )
}

fn emit(ops: &mut Vec<Op>, s: Slot) {
    match s {
        Slot::Locked { lock, addr, write } => {
            ops.push(Op::Acquire(LockId(lock)));
            ops.push(if write {
                Op::Write(Addr(addr))
            } else {
                Op::Read(Addr(addr))
            });
            ops.push(Op::Release(LockId(lock)));
        }
        Slot::Bare { addr, write } => ops.push(if write {
            Op::Write(Addr(addr))
        } else {
            Op::Read(Addr(addr))
        }),
        Slot::Compute(c) => ops.push(Op::Compute(c)),
    }
}

fn build_trace(plans: &[(Vec<Slot>, Vec<Slot>)]) -> Trace {
    let streams = plans
        .iter()
        .map(|(before, after)| {
            let mut ops = Vec::new();
            for &s in before {
                emit(&mut ops, s);
            }
            ops.push(Op::Barrier(BarrierId(0)));
            for &s in after {
                emit(&mut ops, s);
            }
            ops.push(Op::Done);
            ops
        })
        .collect();
    Trace {
        streams,
        sync: SyncConfig {
            lock_addrs: vec![Addr(0x1000), Addr(0x1010)],
            barrier_addrs: vec![Addr(0x2000)],
            labeled_ranges: Vec::new(),
        },
        page_homes: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every dynamically detected race address is statically flagged as
    /// under-labeled: the static pass can only be *more* pessimistic.
    #[test]
    fn static_findings_superset_of_dynamic(
        plans in proptest::collection::vec(proc_plan(), 2..5),
    ) {
        let trace = build_trace(&plans);
        let lint = lint_trace("prop", &trace, Vec::new(), false, &LintOptions::default());

        let log = events_from_trace(&trace);
        let dynamic = analyze("prop", &log, &[PassKind::HappensBefore]);
        if let Some(hb) = &dynamic.hb {
            for race in &hb.races {
                prop_assert!(
                    lint.labeling.under_labeled_addrs.contains(&race.addr),
                    "dynamic race at {:#x} missed statically\n{}",
                    race.addr.0,
                    lint.render()
                );
            }
        }
    }

    /// Lock-balanced programs never produce deadlock findings: every
    /// generated acquire is released in the same slot and never nests.
    #[test]
    fn balanced_programs_have_no_deadlock_lints(
        plans in proptest::collection::vec(proc_plan(), 2..5),
    ) {
        let trace = build_trace(&plans);
        let lint = lint_trace("prop", &trace, Vec::new(), false, &LintOptions::default());
        prop_assert!(lint.deadlock.cycles.is_empty(), "{}", lint.render());
        prop_assert!(lint.deadlock.unreleased.is_empty(), "{}", lint.render());
        prop_assert!(lint.deadlock.bad_releases.is_empty(), "{}", lint.render());
        prop_assert!(lint.barriers.divergence.is_none(), "{}", lint.render());
    }

    /// A statically certified program never races dynamically — the
    /// contrapositive of soundness, checked for extra confidence.
    #[test]
    fn certified_programs_never_race_dynamically(
        plans in proptest::collection::vec(proc_plan(), 2..5),
    ) {
        let trace = build_trace(&plans);
        let lint = lint_trace("prop", &trace, Vec::new(), false, &LintOptions::default());
        if lint.labeling.properly_labeled() {
            let log = events_from_trace(&trace);
            let dynamic = analyze("prop", &log, &[PassKind::HappensBefore]);
            let races = dynamic.hb.as_ref().map_or(0, |h| h.races.len());
            prop_assert!(races == 0, "statically certified but dynamically racy");
        }
    }
}
