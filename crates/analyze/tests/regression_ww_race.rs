//! Scripted regression: a two-processor trace with a deliberate
//! unsynchronized write-write conflict must be reported with both access
//! sites, the conflicting line address, and the lock that would have
//! ordered them.

use dashlat_analyze::{analyze_trace, PassKind};
use dashlat_cpu::trace::Trace;
use dashlat_mem::addr::Addr;

/// P0 writes 0x40 under lock 0; P1 writes the same address with no lock.
const RACY_TRACE: &str = "procs 2\n\
                          lock 0x1000\n\
                          0 A 0\n\
                          0 W 0x40\n\
                          0 L 0\n\
                          0 D\n\
                          1 W 0x40\n\
                          1 D\n";

#[test]
fn unsynchronized_write_write_conflict_is_fully_reported() {
    let trace = Trace::from_text(RACY_TRACE).expect("trace parses");
    let report = analyze_trace("regression", &trace, &PassKind::ALL);

    assert!(report.race_detected());
    assert_eq!(report.properly_labeled(), Some(false));

    let hb = report.hb.as_ref().expect("hb pass ran");
    assert_eq!(hb.races_total, 1);
    let race = &hb.races[0];

    // Both access sites, by processor.
    let procs = [race.first.pid.0, race.second.pid.0];
    assert!(procs.contains(&0) && procs.contains(&1), "{race:?}");

    // The conflicting line address.
    assert_eq!(race.addr, Addr(0x40));
    assert_eq!(race.line, Addr(0x40).line());

    // The lock that would have ordered them.
    assert_eq!(race.missing_locks, vec![dashlat_cpu::ops::LockId(0)]);

    // The rendered report names all three for humans too.
    let text = report.render();
    assert!(text.contains("P0"), "{text}");
    assert!(text.contains("P1"), "{text}");
    assert!(text.contains("line#"), "{text}");
    assert!(text.contains("missing lock 0"), "{text}");
}

#[test]
fn adding_the_lock_silences_the_report() {
    let fixed = "procs 2\n\
                 lock 0x1000\n\
                 0 A 0\n\
                 0 W 0x40\n\
                 0 L 0\n\
                 0 D\n\
                 1 A 0\n\
                 1 W 0x40\n\
                 1 L 0\n\
                 1 D\n";
    let trace = Trace::from_text(fixed).expect("trace parses");
    let report = analyze_trace("regression", &trace, &PassKind::ALL);
    assert!(!report.race_detected(), "{}", report.render());
    assert_eq!(report.properly_labeled(), Some(true));
}
