//! Criterion microbenchmarks of the simulator itself.
//!
//! These measure the *host* cost of simulation (events per second through
//! the memory system and machine), not simulated-machine performance — the
//! figures do that. Useful for keeping the simulator fast enough that
//! paper-scale sweeps stay interactive.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dashlat::apps::App;
use dashlat::config::ExperimentConfig;
use dashlat::runner::run;
use dashlat_cpu::config::ProcConfig;
use dashlat_cpu::machine::Machine;
use dashlat_cpu::ops::Topology;
use dashlat_mem::addr::{LineAddr, NodeId};
use dashlat_mem::contention::{Contention, NetworkModel, OccupancyTable};
use dashlat_mem::directory::{Directory, DirectoryKind};
use dashlat_mem::layout::{AddressSpaceBuilder, Placement};
use dashlat_mem::system::{AccessKind, MemConfig, MemorySystem};
use dashlat_sim::{Cycle, EventQueue, QueueHints, Xorshift};
use dashlat_workloads::synthetic::UniformRandom;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut rng = Xorshift::new(1);
            for i in 0..10_000u64 {
                q.schedule(Cycle(rng.below(1_000_000)), i);
            }
            let mut last = Cycle::ZERO;
            while let Some((t, _)) = q.pop() {
                assert!(t >= last);
                last = t;
            }
        });
    });
    c.bench_function("event_queue/batched_drain_10k", |b| {
        // The machine's hot path: pre-sized wheel, whole-bucket drains.
        b.iter(|| {
            let mut q = EventQueue::with_hints(QueueHints {
                bucket_capacity: 64,
                overflow_capacity: 16 * 1024,
            });
            let mut rng = Xorshift::new(1);
            let mut batch: Vec<u64> = Vec::with_capacity(64);
            for i in 0..10_000u64 {
                q.schedule(Cycle(rng.below(1_000_000)), i);
            }
            let mut drained = 0usize;
            while q.drain_next_into(&mut batch).is_some() {
                drained += batch.len();
                batch.clear();
            }
            assert_eq!(drained, 10_000);
            drained
        });
    });
}

fn bench_directory(c: &mut Criterion) {
    // Raw directory state-machine cost, isolated from caches and latency
    // accounting: steady-state lookups against a pre-populated line set.
    let mut g = c.benchmark_group("directory");
    const LINES: u64 = 4096;
    g.bench_function("read_shared_4k_lines", |b| {
        let mut dir = Directory::with_kind_sized(DirectoryKind::FullMap, 16, LINES as usize);
        for l in 0..LINES {
            dir.read(LineAddr(l), NodeId((l % 16) as usize));
        }
        let mut l = 0u64;
        b.iter(|| {
            l = (l + 1) % LINES;
            dir.read(LineAddr(l), NodeId(((l + 7) % 16) as usize))
        });
    });
    g.bench_function("write_invalidate_4k_lines", |b| {
        // Every write finds sharers from the previous round and issues
        // invalidations: the protocol's widest directory transition.
        let mut dir = Directory::with_kind_sized(DirectoryKind::FullMap, 16, LINES as usize);
        let mut l = 0u64;
        b.iter(|| {
            l = (l + 1) % LINES;
            dir.read(LineAddr(l), NodeId((l % 16) as usize));
            dir.read(LineAddr(l), NodeId(((l + 5) % 16) as usize));
            dir.write(LineAddr(l), NodeId(((l + 11) % 16) as usize))
        });
    });
    g.finish();
}

fn bench_contention(c: &mut Criterion) {
    // Cost of one contention charge (resource acquire + queueing-delay
    // bookkeeping) for each pool, under both network models.
    let mut g = c.benchmark_group("contention");
    g.bench_function("bus_and_memory_charge", |b| {
        let mut con = Contention::new(16, OccupancyTable::dash(), true);
        let mut now = Cycle::ZERO;
        let mut n = 0usize;
        b.iter(|| {
            n = (n + 1) % 16;
            now += Cycle(3);
            con.bus(now, NodeId(n)) + con.memory(now, NodeId(n))
        });
    });
    g.bench_function("network_charge_ports", |b| {
        let mut con =
            Contention::with_network(16, OccupancyTable::dash(), true, NetworkModel::Ports);
        let mut now = Cycle::ZERO;
        let mut n = 0usize;
        b.iter(|| {
            n = (n + 1) % 16;
            now += Cycle(3);
            con.network(now, NodeId(n), NodeId((n + 5) % 16))
        });
    });
    g.bench_function("network_charge_mesh2d", |b| {
        let mut con =
            Contention::with_network(16, OccupancyTable::dash(), true, NetworkModel::Mesh2D);
        let mut now = Cycle::ZERO;
        let mut n = 0usize;
        b.iter(|| {
            n = (n + 1) % 16;
            now += Cycle(3);
            con.network(now, NodeId(n), NodeId((n + 5) % 16))
        });
    });
    g.finish();
}

fn bench_memory_system(c: &mut Criterion) {
    c.bench_function("memory_system/100k_random_accesses", |b| {
        b.iter_batched(
            || {
                let mut space = AddressSpaceBuilder::new(16);
                let seg = space.alloc("region", 1 << 20, Placement::RoundRobin);
                let mem = MemorySystem::new(MemConfig::dash_scaled(16), space.build());
                (mem, seg, Xorshift::new(7))
            },
            |(mut mem, seg, mut rng)| {
                let mut now = Cycle::ZERO;
                for _ in 0..100_000 {
                    let node = NodeId(rng.index(16));
                    let addr = seg.at(rng.below(seg.len() / 16) * 16);
                    let kind = if rng.chance(0.3) {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    };
                    let r = mem.access(now, node, addr, kind);
                    now = now.max(r.done_at.saturating_sub(Cycle(64)));
                }
                mem
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_machine(c: &mut Criterion) {
    c.bench_function("machine/uniform_random_16x200", |b| {
        b.iter_batched(
            || {
                let topo = Topology::new(16, 1);
                let mut space = AddressSpaceBuilder::new(16);
                let w = UniformRandom::new(topo, &mut space, 1 << 18, 200, 0.3, 5, 3);
                let mem = MemorySystem::new(MemConfig::dash_scaled(16), space.build());
                (topo, mem, w)
            },
            |(topo, mem, w)| {
                Machine::new(ProcConfig::sc_baseline(), topo, mem, w)
                    .run()
                    .expect("terminates")
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_apps_test_scale(c: &mut Criterion) {
    let mut g = c.benchmark_group("apps_test_scale");
    g.sample_size(10);
    for app in App::ALL {
        g.bench_function(app.name(), |b| {
            b.iter(|| run(app, &ExperimentConfig::base_test()).expect("runs"));
        });
    }
    g.finish();
}

fn bench_protocol_paths(c: &mut Criterion) {
    // Host cost of each Table-1 service class in isolation.
    let mut g = c.benchmark_group("protocol_paths");
    let build = || {
        let mut space = AddressSpaceBuilder::new(4);
        let locals: Vec<_> = space
            .alloc_per_node("local", 4096)
            .iter()
            .map(dashlat_mem::Segment::base)
            .collect();
        let mut cfg = MemConfig::dash_scaled(4);
        cfg.contention = false;
        (MemorySystem::new(cfg, space.build()), locals)
    };
    g.bench_function("primary_hit", |b| {
        let (mut mem, locals) = build();
        mem.access(Cycle(0), NodeId(0), locals[0], AccessKind::Read);
        let mut now = Cycle(100);
        b.iter(|| {
            now += Cycle(2);
            mem.access(now, NodeId(0), locals[0], AccessKind::Read)
        });
    });
    g.bench_function("write_hit_owned", |b| {
        let (mut mem, locals) = build();
        mem.access(Cycle(0), NodeId(0), locals[0], AccessKind::Write);
        let mut now = Cycle(100);
        b.iter(|| {
            now += Cycle(4);
            mem.access(now, NodeId(0), locals[0], AccessKind::Write)
        });
    });
    g.bench_function("remote_dirty_pingpong", |b| {
        // Two nodes alternately writing one line: the protocol's most
        // expensive path (ownership transfer) on every access.
        let (mut mem, locals) = build();
        let mut now = Cycle(0);
        let mut n = 0usize;
        b.iter(|| {
            n = (n + 1) % 2;
            now += Cycle(100);
            mem.access(now, NodeId(n), locals[3], AccessKind::Write)
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_directory,
    bench_contention,
    bench_memory_system,
    bench_machine,
    bench_apps_test_scale,
    bench_protocol_paths
);
criterion_main!(benches);
