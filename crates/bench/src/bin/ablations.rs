//! Ablation studies on the design choices DESIGN.md calls out.
//!
//! These go beyond the paper's figures: each sweep isolates one mechanism
//! of the simulated machine and shows its contribution.
//!
//! * write-buffer depth (RC's pipelining headroom),
//! * invalidation-acknowledgement latency (what RC releases wait for),
//! * context-switch overhead beyond the paper's {4, 16},
//! * cache scaling (the paper's §2.3 scaled-vs-full-size check),
//! * contention on/off (how much of the latency is queueing).
//!
//! Every measurement goes through a [`SweepLog`]: a single failing
//! configuration is recorded and skipped, the rest of the sweep still
//! runs, and the binary ends with a (partial, if needed) JSON record and
//! exit code 5 instead of aborting mid-sweep.

use std::process::ExitCode;

use dashlat::apps::App;
use dashlat::runner::run;
use dashlat_bench::{base_config_from_args, print_preamble, SweepLog};
use dashlat_sim::Cycle;

fn main() -> ExitCode {
    let base = base_config_from_args();
    print_preamble("Ablations", &base);
    let mut log = SweepLog::new();

    println!("## Write-buffer depth (MP3D, RC)\n");
    let rc = base.clone().with_rc();
    for depth in [1usize, 2, 4, 8, 16, 32] {
        let cfg = rc.clone();
        let t = log.measure_with("write-buffer-depth", &format!("depth={depth}"), || {
            // Depth is a ProcConfig knob; route it through a one-off run.
            let topo = cfg.topology();
            let mut space = dashlat_mem::layout::AddressSpaceBuilder::new(cfg.processors);
            let w = App::Mp3d.build(cfg.scale, topo, &mut space, false);
            let mem = dashlat_mem::system::MemorySystem::new(cfg.mem_config(), space.build());
            let mut pc = cfg.proc_config();
            pc.write_buffer_entries = depth;
            dashlat_cpu::machine::Machine::new(pc, topo, mem, w)
                .run()
                .map(|r| r.elapsed.as_u64())
                .map_err(|e| e.to_string())
        });
        if let Some(t) = t {
            println!("  depth {depth:>2}: {t:>12} pclk");
        }
    }

    println!("\n## Invalidation-ack latency (PTHOR, RC; what releases wait for)\n");
    for ack in [0u64, 10, 20, 40, 80] {
        let cfg = base.clone().with_rc();
        let t = log.measure_with("inval-ack-latency", &format!("ack={ack}"), || {
            let topo = cfg.topology();
            let mut space = dashlat_mem::layout::AddressSpaceBuilder::new(cfg.processors);
            let w = App::Pthor.build(cfg.scale, topo, &mut space, false);
            let mut mc = cfg.mem_config();
            mc.latencies.inval_roundtrip = Cycle(ack);
            let mem = dashlat_mem::system::MemorySystem::new(mc, space.build());
            dashlat_cpu::machine::Machine::new(cfg.proc_config(), topo, mem, w)
                .run()
                .map(|r| r.elapsed.as_u64())
                .map_err(|e| e.to_string())
        });
        if let Some(t) = t {
            println!("  ack +{ack:>3}: {t:>12} pclk");
        }
    }

    println!(
        "\n## Prefetch schedule: distributed vs whole-column burst (LU, SC+pf; section 5.2)\n"
    );
    for burst in [false, true] {
        let point = if burst { "burst" } else { "distributed" };
        let t = log.measure_with("prefetch-schedule", point, || {
            let topo = base.topology();
            let mut space = dashlat_mem::layout::AddressSpaceBuilder::new(base.processors);
            let params = dashlat_workloads::lu::LuParams {
                burst_prefetch: burst,
                ..match base.scale {
                    dashlat::config::AppScale::Paper => dashlat_workloads::lu::LuParams::paper(),
                    dashlat::config::AppScale::Test => {
                        dashlat_workloads::lu::LuParams::test_scale()
                    }
                }
            };
            let w = dashlat_workloads::lu::Lu::new(params, topo, &mut space, true);
            let mem = dashlat_mem::system::MemorySystem::new(base.mem_config(), space.build());
            let mut pc = base.proc_config();
            pc.prefetching = true;
            dashlat_cpu::machine::Machine::new(pc, topo, mem, w)
                .run()
                .map(|r| r.elapsed.as_u64())
                .map_err(|e| e.to_string())
        });
        if let Some(t) = t {
            println!(
                "  {}: {t:>12} pclk",
                if burst { "burst      " } else { "distributed" }
            );
        }
    }

    println!("\n## Context-switch overhead (MP3D, SC, 4 contexts)\n");
    for sw in [0u64, 1, 2, 4, 8, 16, 32] {
        let cfg = base.clone().with_contexts(4, Cycle(sw));
        let t = log.measure(
            "context-switch-overhead",
            &format!("switch={sw}"),
            App::Mp3d,
            &cfg,
        );
        if let Some(t) = t {
            println!("  switch {sw:>2}: {t:>12} pclk");
        }
    }

    println!("\n## Cache scaling (all apps, SC)\n");
    for (label, full) in [("scaled 2KB/4KB", false), ("full 64KB/256KB", true)] {
        for app in App::ALL {
            let cfg = if full {
                base.clone().with_full_caches()
            } else {
                base.clone()
            };
            let mut read_hits = String::new();
            let t = log.measure_with("cache-scaling", &format!("{label}/{}", app.name()), || {
                let e = run(app, &cfg).map_err(|e| e.to_string())?;
                read_hits = e.result.mem.read_hits.to_string();
                Ok(e.result.elapsed.as_u64())
            });
            if let Some(t) = t {
                println!(
                    "  {label:<16} {:<6} {t:>12} pclk | read hits {read_hits}",
                    app.name(),
                );
            }
        }
    }

    println!("\n## Read lookahead: the section-4.1 out-of-order what-if (all apps, RC)\n");
    for app in App::ALL {
        print!("  {:<6}", app.name());
        for window in [0u64, 16, 32, 64, 128] {
            let cfg = base.clone().with_rc().with_read_lookahead(Cycle(window));
            let point = format!("{}/W{window}", app.name());
            match log.measure("read-lookahead", &point, app, &cfg) {
                Some(t) => print!("  W{window}: {t:>11}"),
                None => print!("  W{window}:      failed"),
            }
        }
        println!();
    }

    println!("\n## Network model: endpoint ports vs 2-D mesh (all apps, SC)\n");
    for app in App::ALL {
        let ports = log.measure(
            "network-model",
            &format!("{}/ports", app.name()),
            app,
            &base,
        );
        let mesh = log.measure(
            "network-model",
            &format!("{}/mesh", app.name()),
            app,
            &base.clone().with_mesh_network(),
        );
        if let (Some(ports), Some(mesh)) = (ports, mesh) {
            println!(
                "  {:<6} ports {ports:>12} | mesh {mesh:>12} | delta {:>+5.1}%",
                app.name(),
                (mesh as f64 / ports as f64 - 1.0) * 100.0
            );
        }
    }

    println!("\n## Directory organisation: full-map vs Dir_i-B (MP3D + PTHOR, SC)\n");
    for app in [App::Mp3d, App::Pthor] {
        let full = log.measure("directory", &format!("{}/full-map", app.name()), app, &base);
        for ptrs in [1usize, 2, 4] {
            let limited = log.measure(
                "directory",
                &format!("{}/Dir{ptrs}B", app.name()),
                app,
                &base.clone().with_limited_directory(ptrs),
            );
            if let (Some(full), Some(limited)) = (full, limited) {
                println!(
                    "  {:<6} full-map {full:>12} | Dir{ptrs}B {limited:>12} | delta {:>+5.1}%",
                    app.name(),
                    (limited as f64 / full as f64 - 1.0) * 100.0
                );
            }
        }
    }

    println!("\n## Contention model on/off (all apps, SC)\n");
    for app in App::ALL {
        let on = log.measure("contention", &format!("{}/on", app.name()), app, &base);
        let mut cfg = base.clone();
        cfg.contention = false;
        let off = log.measure("contention", &format!("{}/off", app.name()), app, &cfg);
        if let (Some(on), Some(off)) = (on, off) {
            println!(
                "  {:<6} contention on {on:>12} | off {off:>12} | queueing adds {:>5.1}%",
                app.name(),
                (on as f64 / off as f64 - 1.0) * 100.0
            );
        }
    }

    log.finish()
}
