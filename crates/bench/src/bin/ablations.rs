//! Ablation studies on the design choices DESIGN.md calls out.
//!
//! These go beyond the paper's figures: each sweep isolates one mechanism
//! of the simulated machine and shows its contribution.
//!
//! * write-buffer depth (RC's pipelining headroom),
//! * invalidation-acknowledgement latency (what RC releases wait for),
//! * context-switch overhead beyond the paper's {4, 16},
//! * cache scaling (the paper's §2.3 scaled-vs-full-size check),
//! * contention on/off (how much of the latency is queueing).
//!
//! Every measurement goes through a [`SweepLog`]: each study's cells are
//! queued as a [`SweepBatch`] and run in parallel on the sweep worker pool
//! (`--jobs N` to cap it). A single failing configuration is recorded and
//! skipped, the rest of the sweep still runs, and the binary ends with a
//! (partial, if needed) JSON record and exit code 5 instead of aborting
//! mid-sweep.

use std::process::ExitCode;
use std::sync::Mutex;

use dashlat::apps::App;
use dashlat::runner::run;
use dashlat_bench::{base_config_from_args, print_preamble, SweepBatch, SweepLog};
use dashlat_sim::Cycle;

fn main() -> ExitCode {
    let base = base_config_from_args();
    print_preamble("Ablations", &base);
    let mut log = SweepLog::new();

    println!("## Write-buffer depth (MP3D, RC)\n");
    const DEPTHS: [usize; 6] = [1, 2, 4, 8, 16, 32];
    let rc = base.clone().with_rc();
    let mut batch = SweepBatch::new();
    for depth in DEPTHS {
        let cfg = rc.clone();
        batch.add("write-buffer-depth", format!("depth={depth}"), move || {
            // Depth is a ProcConfig knob; route it through a one-off run.
            let topo = cfg.topology();
            let mut space = dashlat_mem::layout::AddressSpaceBuilder::new(cfg.processors);
            let w = App::Mp3d.build(cfg.scale, topo, &mut space, false);
            let mem = dashlat_mem::system::MemorySystem::new(cfg.mem_config(), space.build());
            let mut pc = cfg.proc_config();
            pc.write_buffer_entries = depth;
            dashlat_cpu::machine::Machine::new(pc, topo, mem, w)
                .run()
                .map(|r| r.elapsed.as_u64())
                .map_err(|e| e.to_string())
        });
    }
    let elapsed = log.measure_batch(batch, None);
    for (depth, t) in DEPTHS.iter().zip(&elapsed) {
        if let Some(t) = t {
            println!("  depth {depth:>2}: {t:>12} pclk");
        }
    }

    println!("\n## Invalidation-ack latency (PTHOR, RC; what releases wait for)\n");
    const ACKS: [u64; 5] = [0, 10, 20, 40, 80];
    let mut batch = SweepBatch::new();
    for ack in ACKS {
        let cfg = base.clone().with_rc();
        batch.add("inval-ack-latency", format!("ack={ack}"), move || {
            let topo = cfg.topology();
            let mut space = dashlat_mem::layout::AddressSpaceBuilder::new(cfg.processors);
            let w = App::Pthor.build(cfg.scale, topo, &mut space, false);
            let mut mc = cfg.mem_config();
            mc.latencies.inval_roundtrip = Cycle(ack);
            let mem = dashlat_mem::system::MemorySystem::new(mc, space.build());
            dashlat_cpu::machine::Machine::new(cfg.proc_config(), topo, mem, w)
                .run()
                .map(|r| r.elapsed.as_u64())
                .map_err(|e| e.to_string())
        });
    }
    let elapsed = log.measure_batch(batch, None);
    for (ack, t) in ACKS.iter().zip(&elapsed) {
        if let Some(t) = t {
            println!("  ack +{ack:>3}: {t:>12} pclk");
        }
    }

    println!(
        "\n## Prefetch schedule: distributed vs whole-column burst (LU, SC+pf; section 5.2)\n"
    );
    let mut batch = SweepBatch::new();
    for burst in [false, true] {
        let point = if burst { "burst" } else { "distributed" };
        let cfg = base.clone();
        batch.add("prefetch-schedule", point, move || {
            let topo = cfg.topology();
            let mut space = dashlat_mem::layout::AddressSpaceBuilder::new(cfg.processors);
            let params = dashlat_workloads::lu::LuParams {
                burst_prefetch: burst,
                ..match cfg.scale {
                    dashlat::config::AppScale::Paper => dashlat_workloads::lu::LuParams::paper(),
                    dashlat::config::AppScale::Test => {
                        dashlat_workloads::lu::LuParams::test_scale()
                    }
                }
            };
            let w = dashlat_workloads::lu::Lu::new(params, topo, &mut space, true);
            let mem = dashlat_mem::system::MemorySystem::new(cfg.mem_config(), space.build());
            let mut pc = cfg.proc_config();
            pc.prefetching = true;
            dashlat_cpu::machine::Machine::new(pc, topo, mem, w)
                .run()
                .map(|r| r.elapsed.as_u64())
                .map_err(|e| e.to_string())
        });
    }
    let elapsed = log.measure_batch(batch, None);
    for (burst, t) in [false, true].iter().zip(&elapsed) {
        if let Some(t) = t {
            println!(
                "  {}: {t:>12} pclk",
                if *burst { "burst      " } else { "distributed" }
            );
        }
    }

    println!("\n## Context-switch overhead (MP3D, SC, 4 contexts)\n");
    const SWITCHES: [u64; 7] = [0, 1, 2, 4, 8, 16, 32];
    let mut batch = SweepBatch::new();
    for sw in SWITCHES {
        let cfg = base.clone().with_contexts(4, Cycle(sw));
        batch.add_run(
            "context-switch-overhead",
            format!("switch={sw}"),
            App::Mp3d,
            &cfg,
        );
    }
    let elapsed = log.measure_batch(batch, None);
    for (sw, t) in SWITCHES.iter().zip(&elapsed) {
        if let Some(t) = t {
            println!("  switch {sw:>2}: {t:>12} pclk");
        }
    }

    println!("\n## Cache scaling (all apps, SC)\n");
    const CACHES: [(&str, bool); 2] = [("scaled 2KB/4KB", false), ("full 64KB/256KB", true)];
    let read_hits: Vec<Mutex<String>> = (0..CACHES.len() * App::ALL.len())
        .map(|_| Mutex::new(String::new()))
        .collect();
    let mut batch = SweepBatch::new();
    for (c, (label, full)) in CACHES.iter().enumerate() {
        for (a, app) in App::ALL.iter().enumerate() {
            let cfg = if *full {
                base.clone().with_full_caches()
            } else {
                base.clone()
            };
            let hits = &read_hits[c * App::ALL.len() + a];
            let app = *app;
            batch.add(
                "cache-scaling",
                format!("{label}/{}", app.name()),
                move || {
                    let e = run(app, &cfg).map_err(|e| e.to_string())?;
                    *hits.lock().expect("hits lock") = e.result.mem.read_hits.to_string();
                    Ok(e.result.elapsed.as_u64())
                },
            );
        }
    }
    let elapsed = log.measure_batch(batch, None);
    for (c, (label, _)) in CACHES.iter().enumerate() {
        for (a, app) in App::ALL.iter().enumerate() {
            let i = c * App::ALL.len() + a;
            if let Some(t) = elapsed[i] {
                println!(
                    "  {label:<16} {:<6} {t:>12} pclk | read hits {}",
                    app.name(),
                    read_hits[i].lock().expect("hits lock"),
                );
            }
        }
    }

    println!("\n## Read lookahead: the section-4.1 out-of-order what-if (all apps, RC)\n");
    const WINDOWS: [u64; 5] = [0, 16, 32, 64, 128];
    let mut batch = SweepBatch::new();
    for app in App::ALL {
        for window in WINDOWS {
            let cfg = base.clone().with_rc().with_read_lookahead(Cycle(window));
            batch.add_run(
                "read-lookahead",
                format!("{}/W{window}", app.name()),
                app,
                &cfg,
            );
        }
    }
    let elapsed = log.measure_batch(batch, None);
    for (a, app) in App::ALL.iter().enumerate() {
        print!("  {:<6}", app.name());
        for (wi, window) in WINDOWS.iter().enumerate() {
            match elapsed[a * WINDOWS.len() + wi] {
                Some(t) => print!("  W{window}: {t:>11}"),
                None => print!("  W{window}:      failed"),
            }
        }
        println!();
    }

    println!("\n## Network model: endpoint ports vs 2-D mesh (all apps, SC)\n");
    let mut batch = SweepBatch::new();
    for app in App::ALL {
        batch.add_run("network-model", format!("{}/ports", app.name()), app, &base);
        batch.add_run(
            "network-model",
            format!("{}/mesh", app.name()),
            app,
            &base.clone().with_mesh_network(),
        );
    }
    let elapsed = log.measure_batch(batch, None);
    for (a, app) in App::ALL.iter().enumerate() {
        if let (Some(ports), Some(mesh)) = (elapsed[2 * a], elapsed[2 * a + 1]) {
            println!(
                "  {:<6} ports {ports:>12} | mesh {mesh:>12} | delta {:>+5.1}%",
                app.name(),
                (mesh as f64 / ports as f64 - 1.0) * 100.0
            );
        }
    }

    println!("\n## Directory organisation: full-map vs Dir_i-B (MP3D + PTHOR, SC)\n");
    const PTRS: [usize; 3] = [1, 2, 4];
    const DIR_APPS: [App; 2] = [App::Mp3d, App::Pthor];
    let mut batch = SweepBatch::new();
    for app in DIR_APPS {
        batch.add_run("directory", format!("{}/full-map", app.name()), app, &base);
        for ptrs in PTRS {
            batch.add_run(
                "directory",
                format!("{}/Dir{ptrs}B", app.name()),
                app,
                &base.clone().with_limited_directory(ptrs),
            );
        }
    }
    let elapsed = log.measure_batch(batch, None);
    let stride = 1 + PTRS.len();
    for (a, app) in DIR_APPS.iter().enumerate() {
        let full = elapsed[a * stride];
        for (p, ptrs) in PTRS.iter().enumerate() {
            if let (Some(full), Some(limited)) = (full, elapsed[a * stride + 1 + p]) {
                println!(
                    "  {:<6} full-map {full:>12} | Dir{ptrs}B {limited:>12} | delta {:>+5.1}%",
                    app.name(),
                    (limited as f64 / full as f64 - 1.0) * 100.0
                );
            }
        }
    }

    println!("\n## Contention model on/off (all apps, SC)\n");
    let mut batch = SweepBatch::new();
    for app in App::ALL {
        batch.add_run("contention", format!("{}/on", app.name()), app, &base);
        let mut cfg = base.clone();
        cfg.contention = false;
        batch.add_run("contention", format!("{}/off", app.name()), app, &cfg);
    }
    let elapsed = log.measure_batch(batch, None);
    for (a, app) in App::ALL.iter().enumerate() {
        if let (Some(on), Some(off)) = (elapsed[2 * a], elapsed[2 * a + 1]) {
            println!(
                "  {:<6} contention on {on:>12} | off {off:>12} | queueing adds {:>5.1}%",
                app.name(),
                (on as f64 / off as f64 - 1.0) * 100.0
            );
        }
    }

    log.finish()
}
