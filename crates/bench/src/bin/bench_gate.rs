//! CI bench-gate: fails the build on a >10% events/sec regression.
//!
//! The committed baseline (`BENCH_8.json`, produced by `perf --out`) was
//! recorded on one particular machine; CI runners are differently sized
//! and differently noisy, so the gate never compares absolute numbers
//! directly. Instead:
//!
//! 1. **Calibrate.** Run the fixed calibration simulation
//!    ([`dashlat_bench::calibrate`]) several times. The best score
//!    rescales the baseline to this runner (`scale = here / recorded`);
//!    the spread between best and worst detects a noisy runner. If the
//!    spread exceeds `--noise` (default 12%), the gate prints a loud
//!    banner and **skips** (exit 0): a flaky failure teaches people to
//!    ignore the gate, which is worse than an occasional skipped check.
//! 2. **Sweep the pinned subset.** Figures `--figures` (default `2,3`)
//!    are swept exactly the way `perf`'s parallel pass does (same memo
//!    discipline), and per-figure events/sec is compared against the
//!    rescaled baseline.
//! 3. **Gate.** Any figure slower than `rescaled × (1 − tolerance)`
//!    (default tolerance 10%) fails with exit 1. Being *faster* than the
//!    baseline never fails — it prints a reminder to refresh the
//!    baseline (procedure in `EXPERIMENTS.md`).
//!
//! Usage: `bench_gate [--baseline PATH] [--figures 2,3] [--tolerance
//! 0.10] [--noise 0.12]`

use std::process::ExitCode;
use std::time::Instant;

use dashlat::apps::App;
use dashlat::cellcache::CellMemo;
use dashlat::experiments::figure_configs;
use dashlat::{effective_jobs, run_matrix_jobs_memo, ExperimentConfig};
use dashlat_bench::calibrate;

/// Extracts the number following `"key":` from `json`, starting the scan
/// at `from`. Good enough for the flat records `perf` emits; a structural
/// change to the JSON shows up as a loud parse failure here.
fn extract_f64(json: &str, key: &str, from: usize) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json[from..].find(&needle)? + from + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Baseline events/sec for one figure: locates the `"figure": N` object
/// and reads its `events_per_sec`.
fn baseline_events_per_sec(json: &str, figure: u8) -> Option<f64> {
    let marker = format!("\"figure\": {figure},");
    let at = json.find(&marker)?;
    extract_f64(json, "events_per_sec", at)
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let baseline_path = arg_value(&args, "--baseline").unwrap_or_else(|| "BENCH_8.json".into());
    let tolerance: f64 = arg_value(&args, "--tolerance").map_or(0.10, |v| {
        v.parse().expect("--tolerance wants a fraction like 0.10")
    });
    let noise: f64 = arg_value(&args, "--noise").map_or(0.12, |v| {
        v.parse().expect("--noise wants a fraction like 0.12")
    });
    let figures: Vec<u8> = arg_value(&args, "--figures").map_or_else(
        || vec![2, 3],
        |list| {
            list.split(',')
                .map(|s| s.trim().parse().expect("--figures wants numbers in 2..=6"))
                .collect()
        },
    );

    let baseline = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
    let recorded_calibration = extract_f64(&baseline, "calibration_events_per_sec", 0)
        .expect("baseline has no calibration_events_per_sec; regenerate it with `perf --out`");

    println!(
        "# bench-gate — baseline {baseline_path}, tolerance {:.0}%\n",
        tolerance * 1e2
    );

    // Step 1: calibrate this runner.
    let (calibration, spread) = calibrate(5);
    let scale = calibration / recorded_calibration;
    println!(
        "calibration: {:.2} Mevents/s here vs {:.2} recorded (scale {scale:.3}, spread {:.1}%)",
        calibration / 1e6,
        recorded_calibration / 1e6,
        spread * 1e2,
    );
    if spread > noise {
        println!(
            "\n{line}\n!! BENCH-GATE SKIPPED: runner too noisy ({:.1}% calibration spread, \
             limit {:.1}%)\n!! Throughput numbers from this host would be meaningless; nothing \
             was gated.\n{line}",
            spread * 1e2,
            noise * 1e2,
            line = "!".repeat(78),
        );
        return ExitCode::SUCCESS;
    }

    // Step 2: sweep the pinned subset the way perf's parallel pass does.
    let base = ExperimentConfig::base();
    let jobs = effective_jobs(None);
    let memo = CellMemo::new();
    let mut failed = false;
    let mut faster = false;
    for &figure in &figures {
        let configs = figure_configs(figure, &base);
        let start = Instant::now();
        let mut sim_events = 0u64;
        let mut failures = 0usize;
        for &app in &App::ALL {
            let report = run_matrix_jobs_memo(app, &configs, Some(jobs), Some(&memo));
            failures += report.failures().len();
            for e in report.successes() {
                sim_events += e.result.sim_events;
            }
        }
        let measured = sim_events as f64 / start.elapsed().as_secs_f64();
        let recorded = baseline_events_per_sec(&baseline, figure)
            .unwrap_or_else(|| panic!("baseline {baseline_path} has no figure {figure}"));
        let expected = recorded * scale;
        let ratio = measured / expected;
        let verdict = if failures > 0 {
            failed = true;
            "FAIL (cells failed)"
        } else if ratio < 1.0 - tolerance {
            failed = true;
            "FAIL"
        } else {
            if ratio > 1.0 + tolerance {
                faster = true;
            }
            "ok"
        };
        println!(
            "figure {figure}: {:.2} Mevents/s measured vs {:.2} expected ({:+.1}%) — {verdict}",
            measured / 1e6,
            expected / 1e6,
            (ratio - 1.0) * 1e2,
        );
    }

    // Step 3: verdict.
    if failed {
        eprintln!(
            "\nbench-gate: events/sec regressed more than {:.0}% against {baseline_path}.\n\
             If the slowdown is intentional, update the baseline (see EXPERIMENTS.md).",
            tolerance * 1e2,
        );
        return ExitCode::FAILURE;
    }
    if faster {
        println!(
            "\nbench-gate: faster than the baseline by more than the tolerance — consider \
             refreshing {baseline_path} (see EXPERIMENTS.md) so future regressions are caught \
             from the new level."
        );
    }
    println!("\nbench-gate: ok");
    ExitCode::SUCCESS
}
