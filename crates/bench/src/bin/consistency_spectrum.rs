//! Extension experiment: the full consistency spectrum (SC, PC, WC, RC).
//!
//! The paper evaluates the two ends and notes that processor consistency
//! and weak consistency fall in between (§4). This binary sweeps all four
//! models over the three applications. The sweep is resilient: a failed
//! cell is reported and the remaining models still render (exit code 5
//! marks a partial result).

use std::process::ExitCode;

use dashlat::apps::App;
use dashlat::config::ExperimentConfig;
use dashlat::report::AppFigure;
use dashlat::runner::run_matrix;
use dashlat_bench::{base_config_from_args, print_preamble};
use dashlat_cpu::config::Consistency;

fn main() -> ExitCode {
    let base = base_config_from_args();
    print_preamble("Consistency spectrum (extension)", &base);
    let configs: Vec<ExperimentConfig> = [
        Consistency::Sc,
        Consistency::Pc,
        Consistency::Wc,
        Consistency::Rc,
    ]
    .into_iter()
    .map(|m| base.clone().with_consistency(m))
    .collect();
    let mut failed = 0usize;
    for app in App::ALL {
        let report = run_matrix(app, &configs);
        for (label, failure) in report.failures() {
            eprintln!("warning: {app}/{label} failed: {failure}");
            failed += 1;
        }
        let runs: Vec<_> = report.successes().into_iter().cloned().collect();
        // Bars are normalized to SC (the first cell); without it the group
        // cannot be scaled.
        if runs.is_empty() || report.cells[0].outcome.is_err() {
            continue;
        }
        let g = AppFigure::from_experiments(&runs);
        println!("{}", g.app);
        for (i, bar) in g.bars.iter().enumerate() {
            println!(
                "  {:<4} {:>6.1}% of SC   {:>5.2}x",
                bar.label,
                bar.scaled.total(),
                g.speedup(i)
            );
        }
        println!();
    }
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(5)
    }
}
