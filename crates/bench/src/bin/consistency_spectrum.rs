//! Extension experiment: the full consistency spectrum (SC, PC, WC, RC).
//!
//! The paper evaluates the two ends and notes that processor consistency
//! and weak consistency fall in between (§4). This binary sweeps all four
//! models over the three applications.

use dashlat::apps::App;
use dashlat::config::ExperimentConfig;
use dashlat::report::AppFigure;
use dashlat::runner::run_matrix;
use dashlat_bench::{base_config_from_args, print_preamble};
use dashlat_cpu::config::Consistency;

fn main() {
    let base = base_config_from_args();
    print_preamble("Consistency spectrum (extension)", &base);
    let configs: Vec<ExperimentConfig> = [
        Consistency::Sc,
        Consistency::Pc,
        Consistency::Wc,
        Consistency::Rc,
    ]
    .into_iter()
    .map(|m| base.clone().with_consistency(m))
    .collect();
    for app in App::ALL {
        let runs = run_matrix(app, &configs).expect("runs complete");
        let g = AppFigure::from_experiments(&runs);
        println!("{}", g.app);
        for (i, bar) in g.bars.iter().enumerate() {
            println!(
                "  {:<4} {:>6.1}% of SC   {:>5.2}x",
                bar.label,
                bar.scaled.total(),
                g.speedup(i)
            );
        }
        println!();
    }
}
