//! Regenerates Figure 2 of the paper.

use dashlat_bench::{base_config_from_args, print_preamble};

fn main() {
    let cfg = base_config_from_args();
    print_preamble("Figure 2", &cfg);
    let fig = dashlat::experiments::figure2(&cfg).expect("runs complete");
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", fig.to_csv());
    } else {
        println!("{}", fig.render());
        println!("{}", fig.render_chart());
    }
}
