//! Regenerates Figure 6 of the paper.

use std::process::ExitCode;

use dashlat_bench::{base_config_from_args, emit_figure, print_preamble};

fn main() -> ExitCode {
    let cfg = base_config_from_args();
    print_preamble("Figure 6", &cfg);
    emit_figure(&dashlat::experiments::figure6(&cfg))
}
