//! Regenerates Figure 6 of the paper.

use dashlat_bench::{base_config_from_args, print_preamble};

fn main() {
    let cfg = base_config_from_args();
    print_preamble("Figure 6", &cfg);
    let fig = dashlat::experiments::figure6(&cfg).expect("runs complete");
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", fig.to_csv());
    } else {
        println!("{}", fig.render());
        println!("{}", fig.render_chart());
    }
}
