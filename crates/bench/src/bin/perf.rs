//! Performance harness: times the figure sweeps themselves.
//!
//! Where every other binary in this crate measures the *simulated*
//! machine, this one measures the *simulator*: wall-clock per figure
//! matrix, simulation events per second, and the serial-vs-parallel
//! speedup of the sweep engine. It writes the machine-readable record
//! (`BENCH_3.json` at the repo root by convention) that CI and the
//! results log track across commits.
//!
//! Usage: `perf [--test-scale] [--jobs N] [--out PATH] [--figures 2,3]`
//!
//! * `--test-scale` — reduced data sets (CI smoke); default is paper scale.
//! * `--jobs N` — worker count for the parallel pass (default all cores).
//! * `--out PATH` — where to write the JSON record (default stdout only).
//! * `--figures LIST` — comma-separated subset of 2..=6 (default all).
//!
//! Each figure is swept twice through [`dashlat::run_matrix_jobs`]: once
//! with `jobs = 1` (the serial baseline) and once with the requested
//! worker count. The two reports must fingerprint identically — the
//! harness asserts it, so a determinism regression fails the benchmark
//! run rather than silently producing numbers for diverging sweeps.

use std::process::ExitCode;
use std::time::Instant;

use dashlat::apps::App;
use dashlat::experiments::figure_configs;
use dashlat::{effective_jobs, run_matrix_jobs, ExperimentConfig, MatrixReport};
use dashlat_bench::base_config_from_args;

struct FigureTiming {
    figure: u8,
    cells: usize,
    serial_ms: f64,
    parallel_ms: f64,
    sim_events: u64,
    sim_cycles: u64,
    failures: usize,
}

fn sweep(figure: u8, base: &ExperimentConfig, jobs: usize) -> (Vec<MatrixReport>, f64) {
    let configs = figure_configs(figure, base);
    let start = Instant::now();
    let reports: Vec<MatrixReport> = App::ALL
        .iter()
        .map(|&app| run_matrix_jobs(app, &configs, Some(jobs)))
        .collect();
    (reports, start.elapsed().as_secs_f64() * 1e3)
}

fn fingerprint(reports: &[MatrixReport]) -> String {
    reports.iter().map(|r| format!("{r:?}")).collect()
}

fn main() -> ExitCode {
    let base = base_config_from_args();
    let args: Vec<String> = std::env::args().collect();
    let jobs = effective_jobs(None);
    let figures: Vec<u8> = args
        .iter()
        .position(|a| a == "--figures")
        .and_then(|i| args.get(i + 1))
        .map_or_else(
            || (2u8..=6).collect(),
            |list| {
                list.split(',')
                    .map(|s| {
                        let n: u8 = s.trim().parse().expect("--figures wants numbers in 2..=6");
                        assert!((2..=6).contains(&n), "--figures wants numbers in 2..=6");
                        n
                    })
                    .collect()
            },
        );
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    println!(
        "# Simulator performance — {} processors, {:?} scale, {jobs} job(s), {} core(s)\n",
        base.processors,
        base.scale,
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    );

    let mut timings = Vec::new();
    for &figure in &figures {
        let (serial, serial_ms) = sweep(figure, &base, 1);
        let (parallel, parallel_ms) = sweep(figure, &base, jobs);
        assert_eq!(
            fingerprint(&serial),
            fingerprint(&parallel),
            "figure {figure}: parallel sweep diverged from serial — determinism regression"
        );
        let mut sim_events = 0u64;
        let mut sim_cycles = 0u64;
        let mut cells = 0usize;
        let mut failures = 0usize;
        for report in &parallel {
            cells += report.cells.len();
            failures += report.failures().len();
            for e in report.successes() {
                sim_events += e.result.sim_events;
                sim_cycles += e.result.elapsed.as_u64();
            }
        }
        println!(
            "figure {figure}: {cells:>2} cells | serial {serial_ms:>9.1} ms | parallel {parallel_ms:>9.1} ms | speedup {:>4.2}x | {:>5.2} Mevents/s",
            serial_ms / parallel_ms,
            sim_events as f64 / parallel_ms / 1e3,
        );
        timings.push(FigureTiming {
            figure,
            cells,
            serial_ms,
            parallel_ms,
            sim_events,
            sim_cycles,
            failures,
        });
    }

    let total_serial: f64 = timings.iter().map(|t| t.serial_ms).sum();
    let total_parallel: f64 = timings.iter().map(|t| t.parallel_ms).sum();
    println!(
        "\ntotal: serial {total_serial:.1} ms | parallel {total_parallel:.1} ms | speedup {:.2}x",
        total_serial / total_parallel
    );

    let json = render_json(&base, jobs, &timings, total_serial, total_parallel);
    if let Some(path) = out_path {
        std::fs::write(&path, &json).expect("write --out file");
        println!("\nwrote {path}");
    } else {
        println!("\n## JSON record\n\n{json}");
    }
    if timings.iter().any(|t| t.failures > 0) {
        eprintln!("warning: some sweep cells failed; the record is partial");
        return ExitCode::from(5);
    }
    ExitCode::SUCCESS
}

fn render_json(
    base: &ExperimentConfig,
    jobs: usize,
    timings: &[FigureTiming],
    total_serial: f64,
    total_parallel: f64,
) -> String {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"scale\": \"{:?}\",\n  \"processors\": {},\n  \"cores\": {cores},\n  \"jobs\": {jobs},\n",
        base.scale, base.processors
    ));
    out.push_str("  \"figures\": [\n");
    for (i, t) in timings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"figure\": {}, \"cells\": {}, \"serial_ms\": {:.1}, \"parallel_ms\": {:.1}, \"speedup\": {:.3}, \"sim_events\": {}, \"sim_cycles\": {}, \"events_per_sec\": {:.0}, \"failures\": {}}}{}\n",
            t.figure,
            t.cells,
            t.serial_ms,
            t.parallel_ms,
            t.serial_ms / t.parallel_ms,
            t.sim_events,
            t.sim_cycles,
            t.sim_events as f64 / (t.parallel_ms / 1e3),
            t.failures,
            if i + 1 < timings.len() { "," } else { "" },
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"total_serial_ms\": {total_serial:.1},\n  \"total_parallel_ms\": {total_parallel:.1},\n  \"total_speedup\": {:.3}\n}}\n",
        total_serial / total_parallel
    ));
    out
}
