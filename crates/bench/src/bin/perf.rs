//! Performance harness: times the figure sweeps themselves.
//!
//! Where every other binary in this crate measures the *simulated*
//! machine, this one measures the *simulator*: wall-clock per figure
//! matrix, simulation events per second, and the serial-vs-parallel
//! speedup of the sweep engine. It writes the machine-readable record
//! (`BENCH_8.json` at the repo root by convention) that CI's bench-gate
//! and the results log track across commits.
//!
//! Usage: `perf [--test-scale] [--jobs N] [--out PATH] [--figures 2,3]
//! [--no-memo]`
//!
//! * `--test-scale` — reduced data sets (CI smoke); default is paper scale.
//! * `--jobs N` — worker count for the parallel pass (default all cores;
//!   clamped by [`dashlat::matrix_jobs`] to what the hardware offers).
//! * `--out PATH` — where to write the JSON record (default stdout only).
//! * `--figures LIST` — comma-separated subset of 2..=6 (default all).
//! * `--no-memo` — disable the cross-figure result memo (see below).
//!
//! Each figure is swept twice through [`dashlat::run_matrix_jobs_memo`]:
//! once with `jobs = 1` (the serial baseline) and once with the requested
//! worker count. The two reports must fingerprint identically — the
//! harness asserts it, so a determinism regression fails the benchmark
//! run rather than silently producing numbers for diverging sweeps.
//!
//! ## The result memo
//!
//! The figure presets share machine configurations (the base machine
//! appears in all five figures; RC in three), so the harness keeps one
//! [`CellMemo`] per *pass kind* — one shared by every serial pass, one by
//! every parallel pass, never mixed — and repeated configurations are
//! served from it instead of re-simulated. Per-pass memos keep the
//! serial/parallel comparison symmetric: both sides do exactly the same
//! simulation work, so the speedup column stays honest. Hits are
//! reported per figure in the JSON (`memo_hits`) so a reader can see how
//! much of a figure's throughput came from sharing rather than raw
//! kernel speed; `--no-memo` measures the kernel alone.

use std::process::ExitCode;
use std::time::Instant;

use dashlat::apps::App;
use dashlat::cellcache::CellMemo;
use dashlat::experiments::figure_configs;
use dashlat::{
    effective_jobs, hardware_cores, matrix_jobs, run_matrix_jobs_memo, ExperimentConfig,
    MatrixReport,
};
use dashlat_bench::{base_config_from_args, calibrate};

struct FigureTiming {
    figure: u8,
    cells: usize,
    serial_ms: f64,
    parallel_ms: f64,
    sim_events: u64,
    sim_cycles: u64,
    failures: usize,
    /// Cells served from the parallel pass's memo for this figure.
    memo_hits: u64,
}

fn sweep(
    figure: u8,
    base: &ExperimentConfig,
    jobs: usize,
    memo: Option<&CellMemo>,
) -> (Vec<MatrixReport>, f64) {
    let configs = figure_configs(figure, base);
    let start = Instant::now();
    let reports: Vec<MatrixReport> = App::ALL
        .iter()
        .map(|&app| run_matrix_jobs_memo(app, &configs, Some(jobs), memo))
        .collect();
    (reports, start.elapsed().as_secs_f64() * 1e3)
}

fn fingerprint(reports: &[MatrixReport]) -> String {
    reports.iter().map(|r| format!("{r:?}")).collect()
}

fn main() -> ExitCode {
    let base = base_config_from_args();
    let args: Vec<String> = std::env::args().collect();
    let jobs = effective_jobs(None);
    let use_memo = !args.iter().any(|a| a == "--no-memo");
    let figures: Vec<u8> = args
        .iter()
        .position(|a| a == "--figures")
        .and_then(|i| args.get(i + 1))
        .map_or_else(
            || (2u8..=6).collect(),
            |list| {
                list.split(',')
                    .map(|s| {
                        let n: u8 = s.trim().parse().expect("--figures wants numbers in 2..=6");
                        assert!((2..=6).contains(&n), "--figures wants numbers in 2..=6");
                        n
                    })
                    .collect()
            },
        );
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    println!(
        "# Simulator performance — {} processors, {:?} scale, {jobs} job(s), {} core(s), memo {}\n",
        base.processors,
        base.scale,
        hardware_cores(),
        if use_memo { "on" } else { "off" },
    );

    // Host-speed calibration, recorded in the JSON so the CI bench-gate
    // can rescale this record to a differently-sized runner.
    let (calibration, calibration_spread) = calibrate(3);
    println!(
        "calibration: {:.2} Mevents/s (spread {:.1}%)\n",
        calibration / 1e6,
        calibration_spread * 1e2,
    );

    // One memo per pass kind, shared across figures (see module docs).
    let serial_memo = CellMemo::new();
    let parallel_memo = CellMemo::new();
    let mut timings = Vec::new();
    for &figure in &figures {
        let hits_before = parallel_memo.hits();
        let (serial, serial_ms) = sweep(figure, &base, 1, use_memo.then_some(&serial_memo));
        let (parallel, parallel_ms) =
            sweep(figure, &base, jobs, use_memo.then_some(&parallel_memo));
        assert_eq!(
            fingerprint(&serial),
            fingerprint(&parallel),
            "figure {figure}: parallel sweep diverged from serial — determinism regression"
        );
        let memo_hits = parallel_memo.hits() - hits_before;
        let mut sim_events = 0u64;
        let mut sim_cycles = 0u64;
        let mut cells = 0usize;
        let mut failures = 0usize;
        for report in &parallel {
            cells += report.cells.len();
            failures += report.failures().len();
            for e in report.successes() {
                sim_events += e.result.sim_events;
                sim_cycles += e.result.elapsed.as_u64();
            }
        }
        println!(
            "figure {figure}: {cells:>2} cells | serial {serial_ms:>9.1} ms | parallel {parallel_ms:>9.1} ms | speedup {:>4.2}x | {:>5.2} Mevents/s | {memo_hits} memo hit(s)",
            serial_ms / parallel_ms,
            sim_events as f64 / parallel_ms / 1e3,
        );
        timings.push(FigureTiming {
            figure,
            cells,
            serial_ms,
            parallel_ms,
            sim_events,
            sim_cycles,
            failures,
            memo_hits,
        });
    }

    let total_serial: f64 = timings.iter().map(|t| t.serial_ms).sum();
    let total_parallel: f64 = timings.iter().map(|t| t.parallel_ms).sum();
    println!(
        "\ntotal: serial {total_serial:.1} ms | parallel {total_parallel:.1} ms | speedup {:.2}x",
        total_serial / total_parallel
    );

    let json = render_json(
        &base,
        jobs,
        use_memo,
        calibration,
        &timings,
        total_serial,
        total_parallel,
    );
    if let Some(path) = out_path {
        std::fs::write(&path, &json).expect("write --out file");
        println!("\nwrote {path}");
    } else {
        println!("\n## JSON record\n\n{json}");
    }
    if timings.iter().any(|t| t.failures > 0) {
        eprintln!("warning: some sweep cells failed; the record is partial");
        return ExitCode::from(5);
    }
    ExitCode::SUCCESS
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    base: &ExperimentConfig,
    jobs: usize,
    use_memo: bool,
    calibration: f64,
    timings: &[FigureTiming],
    total_serial: f64,
    total_parallel: f64,
) -> String {
    // `jobs` is what was requested; `jobs_effective` is what the matrix
    // policy actually grants on this host for a figure-sized matrix —
    // recorded so a throughput claim can be read against the parallelism
    // that produced it (a 1-core runner legitimately reports speedup 1.0).
    let jobs_effective = matrix_jobs(&figure_configs(3, base), Some(jobs));
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"scale\": \"{:?}\",\n  \"processors\": {},\n  \"cores\": {},\n  \"jobs\": {jobs},\n  \"jobs_effective\": {jobs_effective},\n  \"memo\": {use_memo},\n  \"calibration_events_per_sec\": {calibration:.0},\n",
        base.scale,
        base.processors,
        hardware_cores(),
    ));
    out.push_str("  \"figures\": [\n");
    for (i, t) in timings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"figure\": {}, \"cells\": {}, \"serial_ms\": {:.1}, \"parallel_ms\": {:.1}, \"speedup\": {:.3}, \"sim_events\": {}, \"sim_cycles\": {}, \"events_per_sec\": {:.0}, \"memo_hits\": {}, \"failures\": {}}}{}\n",
            t.figure,
            t.cells,
            t.serial_ms,
            t.parallel_ms,
            t.serial_ms / t.parallel_ms,
            t.sim_events,
            t.sim_cycles,
            t.sim_events as f64 / (t.parallel_ms / 1e3),
            t.memo_hits,
            t.failures,
            if i + 1 < timings.len() { "," } else { "" },
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"total_serial_ms\": {total_serial:.1},\n  \"total_parallel_ms\": {total_parallel:.1},\n  \"total_speedup\": {:.3}\n}}\n",
        total_serial / total_parallel
    ));
    out
}
