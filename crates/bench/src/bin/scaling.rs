//! Machine-scaling study.
//!
//! Two parts:
//!
//! 1. Application speedup vs processor count (the concurrency context for
//!    all of the paper's 16-processor results).
//! 2. The paper's §6.1 observation: "when PTHOR is run with only four
//!    processors instead of sixteen, multiple contexts achieve much
//!    greater gains: four context-processors run about twice as fast as
//!    single-context processors" — the parallelism freed by fewer
//!    processors becomes available for latency hiding.

use dashlat::apps::App;
use dashlat::runner::run;
use dashlat_bench::{base_config_from_args, print_preamble};
use dashlat_sim::Cycle;

fn main() {
    let base = base_config_from_args();
    print_preamble("Scaling study", &base);

    println!("## Speedup vs processor count (SC)\n");
    for app in App::ALL {
        print!("  {:<6}", app.name());
        let mut baseline = None;
        for procs in [1usize, 2, 4, 8, 16] {
            let mut cfg = base.clone();
            cfg.processors = procs;
            let e = run(app, &cfg).expect("runs complete");
            let t = e.result.elapsed.as_u64();
            let speedup = baseline.map(|b: u64| b as f64 / t as f64).unwrap_or(1.0);
            if baseline.is_none() {
                baseline = Some(t);
            }
            print!("  p{procs}: {speedup:>5.2}x");
        }
        println!();
    }

    println!("\n## PTHOR with 4 processors: multiple contexts shine (§6.1)\n");
    for procs in [4usize, 16] {
        let mut one = base.clone();
        one.processors = procs;
        let mut four = base.clone().with_contexts(4, Cycle(4));
        four.processors = procs;
        let t1 = run(App::Pthor, &one).expect("runs complete").result.elapsed;
        let t4 = run(App::Pthor, &four)
            .expect("runs complete")
            .result
            .elapsed;
        println!(
            "  {procs:>2} processors: 1ctx {:>12} | 4ctx/4 {:>12} | gain {:>4.2}x",
            t1.as_u64(),
            t4.as_u64(),
            t1.as_u64() as f64 / t4.as_u64() as f64
        );
    }
}
