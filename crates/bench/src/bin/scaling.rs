//! Machine-scaling study.
//!
//! Two parts:
//!
//! 1. Application speedup vs processor count (the concurrency context for
//!    all of the paper's 16-processor results).
//! 2. The paper's §6.1 observation: "when PTHOR is run with only four
//!    processors instead of sixteen, multiple contexts achieve much
//!    greater gains: four context-processors run about twice as fast as
//!    single-context processors" — the parallelism freed by fewer
//!    processors becomes available for latency hiding.
//!
//! Every measurement goes through a [`SweepLog`]: the cells of each part
//! are queued as a [`SweepBatch`] and run in parallel on the sweep worker
//! pool (`--jobs N` to cap it), and one failed machine size degrades the
//! output to a partial JSON record (exit code 5) instead of aborting the
//! whole study.

use std::process::ExitCode;

use dashlat::apps::App;
use dashlat_bench::{base_config_from_args, print_preamble, SweepBatch, SweepLog};
use dashlat_sim::Cycle;

fn main() -> ExitCode {
    let base = base_config_from_args();
    print_preamble("Scaling study", &base);
    let mut log = SweepLog::new();

    println!("## Speedup vs processor count (SC)\n");
    const PROCS: [usize; 5] = [1, 2, 4, 8, 16];
    let mut batch = SweepBatch::new();
    for app in App::ALL {
        for procs in PROCS {
            let mut cfg = base.clone();
            cfg.processors = procs;
            batch.add_run("speedup", format!("{}/p{procs}", app.name()), app, &cfg);
        }
    }
    let elapsed = log.measure_batch(batch, None);
    for (a, app) in App::ALL.iter().enumerate() {
        print!("  {:<6}", app.name());
        let mut baseline = None;
        for (p, procs) in PROCS.iter().enumerate() {
            match elapsed[a * PROCS.len() + p] {
                Some(t) => {
                    let speedup = baseline.map_or(1.0, |b: u64| b as f64 / t as f64);
                    if baseline.is_none() {
                        baseline = Some(t);
                    }
                    print!("  p{procs}: {speedup:>5.2}x");
                }
                None => print!("  p{procs}: failed"),
            }
        }
        println!();
    }

    println!("\n## PTHOR with 4 processors: multiple contexts shine (§6.1)\n");
    let mut batch = SweepBatch::new();
    for procs in [4usize, 16] {
        let mut one = base.clone();
        one.processors = procs;
        let mut four = base.clone().with_contexts(4, Cycle(4));
        four.processors = procs;
        batch.add_run("pthor-contexts", format!("p{procs}/1ctx"), App::Pthor, &one);
        batch.add_run(
            "pthor-contexts",
            format!("p{procs}/4ctx"),
            App::Pthor,
            &four,
        );
    }
    let elapsed = log.measure_batch(batch, None);
    for (i, procs) in [4usize, 16].iter().enumerate() {
        if let (Some(t1), Some(t4)) = (elapsed[2 * i], elapsed[2 * i + 1]) {
            println!(
                "  {procs:>2} processors: 1ctx {t1:>12} | 4ctx/4 {t4:>12} | gain {:>4.2}x",
                t1 as f64 / t4 as f64
            );
        }
    }

    log.finish()
}
