//! Prints the prose statistics the paper quotes: hit rates, utilizations,
//! run lengths and miss latencies per application and configuration.

use dashlat::apps::App;
use dashlat::report::describe_run;
use dashlat::runner::run;
use dashlat_bench::{base_config_from_args, print_preamble};

fn main() {
    let base = base_config_from_args();
    print_preamble("Per-application statistics", &base);
    for app in App::ALL {
        for cfg in [base.clone(), base.clone().with_rc()] {
            let e = run(app, &cfg).expect("runs complete");
            println!("{}", describe_run(&e));
            println!(
                "    read-miss latency: {} | write-miss latency: {}",
                e.result.mem.read_miss_latency, e.result.mem.write_miss_latency
            );
        }
    }
}
