//! Regenerates the paper's concluding claim (§7): best technique
//! combinations and their overall speedups.

use dashlat_bench::{base_config_from_args, print_preamble};

fn main() {
    let cfg = base_config_from_args();
    print_preamble("Summary (paper section 7)", &cfg);
    let s = dashlat::experiments::summary(&cfg).expect("runs complete");
    println!("{}", s.render());
}
