//! Regenerates Table 1: memory-operation latencies.

fn main() {
    println!("{}", dashlat::experiments::table1());
}
