//! Regenerates Table 2: general statistics for the benchmarks.

use dashlat_bench::{base_config_from_args, print_preamble};

fn main() {
    let cfg = base_config_from_args();
    print_preamble("Table 2: General statistics for the benchmarks", &cfg);
    let table = dashlat::experiments::table2(&cfg).expect("runs complete");
    println!("{}", table.render());
}
