//! Utilization-over-time view of each application.
//!
//! §2.3 of the paper describes LU's phase behaviour: "the processors get
//! poor cache hit ratio in the beginning, and high hit ratios towards the
//! end" as the active submatrix shrinks into the caches. This binary makes
//! that directly visible: busy cycles and long-latency misses per interval
//! of simulated time, rendered as sparklines.

use dashlat::apps::App;
use dashlat::config::AppScale;
use dashlat_bench::{base_config_from_args, print_preamble};
use dashlat_cpu::machine::Machine;
use dashlat_mem::layout::AddressSpaceBuilder;
use dashlat_mem::system::MemorySystem;
use dashlat_sim::Cycle;

fn main() {
    let base = base_config_from_args();
    print_preamble("Timeline (busy + misses per interval)", &base);
    let bucket = match base.scale {
        AppScale::Paper => Cycle(200_000),
        AppScale::Test => Cycle(10_000),
    };
    println!("bucket = {bucket}\n");
    for app in App::ALL {
        let topo = base.topology();
        let mut space = AddressSpaceBuilder::new(base.processors);
        let w = app.build(base.scale, topo, &mut space, base.prefetching);
        let mem = MemorySystem::new(base.mem_config(), space.build());
        let mut pc = base.proc_config();
        pc.timeline_bucket = Some(bucket);
        let res = Machine::new(pc, topo, mem, w)
            .with_max_cycles(Cycle(50_000_000_000))
            .run()
            .expect("runs complete");
        let tl = res.timeline.expect("timeline was enabled");
        println!("{} (elapsed {}):", app.name(), res.elapsed);
        println!("  busy   {}", tl.busy.sparkline());
        println!("  misses {}", tl.misses.sparkline());
        // Quantify the LU effect: miss density first third vs last third.
        let misses = tl.misses.buckets();
        if misses.len() >= 3 {
            let third = misses.len() / 3;
            let early: u64 = misses[..third].iter().sum();
            let late: u64 = misses[misses.len() - third..].iter().sum();
            println!(
                "  misses/interval: first third {:.0}, last third {:.0}",
                early as f64 / third as f64,
                late as f64 / third as f64
            );
        }
        println!();
    }
}
