//! Open-loop traffic driver for the `dashlat serve` daemon.
//!
//! Where `perf` measures the simulator and the figure binaries measure
//! the simulated machine, this one measures the *service*: it boots a
//! daemon in-process, fires job submissions at a fixed arrival rate —
//! open-loop, so arrivals do not slow down when the daemon does, exactly
//! the regime where an unbounded queue would grow without limit — and
//! reports the submit-latency distribution plus the admission outcome
//! histogram (202 accepted vs 429 shed).
//!
//! Usage: `traffic [--requests N] [--interval-ms N] [--workers N]
//!                 [--queue-depth N] [--data-dir PATH] [--chaos]
//!                 [--conn-deadline-secs N]`
//!
//! * `--requests N` — submissions to fire (default 24).
//! * `--interval-ms N` — arrival interval (default 50; an interval much
//!   shorter than a job's service time forces load shedding, which is
//!   the point).
//! * `--workers N` — daemon worker threads (default 1).
//! * `--queue-depth N` — admission queue bound (default 2).
//! * `--data-dir PATH` — daemon state directory (default: a fresh
//!   directory under the system temp dir).
//! * `--chaos` — interleave one adversarial client per submission,
//!   cycling slow writers, mid-request disconnects, and oversized
//!   bodies ([`dashlat_serve::chaosclient`]); the histogram gains the
//!   server's error taxonomy (408 / 413 / silent close), and any
//!   answer other than the taxonomy's is a failure.
//! * `--conn-deadline-secs N` — the daemon's per-connection deadline
//!   (default 2 with `--chaos` so slow writers are cut off quickly,
//!   10 otherwise).
//!
//! The driver exits 0 when every submission was either accepted or
//! cleanly shed, every adversarial client got its taxonomy answer, and
//! the daemon drained and shut down gracefully; any transport error or
//! malformed response exits 1. Because all jobs share one figure
//! matrix, every job after the first is served almost entirely from the
//! result cache — the histogram therefore also shows the cache turning
//! an overloaded service into a keep-up one.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dashlat_serve::{chaosclient, client, ChaosMode, JobSpec, ServeConfig, Server};

struct Sample {
    status: u16,
    micros: u128,
}

/// What the server is required to answer a given adversary with.
fn expected_answer(mode: ChaosMode) -> &'static str {
    match mode {
        ChaosMode::SlowWriter => "408",
        ChaosMode::MidRequestDisconnect => "sent",
        ChaosMode::OversizedBody => "413",
    }
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn percentile(sorted: &[u128], p: f64) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parse_or = |flag: &str, default: u64| -> u64 {
        arg_value(&args, flag).map_or(default, |v| v.parse().unwrap_or(default))
    };
    let requests = parse_or("--requests", 24) as usize;
    let interval = Duration::from_millis(parse_or("--interval-ms", 50));
    let workers = parse_or("--workers", 1) as usize;
    let queue_depth = parse_or("--queue-depth", 2) as usize;
    let chaos = args.iter().any(|a| a == "--chaos");
    let conn_deadline_secs = parse_or("--conn-deadline-secs", if chaos { 2 } else { 10 });
    let data_dir = arg_value(&args, "--data-dir").map_or_else(
        || std::env::temp_dir().join(format!("dashlat-traffic-{}", std::process::id())),
        PathBuf::from,
    );

    let server = match Server::new(ServeConfig {
        addr: "127.0.0.1:0".into(),
        data_dir: data_dir.clone(),
        workers,
        queue_depth,
        job_timeout_secs: 600,
        conn_deadline_secs,
        ..ServeConfig::default()
    }) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("traffic: cannot create daemon: {e}");
            return ExitCode::FAILURE;
        }
    };
    let runner = Arc::clone(&server);
    let daemon = std::thread::spawn(move || runner.run());

    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(a) = client::read_addr_file(&data_dir) {
            break a;
        }
        if Instant::now() > deadline {
            eprintln!("traffic: daemon never published its address");
            return ExitCode::FAILURE;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    println!(
        "traffic: daemon at {addr} — {workers} worker(s), queue depth {queue_depth}; \
         firing {requests} submission(s) every {}ms (open loop{})",
        interval.as_millis(),
        if chaos {
            ", adversarial clients on"
        } else {
            ""
        }
    );

    // Open loop: each submission fires on schedule from its own thread,
    // so a slow daemon cannot push back on the arrival process. With
    // --chaos, every submission brings an adversarial sibling along —
    // the well-behaved client measures whether the misbehaving one
    // degraded the service.
    let spec = JobSpec {
        sweep_jobs: Some(1),
        ..JobSpec::sweep(
            3,
            vec!["--test-scale".into(), "--processors".into(), "4".into()],
        )
    };
    let body = spec.to_json();
    let (tx, rx) = mpsc::channel::<Result<Sample, String>>();
    let (chaos_tx, chaos_rx) = mpsc::channel::<(ChaosMode, String)>();
    let mut senders = Vec::new();
    for i in 0..requests {
        if chaos {
            let mode = ChaosMode::ALL[i % ChaosMode::ALL.len()];
            let chaos_tx = chaos_tx.clone();
            let chaos_addr = addr.clone();
            senders.push(std::thread::spawn(move || {
                let _ = chaos_tx.send((mode, chaosclient::run(&chaos_addr, mode)));
            }));
        }
        let tx = tx.clone();
        let addr = addr.clone();
        let body = body.clone();
        senders.push(std::thread::spawn(move || {
            let start = Instant::now();
            let result = client::request(&addr, "POST", "/jobs", Some(&body))
                .map(|resp| Sample {
                    status: resp.status,
                    micros: start.elapsed().as_micros(),
                })
                .map_err(|e| e.to_string());
            let _ = tx.send(result);
        }));
        std::thread::sleep(interval);
    }
    drop(tx);
    drop(chaos_tx);
    for s in senders {
        let _ = s.join();
    }

    let mut accepted = 0usize;
    let mut shed = 0usize;
    let mut other = 0usize;
    let mut errors = 0usize;
    let mut latencies: Vec<u128> = Vec::new();
    for r in rx {
        match r {
            Ok(sample) => {
                match sample.status {
                    202 => accepted += 1,
                    429 => shed += 1,
                    _ => other += 1,
                }
                latencies.push(sample.micros);
            }
            Err(e) => {
                eprintln!("traffic: transport error: {e}");
                errors += 1;
            }
        }
    }
    latencies.sort_unstable();

    // Tally the adversaries: per mode, how often the server gave the
    // taxonomy's answer vs anything else (indexed like ChaosMode::ALL).
    let mut taxonomy = [(0usize, 0usize); ChaosMode::ALL.len()];
    let mut surprises = 0usize;
    for (mode, outcome) in chaos_rx {
        let slot = ChaosMode::ALL
            .iter()
            .position(|m| *m == mode)
            .unwrap_or_default();
        if outcome == expected_answer(mode) {
            taxonomy[slot].0 += 1;
        } else {
            taxonomy[slot].1 += 1;
            surprises += 1;
            eprintln!(
                "traffic: {} client expected {}, got {outcome}",
                mode.tag(),
                expected_answer(mode)
            );
        }
    }

    // Let the daemon drain what it admitted, then stop it gracefully.
    let drain_deadline = Instant::now() + Duration::from_secs(600);
    loop {
        match client::request(&addr, "GET", "/healthz", None) {
            Ok(h) if h.body.contains("\"queued\":0,\"running\":0") => break,
            Ok(_) if Instant::now() < drain_deadline => {
                std::thread::sleep(Duration::from_millis(100));
            }
            Ok(_) => {
                eprintln!("traffic: daemon did not drain in time");
                errors += 1;
                break;
            }
            Err(e) => {
                eprintln!("traffic: lost the daemon while draining: {e}");
                errors += 1;
                break;
            }
        }
    }
    let cache_line = client::request(&addr, "GET", "/healthz", None)
        .map(|h| h.body)
        .unwrap_or_default();
    server.stop();
    let graceful = matches!(daemon.join(), Ok(Ok(())));

    println!("traffic: outcome histogram");
    println!("  202 accepted : {accepted}");
    println!("  429 shed     : {shed}");
    println!("  other status : {other}");
    println!("  errors       : {errors}");
    if chaos {
        println!("traffic: adversarial taxonomy (answer expected by each mode)");
        for (slot, mode) in ChaosMode::ALL.iter().enumerate() {
            let (ok, bad) = taxonomy[slot];
            println!(
                "  {:<14} → {:<4} : {ok} ok, {bad} unexpected",
                mode.tag(),
                expected_answer(*mode),
            );
        }
    }
    println!(
        "traffic: submit latency µs — p50 {} | p90 {} | p99 {} | max {}",
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.90),
        percentile(&latencies, 0.99),
        latencies.last().copied().unwrap_or(0),
    );
    if let Some(stats) = cache_line.split("\"cache_entries\"").nth(1) {
        println!("traffic: daemon cache_entries{stats}");
    }
    println!(
        "traffic: graceful shutdown {}",
        if graceful { "ok" } else { "FAILED" }
    );

    if errors == 0 && other == 0 && surprises == 0 && accepted + shed == requests && graceful {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
