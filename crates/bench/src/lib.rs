#![warn(missing_docs)]

//! Shared helpers for the figure/table binaries and criterion benches.
//!
//! Every binary regenerates one table or figure of the paper:
//!
//! | binary    | regenerates |
//! |-----------|-------------|
//! | `table1`  | Table 1 — memory-operation latencies |
//! | `table2`  | Table 2 — benchmark statistics |
//! | `figure2` | Figure 2 — effect of caching shared data |
//! | `figure3` | Figure 3 — SC vs RC |
//! | `figure4` | Figure 4 — prefetching under SC and RC |
//! | `figure5` | Figure 5 — multiple contexts under SC |
//! | `figure6` | Figure 6 — combining the schemes |
//! | `summary` | §7 — best combinations (the 4–7× claim) |
//!
//! All binaries run the paper-scale data sets by default; pass
//! `--test-scale` for the reduced data sets used in CI.

use dashlat::config::ExperimentConfig;

/// Parses the common command line: `--test-scale` selects the reduced data
/// sets, `--processors N` overrides the machine size.
pub fn base_config_from_args() -> ExperimentConfig {
    let args: Vec<String> = std::env::args().collect();
    let mut cfg = if args.iter().any(|a| a == "--test-scale") {
        ExperimentConfig::base_test()
    } else {
        ExperimentConfig::base()
    };
    if let Some(i) = args.iter().position(|a| a == "--processors") {
        let n = args
            .get(i + 1)
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| panic!("--processors needs a number"));
        assert!((1..=64).contains(&n), "--processors must be 1..=64");
        cfg.processors = n;
    }
    // §2.3: the paper also ran everything with the full-size 64KB/256KB
    // caches and saw similar relative gains.
    if args.iter().any(|a| a == "--full-caches") {
        cfg = cfg.with_full_caches();
    }
    cfg
}

/// Prints a figure/table header with the configuration in use.
pub fn print_preamble(what: &str, cfg: &ExperimentConfig) {
    println!(
        "# {what} — {} processors, {:?} scale\n",
        cfg.processors, cfg.scale
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_scale() {
        // No flags in the test harness args... but cargo test passes its
        // own args; just check the constructor paths compile and defaults
        // hold for the direct constructors.
        let cfg = ExperimentConfig::base();
        assert_eq!(cfg.processors, 16);
    }
}
