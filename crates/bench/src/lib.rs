#![warn(missing_docs)]

//! Shared helpers for the figure/table binaries and criterion benches.
//!
//! Every binary regenerates one table or figure of the paper:
//!
//! | binary    | regenerates |
//! |-----------|-------------|
//! | `table1`  | Table 1 — memory-operation latencies |
//! | `table2`  | Table 2 — benchmark statistics |
//! | `figure2` | Figure 2 — effect of caching shared data |
//! | `figure3` | Figure 3 — SC vs RC |
//! | `figure4` | Figure 4 — prefetching under SC and RC |
//! | `figure5` | Figure 5 — multiple contexts under SC |
//! | `figure6` | Figure 6 — combining the schemes |
//! | `summary` | §7 — best combinations (the 4–7× claim) |
//!
//! All binaries run the paper-scale data sets by default; pass
//! `--test-scale` for the reduced data sets used in CI.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;

use dashlat::apps::App;
use dashlat::config::ExperimentConfig;
use dashlat::runner::run;

/// One sweep point: which sweep it belongs to, which setting it measured,
/// and the elapsed cycles or the failure message.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Sweep name, e.g. `write-buffer-depth`.
    pub sweep: String,
    /// Point label within the sweep, e.g. `depth=4`.
    pub point: String,
    /// Elapsed pclocks on success, or why the run failed.
    pub outcome: Result<u64, String>,
}

/// Collects sweep results so one failed configuration degrades the run to
/// a *partial* JSON record instead of aborting the whole binary.
///
/// The sweep binaries (`ablations`, `scaling`) route every measurement
/// through [`SweepLog::measure`]/[`SweepLog::measure_with`]: failures
/// (structured [`RunError`](dashlat_cpu::machine::RunError)s and panics
/// alike) are recorded and warned about, the sweep continues, and
/// [`SweepLog::finish`] emits the machine-readable JSON record with a
/// `complete` flag plus the matching process exit code (0 complete,
/// 5 partial — the same convention as the CLI).
#[derive(Debug, Default)]
pub struct SweepLog {
    points: Vec<SweepPoint>,
}

impl SweepLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` with panic isolation and records the outcome under
    /// `sweep`/`point`. Returns the elapsed cycles on success, `None` on a
    /// failure (which is recorded and warned to stderr).
    pub fn measure_with(
        &mut self,
        sweep: &str,
        point: &str,
        f: impl FnOnce() -> Result<u64, String>,
    ) -> Option<u64> {
        let outcome = match catch_unwind(AssertUnwindSafe(f)) {
            Ok(r) => r,
            Err(payload) => {
                let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                Err(format!("panic: {msg}"))
            }
        };
        if let Err(e) = &outcome {
            eprintln!("warning: {sweep} / {point} failed: {e}");
        }
        let elapsed = outcome.as_ref().ok().copied();
        self.points.push(SweepPoint {
            sweep: sweep.to_owned(),
            point: point.to_owned(),
            outcome,
        });
        elapsed
    }

    /// Runs `app` under `cfg` through the standard runner, recording the
    /// outcome like [`SweepLog::measure_with`].
    pub fn measure(
        &mut self,
        sweep: &str,
        point: &str,
        app: App,
        cfg: &ExperimentConfig,
    ) -> Option<u64> {
        self.measure_with(sweep, point, || {
            run(app, cfg)
                .map(|e| e.result.elapsed.as_u64())
                .map_err(|e| e.to_string())
        })
    }

    /// Number of failed points recorded so far.
    pub fn failed(&self) -> usize {
        self.points.iter().filter(|p| p.outcome.is_err()).count()
    }

    /// Renders the log as a JSON record. `complete` is false when any
    /// point failed; failed points carry an `error` field instead of
    /// `elapsed`, so consumers see exactly which cells are missing.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"complete\": {},\n  \"points\": [\n",
            self.failed() == 0
        ));
        for (i, p) in self.points.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"sweep\": \"{}\", \"point\": \"{}\", ",
                esc(&p.sweep),
                esc(&p.point)
            ));
            match &p.outcome {
                Ok(v) => out.push_str(&format!("\"elapsed\": {v}}}")),
                Err(e) => out.push_str(&format!("\"error\": \"{}\"}}", esc(e))),
            }
            if i + 1 < self.points.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}");
        out
    }

    /// Prints the JSON record (partial or complete) and converts the log
    /// into the process exit code: 0 when complete, 5 when partial.
    pub fn finish(self) -> ExitCode {
        println!("\n## JSON record\n\n{}", self.to_json());
        if self.failed() == 0 {
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "warning: {} sweep point(s) failed; the JSON record above is partial",
                self.failed()
            );
            ExitCode::from(5)
        }
    }
}

/// Renders a figure sweep the way the figure binaries do: warnings for
/// failed cells, then tables (or CSV with `--csv`), then the exit code —
/// 0 when every cell completed, 5 when the figure is partial, 6 when any
/// cell failed race-freedom certification (with `--verify-labels`).
pub fn emit_figure(report: &dashlat::experiments::FigureReport) -> ExitCode {
    for (app, label, failure) in &report.failures {
        eprintln!("warning: {app}/{label} failed: {failure}");
    }
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", report.figure.to_csv());
    } else {
        println!("{}", report.figure.render());
        println!("{}", report.figure.render_chart());
    }
    if report.is_complete() {
        if std::env::args().any(|a| a == "--verify-labels") {
            println!("label verification: every cell certified properly labeled");
        }
        ExitCode::SUCCESS
    } else {
        // A mislabeled program invalidates the whole figure, not just one
        // cell — mirror the CLI and let races outrank generic failures.
        let racy = report
            .failures
            .iter()
            .filter(|(_, _, f)| matches!(f, dashlat::runner::RunFailure::RaceDetected(_)))
            .count();
        if racy > 0 {
            eprintln!("error: {racy} figure cell(s) failed race-freedom certification");
            ExitCode::from(6)
        } else {
            ExitCode::from(5)
        }
    }
}

/// Parses the common command line: `--test-scale` selects the reduced data
/// sets, `--processors N` overrides the machine size, `--verify-labels`
/// runs the full `dashlat-analyze` pass set over every cell and turns a
/// detected race into exit code 6 (see [`emit_figure`]).
pub fn base_config_from_args() -> ExperimentConfig {
    let args: Vec<String> = std::env::args().collect();
    let mut cfg = if args.iter().any(|a| a == "--test-scale") {
        ExperimentConfig::base_test()
    } else {
        ExperimentConfig::base()
    };
    if let Some(i) = args.iter().position(|a| a == "--processors") {
        let n = args
            .get(i + 1)
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| panic!("--processors needs a number"));
        assert!((1..=64).contains(&n), "--processors must be 1..=64");
        cfg.processors = n;
    }
    // §2.3: the paper also ran everything with the full-size 64KB/256KB
    // caches and saw similar relative gains.
    if args.iter().any(|a| a == "--full-caches") {
        cfg = cfg.with_full_caches();
    }
    if args.iter().any(|a| a == "--verify-labels") {
        cfg = cfg.with_analysis(dashlat_analyze::PassKind::ALL.to_vec());
    }
    cfg
}

/// Prints a figure/table header with the configuration in use.
pub fn print_preamble(what: &str, cfg: &ExperimentConfig) {
    println!(
        "# {what} — {} processors, {:?} scale\n",
        cfg.processors, cfg.scale
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_scale() {
        // No flags in the test harness args... but cargo test passes its
        // own args; just check the constructor paths compile and defaults
        // hold for the direct constructors.
        let cfg = ExperimentConfig::base();
        assert_eq!(cfg.processors, 16);
    }

    #[test]
    fn sweep_log_survives_failures_and_emits_partial_json() {
        let mut log = SweepLog::new();
        assert_eq!(log.measure_with("s", "ok", || Ok(42)), Some(42));
        assert_eq!(
            log.measure_with("s", "boom", || panic!("poisoned config")),
            None
        );
        assert_eq!(
            log.measure_with("s", "err", || Err("deadlock".into())),
            None
        );
        assert_eq!(log.failed(), 2);
        let json = log.to_json();
        assert!(json.contains("\"complete\": false"));
        assert!(json.contains("\"elapsed\": 42"));
        assert!(json.contains("panic: poisoned config"));
        assert!(json.contains("\"error\": \"deadlock\""));
    }

    #[test]
    fn sweep_log_complete_json() {
        let mut log = SweepLog::new();
        log.measure_with("s", "a", || Ok(1));
        assert_eq!(log.failed(), 0);
        assert!(log.to_json().contains("\"complete\": true"));
    }
}
