#![deny(missing_docs)]

//! Shared helpers for the figure/table binaries and criterion benches.
//!
//! Every binary regenerates one table or figure of the paper:
//!
//! | binary    | regenerates |
//! |-----------|-------------|
//! | `table1`  | Table 1 — memory-operation latencies |
//! | `table2`  | Table 2 — benchmark statistics |
//! | `figure2` | Figure 2 — effect of caching shared data |
//! | `figure3` | Figure 3 — SC vs RC |
//! | `figure4` | Figure 4 — prefetching under SC and RC |
//! | `figure5` | Figure 5 — multiple contexts under SC |
//! | `figure6` | Figure 6 — combining the schemes |
//! | `summary` | §7 — best combinations (the 4–7× claim) |
//!
//! All binaries run the paper-scale data sets by default; pass
//! `--test-scale` for the reduced data sets used in CI. Sweep cells are
//! independent simulations and execute on a worker pool sized by
//! `--jobs N` (default: all cores); results are always recorded in input
//! order and are bit-identical to a serial run.
//!
//! The sweep-log machinery ([`SweepBatch`], [`SweepLog`], [`SweepPoint`])
//! lives in `dashlat::sweeplog` (re-exported here unchanged) so the CLI's
//! supervised sweep can share it.

use std::process::ExitCode;
use std::time::Instant;

pub use dashlat::sweeplog::{SweepBatch, SweepLog, SweepPoint};

use dashlat::config::ExperimentConfig;

/// One timed run of a small, fixed simulation (16-node uniform-random
/// traffic, deterministic seed), returning host events per second.
///
/// This is the bench-gate's *calibration* workload: it exercises the same
/// dispatch loop, memory system, and contention paths as a figure sweep,
/// so its throughput tracks the figure sweeps' throughput across hosts of
/// different speeds. A committed BENCH baseline records the score of the
/// machine that produced it; the gate re-runs the calibration on the
/// current runner and scales the baseline by the ratio before comparing.
pub fn calibration_run() -> f64 {
    use dashlat_cpu::config::ProcConfig;
    use dashlat_cpu::machine::Machine;
    use dashlat_cpu::ops::Topology;
    use dashlat_mem::layout::AddressSpaceBuilder;
    use dashlat_mem::system::{MemConfig, MemorySystem};
    use dashlat_workloads::synthetic::UniformRandom;

    let topo = Topology::new(16, 1);
    let mut space = AddressSpaceBuilder::new(16);
    let w = UniformRandom::new(topo, &mut space, 1 << 18, 2_000, 0.3, 5, 3);
    let mem = MemorySystem::new(MemConfig::dash_scaled(16), space.build());
    let start = Instant::now();
    let result = Machine::new(ProcConfig::sc_baseline(), topo, mem, w)
        .run()
        .expect("calibration machine terminates");
    result.sim_events as f64 / start.elapsed().as_secs_f64()
}

/// Runs [`calibration_run`] `samples` times (after one untimed warm-up)
/// and returns `(best_events_per_sec, spread)`, where `spread` is
/// `(best - worst) / best` over the samples. A large spread means the
/// host is too noisy for throughput comparisons to mean anything — the
/// bench-gate skips (loudly) instead of failing on such runners.
pub fn calibrate(samples: usize) -> (f64, f64) {
    calibration_run();
    let scores: Vec<f64> = (0..samples.max(1)).map(|_| calibration_run()).collect();
    let best = scores.iter().copied().fold(f64::MIN, f64::max);
    let worst = scores.iter().copied().fold(f64::MAX, f64::min);
    (best, (best - worst) / best)
}

/// Renders a figure sweep the way the figure binaries do: warnings for
/// failed cells, then tables (or CSV with `--csv`), then the exit code —
/// 0 when every cell completed, 5 when the figure is partial, 6 when any
/// cell failed race-freedom certification (with `--verify-labels`).
pub fn emit_figure(report: &dashlat::experiments::FigureReport) -> ExitCode {
    for (app, label, failure) in &report.failures {
        eprintln!("warning: {app}/{label} failed: {failure}");
    }
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", report.figure.to_csv());
    } else {
        println!("{}", report.figure.render());
        println!("{}", report.figure.render_chart());
    }
    if report.is_complete() {
        if std::env::args().any(|a| a == "--verify-labels") {
            println!("label verification: every cell certified properly labeled");
        }
        ExitCode::SUCCESS
    } else {
        // A mislabeled program invalidates the whole figure, not just one
        // cell — mirror the CLI and let races outrank generic failures.
        let racy = report
            .failures
            .iter()
            .filter(|(_, _, f)| matches!(f, dashlat::runner::RunFailure::RaceDetected(_)))
            .count();
        if racy > 0 {
            eprintln!("error: {racy} figure cell(s) failed race-freedom certification");
            ExitCode::from(6)
        } else {
            ExitCode::from(5)
        }
    }
}

/// Parses the common command line: `--test-scale` selects the reduced data
/// sets, `--processors N` overrides the machine size, `--jobs N` pins the
/// sweep worker count (default: all cores), `--verify-labels` runs the
/// full `dashlat-analyze` pass set over every cell and turns a detected
/// race into exit code 6 (see [`emit_figure`]).
pub fn base_config_from_args() -> ExperimentConfig {
    let args: Vec<String> = std::env::args().collect();
    let mut cfg = if args.iter().any(|a| a == "--test-scale") {
        ExperimentConfig::base_test()
    } else {
        ExperimentConfig::base()
    };
    if let Some(i) = args.iter().position(|a| a == "--processors") {
        let n = args
            .get(i + 1)
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| panic!("--processors needs a number"));
        assert!((1..=64).contains(&n), "--processors must be 1..=64");
        cfg.processors = n;
    }
    if let Some(i) = args.iter().position(|a| a == "--jobs") {
        let n = args
            .get(i + 1)
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| panic!("--jobs needs a number"));
        assert!(n >= 1, "--jobs must be at least 1");
        dashlat::set_default_jobs(Some(n));
    }
    // §2.3: the paper also ran everything with the full-size 64KB/256KB
    // caches and saw similar relative gains.
    if args.iter().any(|a| a == "--full-caches") {
        cfg = cfg.with_full_caches();
    }
    if args.iter().any(|a| a == "--verify-labels") {
        cfg = cfg.with_analysis(dashlat_analyze::PassKind::ALL.to_vec());
    }
    cfg
}

/// Prints a figure/table header with the configuration in use.
pub fn print_preamble(what: &str, cfg: &ExperimentConfig) {
    println!(
        "# {what} — {} processors, {:?} scale\n",
        cfg.processors, cfg.scale
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_scale() {
        // No flags in the test harness args... but cargo test passes its
        // own args; just check the constructor paths compile and defaults
        // hold for the direct constructors.
        let cfg = ExperimentConfig::base();
        assert_eq!(cfg.processors, 16);
    }

    #[test]
    fn sweeplog_reexport_is_the_core_type() {
        // The figure binaries keep compiling against `dashlat_bench::SweepLog`
        // while the supervised sweep uses `dashlat::sweeplog::SweepLog`; both
        // must be the same type.
        let mut log: dashlat::sweeplog::SweepLog = SweepLog::new();
        log.measure_with("s", "a", || Ok(1));
        assert_eq!(log.failed(), 0);
    }
}
