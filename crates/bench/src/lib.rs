#![warn(missing_docs)]

//! Shared helpers for the figure/table binaries and criterion benches.
//!
//! Every binary regenerates one table or figure of the paper:
//!
//! | binary    | regenerates |
//! |-----------|-------------|
//! | `table1`  | Table 1 — memory-operation latencies |
//! | `table2`  | Table 2 — benchmark statistics |
//! | `figure2` | Figure 2 — effect of caching shared data |
//! | `figure3` | Figure 3 — SC vs RC |
//! | `figure4` | Figure 4 — prefetching under SC and RC |
//! | `figure5` | Figure 5 — multiple contexts under SC |
//! | `figure6` | Figure 6 — combining the schemes |
//! | `summary` | §7 — best combinations (the 4–7× claim) |
//!
//! All binaries run the paper-scale data sets by default; pass
//! `--test-scale` for the reduced data sets used in CI. Sweep cells are
//! independent simulations and execute on a worker pool sized by
//! `--jobs N` (default: all cores); results are always recorded in input
//! order and are bit-identical to a serial run.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;
use std::sync::Mutex;

use dashlat::apps::App;
use dashlat::config::ExperimentConfig;
use dashlat::runner::run;

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

type CellFn<'a> = Box<dyn FnOnce() -> Result<u64, String> + Send + 'a>;

/// A batch of independent sweep cells, built up first and then executed
/// together on the worker pool by [`SweepLog::measure_batch`].
///
/// The sweep binaries used to interleave measuring and printing one cell
/// at a time; batching separates the two so the measurements — each an
/// independent single-threaded simulation — can run in parallel while the
/// log still records (and the binary still prints) results in input order.
#[derive(Default)]
pub struct SweepBatch<'a> {
    cells: Vec<(String, String, CellFn<'a>)>,
}

impl<'a> SweepBatch<'a> {
    /// Empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues one cell: `f` will run under panic isolation when the batch
    /// is measured, recorded under `sweep`/`point`.
    pub fn add(
        &mut self,
        sweep: impl Into<String>,
        point: impl Into<String>,
        f: impl FnOnce() -> Result<u64, String> + Send + 'a,
    ) {
        self.cells.push((sweep.into(), point.into(), Box::new(f)));
    }

    /// Queues a standard-runner cell: `app` under `cfg` (cloned).
    pub fn add_run(
        &mut self,
        sweep: impl Into<String>,
        point: impl Into<String>,
        app: App,
        cfg: &ExperimentConfig,
    ) {
        let cfg = cfg.clone();
        self.add(sweep, point, move || {
            run(app, &cfg)
                .map(|e| e.result.elapsed.as_u64())
                .map_err(|e| e.to_string())
        });
    }

    /// Number of queued cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no cell is queued.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// One sweep point: which sweep it belongs to, which setting it measured,
/// and the elapsed cycles or the failure message.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Sweep name, e.g. `write-buffer-depth`.
    pub sweep: String,
    /// Point label within the sweep, e.g. `depth=4`.
    pub point: String,
    /// Elapsed pclocks on success, or why the run failed.
    pub outcome: Result<u64, String>,
}

/// Collects sweep results so one failed configuration degrades the run to
/// a *partial* JSON record instead of aborting the whole binary.
///
/// The sweep binaries (`ablations`, `scaling`) route every measurement
/// through [`SweepLog::measure`]/[`SweepLog::measure_with`]: failures
/// (structured [`RunError`](dashlat_cpu::machine::RunError)s and panics
/// alike) are recorded and warned about, the sweep continues, and
/// [`SweepLog::finish`] emits the machine-readable JSON record with a
/// `complete` flag plus the matching process exit code (0 complete,
/// 5 partial — the same convention as the CLI).
#[derive(Debug, Default)]
pub struct SweepLog {
    points: Vec<SweepPoint>,
}

impl SweepLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` with panic isolation and records the outcome under
    /// `sweep`/`point`. Returns the elapsed cycles on success, `None` on a
    /// failure (which is recorded and warned to stderr).
    pub fn measure_with(
        &mut self,
        sweep: &str,
        point: &str,
        f: impl FnOnce() -> Result<u64, String>,
    ) -> Option<u64> {
        let outcome = match catch_unwind(AssertUnwindSafe(f)) {
            Ok(r) => r,
            Err(payload) => Err(format!("panic: {}", panic_message(payload))),
        };
        if let Err(e) = &outcome {
            eprintln!("warning: {sweep} / {point} failed: {e}");
        }
        let elapsed = outcome.as_ref().ok().copied();
        self.points.push(SweepPoint {
            sweep: sweep.to_owned(),
            point: point.to_owned(),
            outcome,
        });
        elapsed
    }

    /// Runs `app` under `cfg` through the standard runner, recording the
    /// outcome like [`SweepLog::measure_with`].
    pub fn measure(
        &mut self,
        sweep: &str,
        point: &str,
        app: App,
        cfg: &ExperimentConfig,
    ) -> Option<u64> {
        self.measure_with(sweep, point, || {
            run(app, cfg)
                .map(|e| e.result.elapsed.as_u64())
                .map_err(|e| e.to_string())
        })
    }

    /// Runs every cell of `batch` on the sweep worker pool
    /// ([`dashlat::par_indexed_map`], `jobs = None` → the process-wide
    /// `--jobs` default) and records each outcome exactly as
    /// [`SweepLog::measure_with`] would, **in input order** regardless of
    /// completion order. Returns the elapsed cycles per cell, also in
    /// input order.
    pub fn measure_batch(
        &mut self,
        batch: SweepBatch<'_>,
        jobs: Option<usize>,
    ) -> Vec<Option<u64>> {
        let jobs = dashlat::effective_jobs(jobs);
        let cells: Vec<(String, String, Mutex<Option<CellFn<'_>>>)> = batch
            .cells
            .into_iter()
            .map(|(s, p, f)| (s, p, Mutex::new(Some(f))))
            .collect();
        let outcomes = dashlat::par_indexed_map(jobs, &cells, |_, (_, _, cell)| {
            let f = cell
                .lock()
                .expect("cell lock poisoned")
                .take()
                .expect("each cell runs exactly once");
            match catch_unwind(AssertUnwindSafe(f)) {
                Ok(r) => r,
                Err(payload) => Err(format!("panic: {}", panic_message(payload))),
            }
        });
        cells
            .into_iter()
            .zip(outcomes)
            .map(|((sweep, point, _), outcome)| {
                if let Err(e) = &outcome {
                    eprintln!("warning: {sweep} / {point} failed: {e}");
                }
                let elapsed = outcome.as_ref().ok().copied();
                self.points.push(SweepPoint {
                    sweep,
                    point,
                    outcome,
                });
                elapsed
            })
            .collect()
    }

    /// Number of failed points recorded so far.
    pub fn failed(&self) -> usize {
        self.points.iter().filter(|p| p.outcome.is_err()).count()
    }

    /// Renders the log as a JSON record. `complete` is false when any
    /// point failed; failed points carry an `error` field instead of
    /// `elapsed`, so consumers see exactly which cells are missing.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"complete\": {},\n  \"points\": [\n",
            self.failed() == 0
        ));
        for (i, p) in self.points.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"sweep\": \"{}\", \"point\": \"{}\", ",
                esc(&p.sweep),
                esc(&p.point)
            ));
            match &p.outcome {
                Ok(v) => out.push_str(&format!("\"elapsed\": {v}}}")),
                Err(e) => out.push_str(&format!("\"error\": \"{}\"}}", esc(e))),
            }
            if i + 1 < self.points.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}");
        out
    }

    /// Prints the JSON record (partial or complete) and converts the log
    /// into the process exit code: 0 when complete, 5 when partial.
    pub fn finish(self) -> ExitCode {
        println!("\n## JSON record\n\n{}", self.to_json());
        if self.failed() == 0 {
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "warning: {} sweep point(s) failed; the JSON record above is partial",
                self.failed()
            );
            ExitCode::from(5)
        }
    }
}

/// Renders a figure sweep the way the figure binaries do: warnings for
/// failed cells, then tables (or CSV with `--csv`), then the exit code —
/// 0 when every cell completed, 5 when the figure is partial, 6 when any
/// cell failed race-freedom certification (with `--verify-labels`).
pub fn emit_figure(report: &dashlat::experiments::FigureReport) -> ExitCode {
    for (app, label, failure) in &report.failures {
        eprintln!("warning: {app}/{label} failed: {failure}");
    }
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", report.figure.to_csv());
    } else {
        println!("{}", report.figure.render());
        println!("{}", report.figure.render_chart());
    }
    if report.is_complete() {
        if std::env::args().any(|a| a == "--verify-labels") {
            println!("label verification: every cell certified properly labeled");
        }
        ExitCode::SUCCESS
    } else {
        // A mislabeled program invalidates the whole figure, not just one
        // cell — mirror the CLI and let races outrank generic failures.
        let racy = report
            .failures
            .iter()
            .filter(|(_, _, f)| matches!(f, dashlat::runner::RunFailure::RaceDetected(_)))
            .count();
        if racy > 0 {
            eprintln!("error: {racy} figure cell(s) failed race-freedom certification");
            ExitCode::from(6)
        } else {
            ExitCode::from(5)
        }
    }
}

/// Parses the common command line: `--test-scale` selects the reduced data
/// sets, `--processors N` overrides the machine size, `--jobs N` pins the
/// sweep worker count (default: all cores), `--verify-labels` runs the
/// full `dashlat-analyze` pass set over every cell and turns a detected
/// race into exit code 6 (see [`emit_figure`]).
pub fn base_config_from_args() -> ExperimentConfig {
    let args: Vec<String> = std::env::args().collect();
    let mut cfg = if args.iter().any(|a| a == "--test-scale") {
        ExperimentConfig::base_test()
    } else {
        ExperimentConfig::base()
    };
    if let Some(i) = args.iter().position(|a| a == "--processors") {
        let n = args
            .get(i + 1)
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| panic!("--processors needs a number"));
        assert!((1..=64).contains(&n), "--processors must be 1..=64");
        cfg.processors = n;
    }
    if let Some(i) = args.iter().position(|a| a == "--jobs") {
        let n = args
            .get(i + 1)
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| panic!("--jobs needs a number"));
        assert!(n >= 1, "--jobs must be at least 1");
        dashlat::set_default_jobs(Some(n));
    }
    // §2.3: the paper also ran everything with the full-size 64KB/256KB
    // caches and saw similar relative gains.
    if args.iter().any(|a| a == "--full-caches") {
        cfg = cfg.with_full_caches();
    }
    if args.iter().any(|a| a == "--verify-labels") {
        cfg = cfg.with_analysis(dashlat_analyze::PassKind::ALL.to_vec());
    }
    cfg
}

/// Prints a figure/table header with the configuration in use.
pub fn print_preamble(what: &str, cfg: &ExperimentConfig) {
    println!(
        "# {what} — {} processors, {:?} scale\n",
        cfg.processors, cfg.scale
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_scale() {
        // No flags in the test harness args... but cargo test passes its
        // own args; just check the constructor paths compile and defaults
        // hold for the direct constructors.
        let cfg = ExperimentConfig::base();
        assert_eq!(cfg.processors, 16);
    }

    #[test]
    fn sweep_log_survives_failures_and_emits_partial_json() {
        let mut log = SweepLog::new();
        assert_eq!(log.measure_with("s", "ok", || Ok(42)), Some(42));
        assert_eq!(
            log.measure_with("s", "boom", || panic!("poisoned config")),
            None
        );
        assert_eq!(
            log.measure_with("s", "err", || Err("deadlock".into())),
            None
        );
        assert_eq!(log.failed(), 2);
        let json = log.to_json();
        assert!(json.contains("\"complete\": false"));
        assert!(json.contains("\"elapsed\": 42"));
        assert!(json.contains("panic: poisoned config"));
        assert!(json.contains("\"error\": \"deadlock\""));
    }

    #[test]
    fn sweep_log_complete_json() {
        let mut log = SweepLog::new();
        log.measure_with("s", "a", || Ok(1));
        assert_eq!(log.failed(), 0);
        assert!(log.to_json().contains("\"complete\": true"));
    }

    #[test]
    fn batch_records_in_input_order_and_isolates_panics() {
        let mut batch = SweepBatch::new();
        for i in 0u64..20 {
            batch.add("batch", format!("i={i}"), move || {
                if i == 7 {
                    panic!("cell 7 poisoned");
                }
                Ok(i * 10)
            });
        }
        assert_eq!(batch.len(), 20);
        let mut log = SweepLog::new();
        let elapsed = log.measure_batch(batch, Some(4));
        assert_eq!(elapsed.len(), 20);
        for (i, e) in elapsed.iter().enumerate() {
            if i == 7 {
                assert!(e.is_none());
            } else {
                assert_eq!(*e, Some(i as u64 * 10));
            }
        }
        assert_eq!(log.failed(), 1);
        let json = log.to_json();
        assert!(json.contains("cell 7 poisoned"));
        // Points appear in input order in the JSON record.
        let p3 = json.find("\"point\": \"i=3\"").expect("i=3 present");
        let p12 = json.find("\"point\": \"i=12\"").expect("i=12 present");
        assert!(p3 < p12);
    }

    #[test]
    fn batch_serial_and_parallel_agree() {
        let run_with = |jobs: usize| {
            let mut batch = SweepBatch::new();
            for i in 0u64..12 {
                batch.add("s", format!("i={i}"), move || Ok(i * i));
            }
            let mut log = SweepLog::new();
            let elapsed = log.measure_batch(batch, Some(jobs));
            (elapsed, log.to_json())
        };
        assert_eq!(run_with(1), run_with(8));
    }
}
