//! Command-line parsing (hand-rolled; the workspace keeps its dependency
//! surface to the approved simulation crates).

use dashlat::apps::App;
use dashlat::config::{AppScale, ExperimentConfig};
use dashlat_analyze::{parse_passes, PassKind};
use dashlat_cpu::config::Consistency;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run one experiment and print its breakdown.
    Run {
        /// Application to run.
        app: App,
        /// Machine variant.
        config: Box<ExperimentConfig>,
        /// Also print the stacked-bar chart.
        chart: bool,
    },
    /// Regenerate a paper figure (2–6).
    Figure {
        /// Figure number.
        number: u8,
        /// Machine baseline.
        config: Box<ExperimentConfig>,
        /// Emit CSV instead of tables.
        csv: bool,
    },
    /// Regenerate a paper table (1 or 2).
    Table {
        /// Table number.
        number: u8,
        /// Machine baseline.
        config: Box<ExperimentConfig>,
    },
    /// The §7 best-combination summary.
    Summary {
        /// Machine baseline.
        config: Box<ExperimentConfig>,
    },
    /// Record an application's reference trace to a file.
    TraceRecord {
        /// Application to trace.
        app: App,
        /// Output path.
        out: String,
        /// Machine variant used while recording.
        config: Box<ExperimentConfig>,
    },
    /// Replay a recorded trace.
    TraceReplay {
        /// Input path.
        input: String,
        /// Machine variant to replay under.
        config: Box<ExperimentConfig>,
    },
    /// Run analysis passes (race detection, properly-labeled
    /// certification) over workload runs or a recorded trace.
    Analyze {
        /// Applications to certify (all three when empty and no trace
        /// input was given).
        apps: Vec<App>,
        /// Recorded trace to analyze instead of live runs.
        input: Option<String>,
        /// Passes to run.
        passes: Vec<PassKind>,
        /// Machine variant for live runs.
        config: Box<ExperimentConfig>,
    },
    /// Statically lint workload programs (no simulation): lock-order
    /// deadlock detection, barrier divergence, PL-labeling inference,
    /// and prefetch lints.
    Lint {
        /// Applications to lint (all three when empty and no trace
        /// input was given).
        apps: Vec<App>,
        /// Also lint the whole litmus corpus.
        all: bool,
        /// Recorded trace to lint instead of extracted programs.
        input: Option<String>,
        /// Emit machine-readable JSON instead of the text report.
        json: bool,
        /// Fail on incomplete analyses (truncated extraction or an
        /// unconverged happens-before closure), not just critical
        /// findings.
        strict: bool,
        /// Machine variant (scales the programs; fixes the latency
        /// table behind the late-prefetch and over-labeling costs).
        config: Box<ExperimentConfig>,
    },
    /// Crash-safe supervised sweep of one paper figure's matrix.
    Sweep {
        /// Figure number (2-6).
        number: u8,
        /// Machine baseline.
        config: Box<ExperimentConfig>,
        /// Write-ahead journal path.
        journal: String,
        /// Output path for the final `SweepLog` JSON.
        out: String,
        /// Replay an existing journal's committed cells.
        resume: bool,
        /// Run each cell in a subprocess with a wall-clock timeout.
        isolate: bool,
        /// Per-cell wall-clock timeout for `--isolate`, in seconds.
        timeout_secs: u64,
        /// Maximum retries per cell for transient failures.
        retries: u32,
        /// Where to write repro bundles for permanent failures.
        bundle_dir: Option<String>,
    },
    /// Run one sweep cell in-process and print its JSON outcome record —
    /// the subprocess half of `sweep --isolate`.
    Cell {
        /// Application to run.
        app: App,
        /// Machine variant.
        config: Box<ExperimentConfig>,
    },
    /// Replay a repro bundle and verify the recorded failure reproduces.
    Repro {
        /// Bundle path.
        bundle: String,
    },
    /// Fuzz randomized fault schedules against the invariant checker and
    /// determinism oracle, shrinking the first failing schedule.
    Chaos {
        /// Application to hammer.
        app: App,
        /// Machine baseline the schedules are applied to.
        config: Box<ExperimentConfig>,
        /// Fault schedules to try.
        trials: u32,
        /// Campaign seed.
        seed: u64,
        /// Re-run surviving schedules for the determinism oracle.
        determinism: bool,
        /// Where to write the repro bundle for a failing schedule.
        bundle_dir: String,
        /// Torture the serve daemon instead of a single simulation:
        /// seeded schedules of worker kills, disk faults, client floods
        /// and restarts, judged by service-level oracles.
        serve: bool,
        /// Torture data root (`--serve` only); a temp dir when absent.
        data_dir: Option<String>,
        /// Loud-skip threshold in ms/cell for the torture harness on
        /// slow runners (`--serve` only; 0 = never skip).
        calibration_budget_ms: u64,
    },
    /// Exhaustively verify the machine's memory model and directory
    /// protocol against their specifications.
    VerifyModel {
        /// Consistency models to check.
        models: Vec<Consistency>,
        /// Corpus tests to run (empty = whole corpus).
        tests: Vec<String>,
        /// Name glob (`*`/`?`) selecting corpus tests when `tests` is
        /// empty.
        filter: Option<String>,
        /// Per-cell run budget (0 = the crate default).
        max_runs: u64,
        /// List the corpus (names + descriptions) and exit.
        list: bool,
        /// Collect and print per-cell exploration statistics (DPOR vs
        /// the sleep-set baseline).
        stats: bool,
        /// Fail the suite on any truncation.
        strict: bool,
        /// Also run the deep 4-processor/4-line protocol closure.
        deep_closure: bool,
    },
    /// Run the long-lived job service: HTTP API, bounded worker pool,
    /// admission control, result cache, crash recovery.
    Serve {
        /// Bind address (`ip:port`; port 0 picks an ephemeral port).
        addr: String,
        /// Data directory (`addr` file, result cache, job state).
        data_dir: String,
        /// Worker threads executing jobs.
        workers: usize,
        /// Queued-job limit before submissions are shed with 429.
        queue_depth: usize,
        /// Default per-job wall-clock deadline in seconds (0 = none).
        job_timeout_secs: u64,
        /// Run each sweep cell in a `dashlat cell` subprocess (crash
        /// isolation + per-cell wall-clock timeout).
        isolate: bool,
        /// Per-cell subprocess timeout in seconds (with `--isolate`).
        cell_timeout_secs: u64,
        /// Consecutive worker crashes before a job's circuit breaker
        /// opens and its remaining cells fail fast (with `--isolate`).
        crash_loop_threshold: u32,
        /// Concurrent-connection cap; excess connections get 503.
        max_connections: usize,
        /// Per-connection request deadline in seconds (0 = none).
        conn_deadline_secs: u64,
    },
    /// Submit a job to a running service.
    Submit {
        /// Explicit server address; when absent the daemon's `addr` file
        /// under `data_dir` is read instead.
        addr: Option<String>,
        /// Data directory shared with the daemon.
        data_dir: String,
        /// The job to submit.
        spec: Box<dashlat_serve::JobSpec>,
        /// Poll until the job reaches a terminal state and exit with its
        /// exit code.
        wait: bool,
    },
    /// Query a running service: one job's status, or the whole list.
    Status {
        /// Explicit server address; when absent the daemon's `addr` file
        /// under `data_dir` is read instead.
        addr: Option<String>,
        /// Data directory shared with the daemon.
        data_dir: String,
        /// Job to show (all jobs plus daemon health when absent).
        id: Option<u64>,
    },
    /// Print usage.
    Help,
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

/// Usage text.
pub const USAGE: &str = "\
dashlat — DASH-like latency-technique simulator (ISCA'91 reproduction)

USAGE:
  dashlat run --app <mp3d|lu|pthor> [machine flags] [--chart]
  dashlat figure <2|3|4|5|6> [machine flags] [--csv]
  dashlat table <1|2> [machine flags]
  dashlat summary [machine flags]
  dashlat trace record --app <app> --out <file> [machine flags]
  dashlat trace replay --in <file> [machine flags]
  dashlat analyze [--app <app>]... [--in <file>] [--passes <list>]
                  [--paper-scale] [machine flags]
  dashlat lint [--app <app>]... [--all] [--in <file>] [--json]
               [--strict] [--paper-scale] [machine flags]
  dashlat sweep <2|3|4|5|6> [machine flags] [--journal <file>] [--out <file>]
                [--resume] [--isolate] [--timeout-secs <n>] [--retries <n>]
                [--bundle-dir <dir>]
  dashlat cell --app <app> [machine flags]
  dashlat repro <bundle.json>
  dashlat chaos [--app <app>] [machine flags] [--trials <n>] [--seed <n>]
                [--no-determinism] [--bundle-dir <dir>]
  dashlat chaos --serve [--trials <n>] [--seed <n>] [--data-dir <dir>]
                [--calibration-budget-ms <n>]
  dashlat verify-model [--all] [--models <sc,pc,wc,rc>] [--tests <names>]
                       [--filter <glob>] [--max-runs <n>] [--list] [--stats]
                       [--strict] [--deep-closure]
  dashlat serve [--addr <ip:port>] [--data-dir <dir>] [--workers <n>]
                [--queue-depth <n>] [--job-timeout-secs <n>] [--isolate]
                [--cell-timeout-secs <n>] [--crash-loop-threshold <n>]
                [--max-connections <n>] [--conn-deadline-secs <n>]
  dashlat submit [--addr <ip:port> | --data-dir <dir>] [--wait]
                 [--sweep-jobs <n>] [--retries <n>] [--timeout-secs <n>]
                 sweep <2|3|4|5|6> [machine flags]
               | chaos [--app <app>] [--trials <n>] [--seed <n>] [machine flags]
               | verify [--models <list>] [--tests <names>] [--max-runs <n>]
  dashlat status [<job-id>] [--addr <ip:port> | --data-dir <dir>]
  dashlat help

MACHINE FLAGS:
  --processors <1..64>      processors (default 16)
  --consistency <sc|pc|wc|rc>  memory consistency model (default sc)
  --contexts <n>            hardware contexts per processor (default 1)
  --switch <cycles>         context switch overhead (default 4)
  --prefetch                enable software prefetching
  --no-cache                shared data not cacheable
  --full-caches             64KB/256KB caches instead of 2KB/4KB
  --no-contention           disable bus/network queueing
  --mesh                    2-D mesh network model
  --dir-pointers <n>        limited-pointer (Dir_n-B) directory
  --lookahead <cycles>      perfect read lookahead window (OoO what-if)
  --test-scale              reduced data sets (default: paper scale)
  --jobs <n>                sweep worker threads for figure/table/summary
                            matrices (default: all cores; cells stay
                            bit-identical to a serial run)
  --faults <spec>           seeded fault injection: a preset
                            (light|heavy|nacks[:seed]) or key=value pairs
                            (seed,nack,retries,backoff,cap,delay,maxdelay,full)
  --check-invariants        check coherence invariants after every access
  --no-check-invariants     disable invariant checking (overrides the
                            debug-build default)
  --enforce-wb-fifo         enforce W->W write-buffer FIFO retirement
                            order as an online invariant
  --mutate-ww               arm the seeded W->W reordering bug
                            (verify-mutations builds only; for testing
                            the chaos fuzzer against a known-real bug)
  --analyze <passes>        record an event log and run analysis passes
                            after the run: all, or a comma list of
                            hb,lockset,barrier,prefetch,syncbalance

ANALYZE:
  `dashlat analyze` certifies runs as properly labeled (every competing
  access ordered by synchronization or explicitly labeled). Defaults:
  all three applications, 16 processors, release consistency, reduced
  data sets (--paper-scale restores Table 2 sizes), every pass.
  --in <file> analyzes a recorded trace by logical replay instead.

LINT:
  `dashlat lint` statically analyzes workload programs without
  simulating a cycle: it extracts each per-process op program into a
  sync-skeleton CFG and runs four whole-program passes — lock-order
  deadlock detection (cycles with per-process witnesses, unreleased
  and unmatched releases), barrier-divergence (every process must
  traverse the same barrier sequence), PL-labeling inference (a static
  happens-before closure; under-labeling is a statically possible race
  and fails the lint, over-labeling is reported with its estimated
  forfeited write-latency hiding in stall cycles), and prefetch lints
  (dead, late, duplicate — advisory). Defaults match `analyze`: all
  three applications, release consistency, reduced data sets. --all
  adds the litmus corpus; --in <file> lints a recorded trace instead;
  --json prints one machine-readable report per subject; --strict also
  fails incomplete analyses (truncated extraction or an unconverged
  closure). Critical findings exit 11.

SWEEP / CHAOS / REPRO:
  `dashlat sweep N` runs figure N's matrix under a crash-safe supervisor:
  each finished cell is committed to a write-ahead journal (fsync per
  record) before it counts, so after a crash or `kill -9` the same
  command with --resume replays the committed cells and re-runs only the
  rest — the final JSON (--out, published atomically) is byte-identical
  to an uninterrupted run, serial or parallel. --isolate runs each cell
  in a subprocess with a wall-clock timeout. Transient failures (cycle
  budget or livelock under active fault injection; subprocess timeouts
  and signal kills) retry with capped exponential backoff; permanent
  ones (deadlock, invariant violation, panic, race) fail the cell at
  once and, with --bundle-dir, emit a self-contained repro bundle.
  `dashlat repro <bundle>` replays a bundle and exits 0 only when the
  recorded failure reproduces (9 on divergence). `dashlat chaos` fuzzes
  seeded fault schedules against the online invariant checker and a
  determinism oracle, delta-debugs the first failing schedule to
  minimal, and writes it as a repro bundle (exit 8). `dashlat chaos
  --serve` tortures the daemon instead: each seeded schedule mixes
  worker SIGKILLs, injected disk faults, adversarial client floods and
  mid-run restarts against a live in-process daemon, then checks four
  service oracles (no acknowledged job lost, logs never torn, cache
  exactly-once, recovery within a bound) and delta-debugs any failing
  schedule to a minimal reproducer (exit 8). --calibration-budget-ms
  skips loudly on runners too slow to judge fairly.

VERIFY-MODEL:
  `dashlat verify-model` runs the litmus corpus through a stateless
  model checker with dynamic partial-order reduction and compares the
  machine's outcome sets against the axiomatic consistency models, then
  exhaustively checks the directory protocol's SWMR and data-value
  invariants on small configurations (including the lazy write-back
  variant). Defaults: SC and RC, whole corpus. --all checks all four
  models; --models / --tests narrow the sweep (comma lists); --filter
  selects corpus tests by name glob (* and ?); --list prints the corpus
  and exits; --max-runs caps runs per (test, model) cell — hitting the
  cap marks the cell truncated, which fails it (truncation is never
  silent). --stats re-explores each cell with the sleep-set baseline
  and prints a reduction report; --strict fails the suite on any
  truncation; --deep-closure adds the 4-processor/4-line protocol
  closure (release builds recommended).

SERVE / SUBMIT / STATUS:
  `dashlat serve` runs a long-lived daemon over a plain-thread HTTP/1.1
  API: a bounded worker pool drains an admission queue (submissions
  beyond --queue-depth are shed with 429 + Retry-After), every job
  carries a cancel token and a wall-clock deadline, and sweep cells are
  served from a content-addressed result cache keyed by the machine
  configuration's fingerprint — the same machine measured under two
  jobs simulates once. On startup the daemon classifies every job
  directory (terminal / resumable / corrupt) and re-enqueues resumable
  sweeps, which resume from their journals to byte-identical output;
  SIGTERM/SIGINT checkpoint in-flight sweeps at the next cell boundary
  and exit 0. --isolate runs each sweep cell in a `dashlat cell`
  subprocess under --cell-timeout-secs and a per-job crash-loop circuit
  breaker (--crash-loop-threshold consecutive crashes open it), so a
  crashing cell costs one child, never the daemon. The
  HTTP surface is hardened: slow or oversized requests get 408/413
  under --conn-deadline-secs, and connections beyond --max-connections
  are shed with 503 + Retry-After. Endpoints: GET /healthz /readyz
  /jobs /jobs/<id> /jobs/<id>/log /jobs/<id>/events[?after=N&wait=S]
  (long poll: blocks until new journal records or the wait expires);
  POST /jobs /jobs/<id>/cancel /shutdown. `dashlat submit` POSTs a job (machine flags travel
  verbatim and are validated on both ends); with --wait it polls to a
  terminal state and exits with the job's own exit code. `dashlat
  status` prints one job's state or the whole list plus daemon health.
  Both find the daemon through --addr or the `addr` file in its
  --data-dir.

EXIT CODES:
  0 success   1 generic error   2 deadlock   3 livelock
  4 invariant violation   5 partial matrix results   6 race detected
  7 memory-model violation   8 chaos found a failing schedule
  9 repro bundle did not reproduce   10 service error (daemon
  unreachable, submission rejected, or remote job failed opaquely)
  11 static lint found critical findings
  When several failures co-occur (e.g. in one figure matrix), the most
  severe code wins: 7, then 4, 2, 3, 6, 8, 9, 11, 5, 10, and 1 last.
";

fn parse_consistency(v: &str) -> Result<Consistency, ArgError> {
    v.parse().map_err(ArgError)
}

/// Extracts the machine flags from `args`, removing everything it
/// consumes; unrecognized tokens are left in place for the caller.
/// A thin wrapper over [`dashlat::parse_machine_args`] — the same parser
/// behind `dashlat repro` bundle replay and the `dashlat serve`
/// job-submission API, so a configuration means the same thing on every
/// path.
pub(crate) fn parse_machine_flags(args: &mut Vec<String>) -> Result<ExperimentConfig, ArgError> {
    dashlat::parse_machine_args(args).map_err(ArgError)
}

fn take_flag_value(args: &mut Vec<String>, flag: &str) -> Result<String, ArgError> {
    match args.iter().position(|a| a == flag) {
        Some(i) if i + 1 < args.len() => {
            let v = args.remove(i + 1);
            args.remove(i);
            Ok(v)
        }
        Some(_) => Err(ArgError(format!("{flag} needs a value"))),
        None => Err(ArgError(format!("missing required {flag}"))),
    }
}

fn take_opt_flag_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, ArgError> {
    match args.iter().position(|a| a == flag) {
        Some(i) if i + 1 < args.len() => {
            let v = args.remove(i + 1);
            args.remove(i);
            Ok(Some(v))
        }
        Some(_) => Err(ArgError(format!("{flag} needs a value"))),
        None => Ok(None),
    }
}

fn take_bool_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

pub(crate) fn ensure_consumed(args: &[String]) -> Result<(), ArgError> {
    if let Some(extra) = args.first() {
        return Err(ArgError(format!("unrecognized argument {extra:?}")));
    }
    Ok(())
}

/// Parses a full command line (without the program name).
///
/// # Errors
///
/// Returns [`ArgError`] with a user-facing message for anything malformed.
pub fn parse(mut args: Vec<String>) -> Result<Command, ArgError> {
    if args.is_empty() {
        return Ok(Command::Help);
    }
    let cmd = args.remove(0);
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "run" => {
            let config = parse_machine_flags(&mut args)?;
            let app: App = take_flag_value(&mut args, "--app")?
                .parse()
                .map_err(ArgError)?;
            let chart = if let Some(i) = args.iter().position(|a| a == "--chart") {
                args.remove(i);
                true
            } else {
                false
            };
            ensure_consumed(&args)?;
            Ok(Command::Run {
                app,
                config: Box::new(config),
                chart,
            })
        }
        "figure" => {
            if args.is_empty() {
                return Err(ArgError("figure needs a number (2-6)".into()));
            }
            let number: u8 = args
                .remove(0)
                .parse()
                .map_err(|_| ArgError("figure needs a number (2-6)".into()))?;
            if !(2..=6).contains(&number) {
                return Err(ArgError("figure number must be 2-6".into()));
            }
            let config = parse_machine_flags(&mut args)?;
            let csv = if let Some(i) = args.iter().position(|a| a == "--csv") {
                args.remove(i);
                true
            } else {
                false
            };
            ensure_consumed(&args)?;
            Ok(Command::Figure {
                number,
                config: Box::new(config),
                csv,
            })
        }
        "table" => {
            if args.is_empty() {
                return Err(ArgError("table needs a number (1 or 2)".into()));
            }
            let number: u8 = args
                .remove(0)
                .parse()
                .map_err(|_| ArgError("table needs a number (1 or 2)".into()))?;
            if !(1..=2).contains(&number) {
                return Err(ArgError("table number must be 1 or 2".into()));
            }
            let config = parse_machine_flags(&mut args)?;
            ensure_consumed(&args)?;
            Ok(Command::Table {
                number,
                config: Box::new(config),
            })
        }
        "summary" => {
            let config = parse_machine_flags(&mut args)?;
            ensure_consumed(&args)?;
            Ok(Command::Summary {
                config: Box::new(config),
            })
        }
        "trace" => {
            if args.is_empty() {
                return Err(ArgError("trace needs `record` or `replay`".into()));
            }
            let sub = args.remove(0);
            let config = parse_machine_flags(&mut args)?;
            match sub.as_str() {
                "record" => {
                    let app: App = take_flag_value(&mut args, "--app")?
                        .parse()
                        .map_err(ArgError)?;
                    let out = take_flag_value(&mut args, "--out")?;
                    ensure_consumed(&args)?;
                    Ok(Command::TraceRecord {
                        app,
                        out,
                        config: Box::new(config),
                    })
                }
                "replay" => {
                    let input = take_flag_value(&mut args, "--in")?;
                    ensure_consumed(&args)?;
                    Ok(Command::TraceReplay {
                        input,
                        config: Box::new(config),
                    })
                }
                other => Err(ArgError(format!(
                    "unknown trace subcommand {other:?} (expected record or replay)"
                ))),
            }
        }
        "analyze" => {
            // Certification defaults differ from the measurement
            // commands: release consistency (the strongest test of the
            // labeling — RC reorders the most) and reduced data sets,
            // unless the user says otherwise.
            let user_consistency = args.iter().any(|a| a == "--consistency");
            let paper_scale = if let Some(i) = args.iter().position(|a| a == "--paper-scale") {
                args.remove(i);
                true
            } else {
                false
            };
            let mut config = parse_machine_flags(&mut args)?;
            if !user_consistency {
                config = config.with_rc();
            }
            if !paper_scale {
                config.scale = AppScale::Test;
            }
            let mut apps = Vec::new();
            while let Some(i) = args.iter().position(|a| a == "--app") {
                if i + 1 >= args.len() {
                    return Err(ArgError("--app needs a value".into()));
                }
                let v = args.remove(i + 1);
                args.remove(i);
                apps.push(v.parse().map_err(ArgError)?);
            }
            let input = match args.iter().position(|a| a == "--in") {
                Some(i) if i + 1 < args.len() => {
                    let v = args.remove(i + 1);
                    args.remove(i);
                    Some(v)
                }
                Some(_) => return Err(ArgError("--in needs a value".into())),
                None => None,
            };
            let passes = match args.iter().position(|a| a == "--passes") {
                Some(i) if i + 1 < args.len() => {
                    let v = args.remove(i + 1);
                    args.remove(i);
                    parse_passes(&v).map_err(ArgError)?
                }
                Some(_) => return Err(ArgError("--passes needs a value".into())),
                None => PassKind::ALL.to_vec(),
            };
            if input.is_some() && !apps.is_empty() {
                return Err(ArgError(
                    "--in and --app are mutually exclusive (a trace fixes the subject)".into(),
                ));
            }
            ensure_consumed(&args)?;
            Ok(Command::Analyze {
                apps,
                input,
                passes,
                config: Box::new(config),
            })
        }
        "lint" => {
            // Same certification defaults as `analyze`: release
            // consistency and reduced data sets unless overridden. The
            // consistency model only picks the latency table behind
            // the advisory cost estimates — the verdicts are static.
            let user_consistency = args.iter().any(|a| a == "--consistency");
            let paper_scale = if let Some(i) = args.iter().position(|a| a == "--paper-scale") {
                args.remove(i);
                true
            } else {
                false
            };
            let mut config = parse_machine_flags(&mut args)?;
            if !user_consistency {
                config = config.with_rc();
            }
            if !paper_scale {
                config.scale = AppScale::Test;
            }
            let mut apps = Vec::new();
            while let Some(i) = args.iter().position(|a| a == "--app") {
                if i + 1 >= args.len() {
                    return Err(ArgError("--app needs a value".into()));
                }
                let v = args.remove(i + 1);
                args.remove(i);
                apps.push(v.parse().map_err(ArgError)?);
            }
            let all = take_bool_flag(&mut args, "--all");
            let input = take_opt_flag_value(&mut args, "--in")?;
            let json = take_bool_flag(&mut args, "--json");
            let strict = take_bool_flag(&mut args, "--strict");
            if input.is_some() && (!apps.is_empty() || all) {
                return Err(ArgError(
                    "--in and --app/--all are mutually exclusive (a trace fixes the subject)"
                        .into(),
                ));
            }
            ensure_consumed(&args)?;
            Ok(Command::Lint {
                apps,
                all,
                input,
                json,
                strict,
                config: Box::new(config),
            })
        }
        "sweep" => {
            if args.is_empty() {
                return Err(ArgError("sweep needs a figure number (2-6)".into()));
            }
            let number: u8 = args
                .remove(0)
                .parse()
                .map_err(|_| ArgError("sweep needs a figure number (2-6)".into()))?;
            if !(2..=6).contains(&number) {
                return Err(ArgError("sweep figure number must be 2-6".into()));
            }
            let config = parse_machine_flags(&mut args)?;
            let journal = take_opt_flag_value(&mut args, "--journal")?
                .unwrap_or_else(|| format!("sweep-figure{number}.journal"));
            let out = take_opt_flag_value(&mut args, "--out")?
                .unwrap_or_else(|| format!("sweep-figure{number}.json"));
            let resume = take_bool_flag(&mut args, "--resume");
            let isolate = take_bool_flag(&mut args, "--isolate");
            let timeout_secs = match take_opt_flag_value(&mut args, "--timeout-secs")? {
                Some(v) => {
                    let n: u64 = v
                        .parse()
                        .map_err(|_| ArgError(format!("bad timeout {v:?}")))?;
                    if n == 0 {
                        return Err(ArgError("--timeout-secs must be positive".into()));
                    }
                    n
                }
                None => 600,
            };
            let retries = match take_opt_flag_value(&mut args, "--retries")? {
                Some(v) => v
                    .parse()
                    .map_err(|_| ArgError(format!("bad retry count {v:?}")))?,
                None => 2,
            };
            let bundle_dir = take_opt_flag_value(&mut args, "--bundle-dir")?;
            ensure_consumed(&args)?;
            Ok(Command::Sweep {
                number,
                config: Box::new(config),
                journal,
                out,
                resume,
                isolate,
                timeout_secs,
                retries,
                bundle_dir,
            })
        }
        "cell" => {
            let config = parse_machine_flags(&mut args)?;
            let app: App = take_flag_value(&mut args, "--app")?
                .parse()
                .map_err(ArgError)?;
            ensure_consumed(&args)?;
            Ok(Command::Cell {
                app,
                config: Box::new(config),
            })
        }
        "repro" => {
            if args.is_empty() {
                return Err(ArgError("repro needs a bundle path".into()));
            }
            let bundle = args.remove(0);
            ensure_consumed(&args)?;
            Ok(Command::Repro { bundle })
        }
        "chaos" => {
            let config = parse_machine_flags(&mut args)?;
            if config.faults.is_some() {
                return Err(ArgError(
                    "chaos draws its own fault schedules; drop --faults".into(),
                ));
            }
            let app: App = match take_opt_flag_value(&mut args, "--app")? {
                Some(v) => v.parse().map_err(ArgError)?,
                None => App::Lu,
            };
            let serve = take_bool_flag(&mut args, "--serve");
            let trials = match take_opt_flag_value(&mut args, "--trials")? {
                Some(v) => {
                    let n: u32 = v
                        .parse()
                        .map_err(|_| ArgError(format!("bad trial count {v:?}")))?;
                    if n == 0 {
                        return Err(ArgError("--trials must be positive".into()));
                    }
                    n
                }
                // Service campaigns boot a daemon per trial — default to
                // fewer, heavier trials than the in-process fuzzer.
                None => {
                    if serve {
                        8
                    } else {
                        25
                    }
                }
            };
            let seed = match take_opt_flag_value(&mut args, "--seed")? {
                Some(v) => v.parse().map_err(|_| ArgError(format!("bad seed {v:?}")))?,
                None => 1,
            };
            let determinism = !take_bool_flag(&mut args, "--no-determinism");
            let bundle_dir =
                take_opt_flag_value(&mut args, "--bundle-dir")?.unwrap_or_else(|| ".".into());
            let data_dir = take_opt_flag_value(&mut args, "--data-dir")?;
            let calibration_budget_ms =
                match take_opt_flag_value(&mut args, "--calibration-budget-ms")? {
                    Some(v) => v
                        .parse()
                        .map_err(|_| ArgError(format!("bad calibration budget {v:?}")))?,
                    None => 0,
                };
            if !serve && (data_dir.is_some() || calibration_budget_ms != 0) {
                return Err(ArgError(
                    "--data-dir and --calibration-budget-ms need --serve".into(),
                ));
            }
            ensure_consumed(&args)?;
            Ok(Command::Chaos {
                app,
                config: Box::new(config),
                trials,
                seed,
                determinism,
                bundle_dir,
                serve,
                data_dir,
                calibration_budget_ms,
            })
        }
        "verify-model" => {
            let all = if let Some(i) = args.iter().position(|a| a == "--all") {
                args.remove(i);
                true
            } else {
                false
            };
            let models = match args.iter().position(|a| a == "--models") {
                Some(i) if i + 1 < args.len() => {
                    if all {
                        return Err(ArgError("--all and --models are mutually exclusive".into()));
                    }
                    let v = args.remove(i + 1);
                    args.remove(i);
                    v.split(',')
                        .map(parse_consistency)
                        .collect::<Result<Vec<_>, _>>()?
                }
                Some(_) => return Err(ArgError("--models needs a value".into())),
                // The paper's endpoints by default; --all adds PC and WC.
                None if all => dashlat_verify::ALL_MODELS.to_vec(),
                None => vec![Consistency::Sc, Consistency::Rc],
            };
            let tests = match args.iter().position(|a| a == "--tests") {
                Some(i) if i + 1 < args.len() => {
                    let v = args.remove(i + 1);
                    args.remove(i);
                    let names: Vec<String> = v.split(',').map(str::to_string).collect();
                    for n in &names {
                        if dashlat_verify::litmus::by_name(n).is_none() {
                            return Err(ArgError(format!(
                                "unknown litmus test {n:?} (known: {})",
                                dashlat_verify::corpus()
                                    .iter()
                                    .map(|t| t.name)
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            )));
                        }
                    }
                    names
                }
                Some(_) => return Err(ArgError("--tests needs a value".into())),
                None => Vec::new(),
            };
            let max_runs = match args.iter().position(|a| a == "--max-runs") {
                Some(i) if i + 1 < args.len() => {
                    let v = args.remove(i + 1);
                    args.remove(i);
                    v.parse()
                        .map_err(|_| ArgError(format!("bad run budget {v:?}")))?
                }
                Some(_) => return Err(ArgError("--max-runs needs a value".into())),
                None => 0,
            };
            let filter = take_opt_flag_value(&mut args, "--filter")?;
            if filter.is_some() && !tests.is_empty() {
                return Err(ArgError(
                    "--filter and --tests are mutually exclusive".into(),
                ));
            }
            let mut take_bool = |flag: &str| {
                args.iter().position(|a| a == flag).is_some_and(|i| {
                    args.remove(i);
                    true
                })
            };
            let list = take_bool("--list");
            let stats = take_bool("--stats");
            let strict = take_bool("--strict");
            let deep_closure = take_bool("--deep-closure");
            ensure_consumed(&args)?;
            Ok(Command::VerifyModel {
                models,
                tests,
                filter,
                max_runs,
                list,
                stats,
                strict,
                deep_closure,
            })
        }
        "serve" => {
            let addr =
                take_opt_flag_value(&mut args, "--addr")?.unwrap_or_else(|| "127.0.0.1:0".into());
            let data_dir = take_opt_flag_value(&mut args, "--data-dir")?
                .unwrap_or_else(|| "dashlat-serve-data".into());
            let workers = match take_opt_flag_value(&mut args, "--workers")? {
                Some(v) => {
                    let n: usize = v
                        .parse()
                        .map_err(|_| ArgError(format!("bad worker count {v:?}")))?;
                    if n == 0 {
                        return Err(ArgError("--workers must be at least 1".into()));
                    }
                    n
                }
                None => 2,
            };
            let queue_depth = match take_opt_flag_value(&mut args, "--queue-depth")? {
                Some(v) => {
                    let n: usize = v
                        .parse()
                        .map_err(|_| ArgError(format!("bad queue depth {v:?}")))?;
                    if n == 0 {
                        return Err(ArgError("--queue-depth must be at least 1".into()));
                    }
                    n
                }
                None => 8,
            };
            let job_timeout_secs = match take_opt_flag_value(&mut args, "--job-timeout-secs")? {
                Some(v) => v
                    .parse()
                    .map_err(|_| ArgError(format!("bad job timeout {v:?}")))?,
                None => 3600,
            };
            let isolate = take_bool_flag(&mut args, "--isolate");
            let cell_timeout_secs = match take_opt_flag_value(&mut args, "--cell-timeout-secs")? {
                Some(v) => {
                    let n: u64 = v
                        .parse()
                        .map_err(|_| ArgError(format!("bad cell timeout {v:?}")))?;
                    if n == 0 {
                        return Err(ArgError("--cell-timeout-secs must be at least 1".into()));
                    }
                    n
                }
                None => 300,
            };
            let crash_loop_threshold =
                match take_opt_flag_value(&mut args, "--crash-loop-threshold")? {
                    Some(v) => {
                        let n: u32 = v
                            .parse()
                            .map_err(|_| ArgError(format!("bad crash-loop threshold {v:?}")))?;
                        if n == 0 {
                            return Err(ArgError(
                                "--crash-loop-threshold must be at least 1".into(),
                            ));
                        }
                        n
                    }
                    None => 8,
                };
            let max_connections = match take_opt_flag_value(&mut args, "--max-connections")? {
                Some(v) => {
                    let n: usize = v
                        .parse()
                        .map_err(|_| ArgError(format!("bad connection cap {v:?}")))?;
                    if n == 0 {
                        return Err(ArgError("--max-connections must be at least 1".into()));
                    }
                    n
                }
                None => 64,
            };
            let conn_deadline_secs = match take_opt_flag_value(&mut args, "--conn-deadline-secs")? {
                Some(v) => v
                    .parse()
                    .map_err(|_| ArgError(format!("bad connection deadline {v:?}")))?,
                None => 10,
            };
            ensure_consumed(&args)?;
            Ok(Command::Serve {
                addr,
                data_dir,
                workers,
                queue_depth,
                job_timeout_secs,
                isolate,
                cell_timeout_secs,
                crash_loop_threshold,
                max_connections,
                conn_deadline_secs,
            })
        }
        "submit" => {
            let addr = take_opt_flag_value(&mut args, "--addr")?;
            let data_dir = take_opt_flag_value(&mut args, "--data-dir")?
                .unwrap_or_else(|| "dashlat-serve-data".into());
            let wait = take_bool_flag(&mut args, "--wait");
            let sweep_jobs = match take_opt_flag_value(&mut args, "--sweep-jobs")? {
                Some(v) => {
                    let n: usize = v
                        .parse()
                        .map_err(|_| ArgError(format!("bad sweep job count {v:?}")))?;
                    if n == 0 {
                        return Err(ArgError("--sweep-jobs must be at least 1".into()));
                    }
                    Some(n)
                }
                None => None,
            };
            let max_retries = match take_opt_flag_value(&mut args, "--retries")? {
                Some(v) => v
                    .parse()
                    .map_err(|_| ArgError(format!("bad retry count {v:?}")))?,
                None => 2,
            };
            let timeout_secs = match take_opt_flag_value(&mut args, "--timeout-secs")? {
                Some(v) => Some(
                    v.parse()
                        .map_err(|_| ArgError(format!("bad timeout {v:?}")))?,
                ),
                None => None,
            };
            if args.is_empty() {
                return Err(ArgError(
                    "submit needs a job kind: sweep, chaos or verify".into(),
                ));
            }
            let kind = match args.remove(0).as_str() {
                "sweep" => {
                    if args.is_empty() {
                        return Err(ArgError("submit sweep needs a figure number (2-6)".into()));
                    }
                    let figure: u8 = args
                        .remove(0)
                        .parse()
                        .map_err(|_| ArgError("submit sweep needs a figure number (2-6)".into()))?;
                    if !(2..=6).contains(&figure) {
                        return Err(ArgError("sweep figure number must be 2-6".into()));
                    }
                    dashlat_serve::JobKind::Sweep { figure }
                }
                "chaos" => {
                    let app: App = match take_opt_flag_value(&mut args, "--app")? {
                        Some(v) => v.parse().map_err(ArgError)?,
                        None => App::Lu,
                    };
                    let trials = match take_opt_flag_value(&mut args, "--trials")? {
                        Some(v) => {
                            let n: u32 = v
                                .parse()
                                .map_err(|_| ArgError(format!("bad trial count {v:?}")))?;
                            if n == 0 {
                                return Err(ArgError("--trials must be positive".into()));
                            }
                            n
                        }
                        None => 25,
                    };
                    let seed = match take_opt_flag_value(&mut args, "--seed")? {
                        Some(v) => v.parse().map_err(|_| ArgError(format!("bad seed {v:?}")))?,
                        None => 1,
                    };
                    dashlat_serve::JobKind::Chaos { app, trials, seed }
                }
                "verify" | "verify-model" => {
                    let models = match take_opt_flag_value(&mut args, "--models")? {
                        Some(v) => v
                            .split(',')
                            .map(parse_consistency)
                            .collect::<Result<Vec<_>, _>>()?,
                        None => Vec::new(),
                    };
                    let tests = match take_opt_flag_value(&mut args, "--tests")? {
                        Some(v) => v.split(',').map(str::to_string).collect(),
                        None => Vec::new(),
                    };
                    let max_runs = match take_opt_flag_value(&mut args, "--max-runs")? {
                        Some(v) => v
                            .parse()
                            .map_err(|_| ArgError(format!("bad run budget {v:?}")))?,
                        None => 0,
                    };
                    dashlat_serve::JobKind::Verify {
                        models,
                        tests,
                        max_runs,
                    }
                }
                other => {
                    return Err(ArgError(format!(
                        "unknown job kind {other:?} (expected sweep, chaos or verify)"
                    )))
                }
            };
            // Everything left is machine flags; validate them here so a
            // typo is a parse error at the prompt, not a 400 later — the
            // *raw* tokens travel in the spec, exactly as the server
            // re-parses them.
            let mut probe = args.clone();
            parse_machine_flags(&mut probe)?;
            ensure_consumed(&probe)?;
            let machine = std::mem::take(&mut args);
            Ok(Command::Submit {
                addr,
                data_dir,
                spec: Box::new(dashlat_serve::JobSpec {
                    kind,
                    machine,
                    sweep_jobs,
                    max_retries,
                    timeout_secs,
                }),
                wait,
            })
        }
        "status" => {
            let addr = take_opt_flag_value(&mut args, "--addr")?;
            let data_dir = take_opt_flag_value(&mut args, "--data-dir")?
                .unwrap_or_else(|| "dashlat-serve-data".into());
            let id = if args.is_empty() {
                None
            } else {
                let v = args.remove(0);
                Some(
                    v.parse::<u64>()
                        .map_err(|_| ArgError(format!("bad job id {v:?}")))?,
                )
            };
            ensure_consumed(&args)?;
            Ok(Command::Status { addr, data_dir, id })
        }
        other => Err(ArgError(format!(
            "unknown command {other:?}; try `dashlat help`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dashlat_sim::fault::FaultPlan;
    use dashlat_sim::Cycle;

    fn v(items: &[&str]) -> Vec<String> {
        items.iter().map(std::string::ToString::to_string).collect()
    }

    #[test]
    fn empty_is_help() {
        assert_eq!(parse(vec![]), Ok(Command::Help));
        assert_eq!(parse(v(&["help"])), Ok(Command::Help));
        assert_eq!(parse(v(&["--help"])), Ok(Command::Help));
    }

    #[test]
    fn run_with_full_machine_flags() {
        let cmd = parse(v(&[
            "run",
            "--app",
            "mp3d",
            "--consistency",
            "rc",
            "--contexts",
            "4",
            "--switch",
            "16",
            "--prefetch",
            "--processors",
            "8",
            "--test-scale",
            "--chart",
        ]))
        .expect("parses");
        match cmd {
            Command::Run { app, config, chart } => {
                assert_eq!(app, App::Mp3d);
                assert!(chart);
                assert_eq!(config.processors, 8);
                assert_eq!(config.consistency, Consistency::Rc);
                assert_eq!(config.contexts, 4);
                assert_eq!(config.switch_overhead, Cycle(16));
                assert!(config.prefetching);
                assert_eq!(config.scale, AppScale::Test);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn run_requires_app() {
        let err = parse(v(&["run"])).unwrap_err();
        assert!(err.0.contains("--app"));
    }

    #[test]
    fn jobs_flag_validated_and_pins_default() {
        assert!(parse(v(&["figure", "3", "--jobs", "0"])).is_err());
        assert!(parse(v(&["figure", "3", "--jobs", "many"])).is_err());
        assert!(parse(v(&["figure", "3", "--jobs"])).is_err());
        // A valid count is consumed (not left as an unrecognized token)
        // and pins the process-wide sweep default.
        assert!(parse(v(&["figure", "3", "--jobs", "3"])).is_ok());
        assert_eq!(dashlat::effective_jobs(None), 3);
        dashlat::set_default_jobs(None);
    }

    #[test]
    fn figure_number_validated() {
        assert!(parse(v(&["figure", "3"])).is_ok());
        assert!(parse(v(&["figure", "7"])).is_err());
        assert!(parse(v(&["figure"])).is_err());
        assert!(parse(v(&["figure", "three"])).is_err());
    }

    #[test]
    fn table_number_validated() {
        assert!(parse(v(&["table", "1"])).is_ok());
        assert!(parse(v(&["table", "2"])).is_ok());
        assert!(parse(v(&["table", "3"])).is_err());
    }

    #[test]
    fn trace_subcommands() {
        let cmd = parse(v(&[
            "trace",
            "record",
            "--app",
            "lu",
            "--out",
            "/tmp/t.trace",
        ]))
        .expect("parses");
        assert!(matches!(cmd, Command::TraceRecord { app: App::Lu, .. }));
        let cmd = parse(v(&[
            "trace",
            "replay",
            "--in",
            "/tmp/t.trace",
            "--consistency",
            "rc",
        ]))
        .expect("parses");
        match cmd {
            Command::TraceReplay { input, config } => {
                assert_eq!(input, "/tmp/t.trace");
                assert_eq!(config.consistency, Consistency::Rc);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(v(&["trace", "compress"])).is_err());
        assert!(parse(v(&["trace"])).is_err());
    }

    #[test]
    fn analyze_defaults() {
        let cmd = parse(v(&["analyze"])).expect("parses");
        match cmd {
            Command::Analyze {
                apps,
                input,
                passes,
                config,
            } => {
                assert!(apps.is_empty());
                assert!(input.is_none());
                assert_eq!(passes, PassKind::ALL.to_vec());
                assert_eq!(config.processors, 16);
                assert_eq!(config.consistency, Consistency::Rc);
                assert_eq!(config.scale, AppScale::Test);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn analyze_overrides() {
        let cmd = parse(v(&[
            "analyze",
            "--app",
            "mp3d",
            "--app",
            "lu",
            "--passes",
            "hb,lockset",
            "--consistency",
            "sc",
            "--paper-scale",
            "--prefetch",
        ]))
        .expect("parses");
        match cmd {
            Command::Analyze {
                apps,
                passes,
                config,
                ..
            } => {
                assert_eq!(apps, vec![App::Mp3d, App::Lu]);
                assert_eq!(passes, vec![PassKind::HappensBefore, PassKind::Lockset]);
                assert_eq!(config.consistency, Consistency::Sc);
                assert_eq!(config.scale, AppScale::Paper);
                assert!(config.prefetching);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn analyze_trace_input() {
        let cmd = parse(v(&["analyze", "--in", "/tmp/t.trace"])).expect("parses");
        assert!(matches!(
            cmd,
            Command::Analyze { ref input, .. } if input.as_deref() == Some("/tmp/t.trace")
        ));
        assert!(parse(v(&["analyze", "--in", "/tmp/t.trace", "--app", "lu"])).is_err());
        assert!(parse(v(&["analyze", "--passes", "bogus"])).is_err());
    }

    #[test]
    fn lint_defaults() {
        let cmd = parse(v(&["lint"])).expect("parses");
        match cmd {
            Command::Lint {
                apps,
                all,
                input,
                json,
                strict,
                config,
            } => {
                assert!(apps.is_empty());
                assert!(!all);
                assert!(input.is_none());
                assert!(!json);
                assert!(!strict);
                assert_eq!(config.consistency, Consistency::Rc);
                assert_eq!(config.scale, AppScale::Test);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lint_overrides_and_exclusions() {
        let cmd = parse(v(&[
            "lint",
            "--app",
            "lu",
            "--all",
            "--json",
            "--strict",
            "--consistency",
            "sc",
            "--prefetch",
        ]))
        .expect("parses");
        match cmd {
            Command::Lint {
                apps,
                all,
                json,
                strict,
                config,
                ..
            } => {
                assert_eq!(apps, vec![App::Lu]);
                assert!(all && json && strict);
                assert_eq!(config.consistency, Consistency::Sc);
                assert!(config.prefetching);
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse(v(&["lint", "--in", "/tmp/t.trace"])).expect("parses");
        assert!(matches!(
            cmd,
            Command::Lint { ref input, .. } if input.as_deref() == Some("/tmp/t.trace")
        ));
        assert!(parse(v(&["lint", "--in", "/tmp/t.trace", "--app", "lu"])).is_err());
        assert!(parse(v(&["lint", "--in", "/tmp/t.trace", "--all"])).is_err());
    }

    #[test]
    fn analyze_machine_flag() {
        let cmd = parse(v(&["run", "--app", "lu", "--analyze", "all"])).expect("parses");
        match cmd {
            Command::Run { config, .. } => {
                assert_eq!(config.analyze, PassKind::ALL.to_vec());
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse(v(&["figure", "2", "--analyze", "hb", "--test-scale"])).expect("parses");
        match cmd {
            Command::Figure { config, .. } => {
                assert_eq!(config.analyze, vec![PassKind::HappensBefore]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(v(&["run", "--app", "lu", "--analyze", "bogus"])).is_err());
    }

    #[test]
    fn verify_model_defaults_and_flags() {
        let cmd = parse(v(&["verify-model"])).expect("parses");
        assert_eq!(
            cmd,
            Command::VerifyModel {
                models: vec![Consistency::Sc, Consistency::Rc],
                tests: vec![],
                filter: None,
                max_runs: 0,
                list: false,
                stats: false,
                strict: false,
                deep_closure: false,
            }
        );
        let cmd = parse(v(&["verify-model", "--all"])).expect("parses");
        match cmd {
            Command::VerifyModel { models, .. } => {
                assert_eq!(models, dashlat_verify::ALL_MODELS.to_vec());
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse(v(&[
            "verify-model",
            "--models",
            "sc,wc",
            "--tests",
            "sb,mp",
            "--max-runs",
            "500",
        ]))
        .expect("parses");
        assert_eq!(
            cmd,
            Command::VerifyModel {
                models: vec![Consistency::Sc, Consistency::Wc],
                tests: vec!["sb".into(), "mp".into()],
                filter: None,
                max_runs: 500,
                list: false,
                stats: false,
                strict: false,
                deep_closure: false,
            }
        );
        assert!(parse(v(&["verify-model", "--all", "--models", "sc"])).is_err());
        assert!(parse(v(&["verify-model", "--tests", "bogus"])).is_err());
        assert!(parse(v(&["verify-model", "--models", "tso"])).is_err());
        assert!(parse(v(&["verify-model", "--max-runs", "many"])).is_err());
        assert!(parse(v(&["verify-model", "--bogus"])).is_err());
    }

    #[test]
    fn verify_model_dpor_flags() {
        let cmd = parse(v(&[
            "verify-model",
            "--filter",
            "rmw_*",
            "--stats",
            "--strict",
            "--deep-closure",
        ]))
        .expect("parses");
        match cmd {
            Command::VerifyModel {
                filter,
                stats,
                strict,
                deep_closure,
                list,
                ..
            } => {
                assert_eq!(filter.as_deref(), Some("rmw_*"));
                assert!(stats && strict && deep_closure && !list);
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse(v(&["verify-model", "--list"])).expect("parses");
        match cmd {
            Command::VerifyModel { list, .. } => assert!(list),
            other => panic!("unexpected {other:?}"),
        }
        // --filter and --tests conflict; unknown globs are fine (they
        // simply select nothing — the suite reports zero cells).
        assert!(parse(v(&["verify-model", "--tests", "sb", "--filter", "s*"])).is_err());
        assert!(parse(v(&["verify-model", "--filter"])).is_err());
    }

    #[test]
    fn bad_values_are_reported() {
        assert!(parse(v(&["run", "--app", "spice"])).is_err());
        assert!(parse(v(&["run", "--app", "lu", "--consistency", "tso"])).is_err());
        assert!(parse(v(&["run", "--app", "lu", "--processors", "0"])).is_err());
        assert!(parse(v(&["run", "--app", "lu", "--processors", "65"])).is_err());
        assert!(parse(v(&["run", "--app", "lu", "--contexts", "0"])).is_err());
        assert!(parse(v(&["run", "--app", "lu", "--dir-pointers", "0"])).is_err());
        assert!(parse(v(&["run", "--app", "lu", "--bogus"])).is_err());
        assert!(parse(v(&["launch"])).is_err());
    }

    #[test]
    fn fault_flags() {
        let cmd = parse(v(&[
            "run",
            "--app",
            "lu",
            "--faults",
            "heavy:42",
            "--check-invariants",
        ]))
        .expect("parses");
        match cmd {
            Command::Run { config, .. } => {
                let plan = config.faults.expect("fault plan set");
                assert_eq!(plan.seed, 42);
                assert!(plan.is_active());
                assert!(config.check_invariants);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(v(&["run", "--app", "lu", "--faults", "bogus"])).is_err());
        assert!(parse(v(&["run", "--app", "lu", "--faults"])).is_err());
    }

    #[test]
    fn sweep_parsing_defaults_and_overrides() {
        let cmd = parse(v(&["sweep", "3", "--test-scale"])).expect("parses");
        match cmd {
            Command::Sweep {
                number,
                journal,
                out,
                resume,
                isolate,
                timeout_secs,
                retries,
                bundle_dir,
                config,
            } => {
                assert_eq!(number, 3);
                assert_eq!(journal, "sweep-figure3.journal");
                assert_eq!(out, "sweep-figure3.json");
                assert!(!resume);
                assert!(!isolate);
                assert_eq!(timeout_secs, 600);
                assert_eq!(retries, 2);
                assert_eq!(bundle_dir, None);
                assert_eq!(config.scale, AppScale::Test);
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse(v(&[
            "sweep",
            "4",
            "--journal",
            "/tmp/j",
            "--out",
            "/tmp/o.json",
            "--resume",
            "--isolate",
            "--timeout-secs",
            "30",
            "--retries",
            "5",
            "--bundle-dir",
            "/tmp/bundles",
        ]))
        .expect("parses");
        match cmd {
            Command::Sweep {
                number,
                journal,
                out,
                resume,
                isolate,
                timeout_secs,
                retries,
                bundle_dir,
                ..
            } => {
                assert_eq!(number, 4);
                assert_eq!(journal, "/tmp/j");
                assert_eq!(out, "/tmp/o.json");
                assert!(resume);
                assert!(isolate);
                assert_eq!(timeout_secs, 30);
                assert_eq!(retries, 5);
                assert_eq!(bundle_dir, Some("/tmp/bundles".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(v(&["sweep"])).is_err());
        assert!(parse(v(&["sweep", "7"])).is_err());
        assert!(parse(v(&["sweep", "3", "--timeout-secs", "0"])).is_err());
        assert!(parse(v(&["sweep", "3", "--retries", "many"])).is_err());
    }

    #[test]
    fn cell_and_repro_parsing() {
        let cmd = parse(v(&["cell", "--app", "mp3d", "--test-scale"])).expect("parses");
        match cmd {
            Command::Cell { app, config } => {
                assert_eq!(app, App::Mp3d);
                assert_eq!(config.scale, AppScale::Test);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(v(&["cell"])).is_err());
        assert_eq!(
            parse(v(&["repro", "/tmp/b.json"])),
            Ok(Command::Repro {
                bundle: "/tmp/b.json".into()
            })
        );
        assert!(parse(v(&["repro"])).is_err());
        assert!(parse(v(&["repro", "/tmp/b.json", "extra"])).is_err());
    }

    #[test]
    fn chaos_parsing_defaults_and_overrides() {
        let cmd = parse(v(&["chaos"])).expect("parses");
        match cmd {
            Command::Chaos {
                app,
                trials,
                seed,
                determinism,
                bundle_dir,
                ..
            } => {
                assert_eq!(app, App::Lu);
                assert_eq!(trials, 25);
                assert_eq!(seed, 1);
                assert!(determinism);
                assert_eq!(bundle_dir, ".");
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse(v(&[
            "chaos",
            "--app",
            "pthor",
            "--trials",
            "3",
            "--seed",
            "99",
            "--no-determinism",
            "--bundle-dir",
            "/tmp/b",
            "--test-scale",
        ]))
        .expect("parses");
        match cmd {
            Command::Chaos {
                app,
                trials,
                seed,
                determinism,
                bundle_dir,
                config,
                serve,
                data_dir,
                calibration_budget_ms,
            } => {
                assert_eq!(app, App::Pthor);
                assert_eq!(trials, 3);
                assert_eq!(seed, 99);
                assert!(!determinism);
                assert_eq!(bundle_dir, "/tmp/b");
                assert_eq!(config.scale, AppScale::Test);
                assert!(!serve);
                assert_eq!(data_dir, None);
                assert_eq!(calibration_budget_ms, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Chaos owns the fault schedule.
        assert!(parse(v(&["chaos", "--faults", "heavy"])).is_err());
        assert!(parse(v(&["chaos", "--trials", "0"])).is_err());
    }

    #[test]
    fn invariant_and_fifo_flags() {
        let cmd = parse(v(&["run", "--app", "lu", "--no-check-invariants"])).expect("parses");
        match cmd {
            Command::Run { config, .. } => assert!(!config.check_invariants),
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse(v(&["run", "--app", "lu", "--enforce-wb-fifo"])).expect("parses");
        match cmd {
            Command::Run { config, .. } => assert!(config.enforce_wb_fifo),
            other => panic!("unexpected {other:?}"),
        }
        #[cfg(not(feature = "verify-mutations"))]
        {
            let err = parse(v(&["run", "--app", "lu", "--mutate-ww"])).unwrap_err();
            assert!(err.0.contains("verify-mutations"), "{}", err.0);
        }
        #[cfg(feature = "verify-mutations")]
        {
            let cmd = parse(v(&["run", "--app", "lu", "--mutate-ww"])).expect("parses");
            match cmd {
                Command::Run { config, .. } => assert!(config.mutate_ww),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn to_cli_args_round_trips_through_the_parser() {
        // Repro bundles store `ExperimentConfig::to_cli_args()` and replay
        // it through `parse_machine_flags`; every knob must survive the
        // text detour exactly.
        let mut no_contention = ExperimentConfig::base_test();
        no_contention.contention = false;
        let variants = vec![
            ExperimentConfig::base(),
            ExperimentConfig::base_test(),
            ExperimentConfig::base_test()
                .with_rc()
                .with_prefetching()
                .with_contexts(4, Cycle(16)),
            ExperimentConfig::base_test()
                .without_caching()
                .with_mesh_network()
                .with_limited_directory(3),
            ExperimentConfig::base_test()
                .with_full_caches()
                .with_read_lookahead(Cycle(8))
                .with_invariant_checks(true)
                .with_wb_fifo_enforcement(),
            ExperimentConfig::base_test()
                .with_faults(FaultPlan::heavy(u64::MAX))
                .with_invariant_checks(false),
            ExperimentConfig::base_test()
                .with_analysis(vec![PassKind::HappensBefore, PassKind::Lockset]),
            no_contention,
        ];
        for cfg in variants {
            let mut argv = cfg.to_cli_args();
            let parsed = parse_machine_flags(&mut argv).expect("round-trip parse");
            assert!(argv.is_empty(), "unconsumed args: {argv:?}");
            assert_eq!(parsed, cfg);
        }
    }

    #[test]
    fn usage_documents_every_exit_code_and_subcommand() {
        for needle in [
            "8 chaos found a failing schedule",
            "9 repro bundle did not reproduce",
            "10 service error",
            "11 static lint found critical findings",
            "7, then 4, 2, 3, 6, 8, 9, 11, 5, 10, and 1 last",
            "dashlat sweep",
            "dashlat lint",
            "dashlat repro",
            "dashlat chaos",
            "dashlat serve",
            "dashlat submit",
            "dashlat status",
            "--enforce-wb-fifo",
            "--no-check-invariants",
        ] {
            assert!(USAGE.contains(needle), "USAGE missing {needle:?}");
        }
    }

    #[test]
    fn serve_parsing_defaults_and_overrides() {
        let cmd = parse(v(&["serve"])).expect("parses");
        assert_eq!(
            cmd,
            Command::Serve {
                addr: "127.0.0.1:0".into(),
                data_dir: "dashlat-serve-data".into(),
                workers: 2,
                queue_depth: 8,
                job_timeout_secs: 3600,
                isolate: false,
                cell_timeout_secs: 300,
                crash_loop_threshold: 8,
                max_connections: 64,
                conn_deadline_secs: 10,
            }
        );
        let cmd = parse(v(&[
            "serve",
            "--addr",
            "127.0.0.1:8123",
            "--data-dir",
            "/tmp/d",
            "--workers",
            "4",
            "--queue-depth",
            "2",
            "--job-timeout-secs",
            "0",
        ]))
        .expect("parses");
        match cmd {
            Command::Serve {
                addr,
                data_dir,
                workers,
                queue_depth,
                job_timeout_secs,
                ..
            } => {
                assert_eq!(addr, "127.0.0.1:8123");
                assert_eq!(data_dir, "/tmp/d");
                assert_eq!(workers, 4);
                assert_eq!(queue_depth, 2);
                assert_eq!(job_timeout_secs, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(v(&["serve", "--workers", "0"])).is_err());
        assert!(parse(v(&["serve", "--queue-depth", "0"])).is_err());
        assert!(parse(v(&["serve", "--bogus"])).is_err());
        assert!(parse(v(&["serve", "--cell-timeout-secs", "0"])).is_err());
        assert!(parse(v(&["serve", "--max-connections", "0"])).is_err());
        assert!(parse(v(&["serve", "--crash-loop-threshold", "0"])).is_err());
    }

    #[test]
    fn serve_hardening_flags_parse() {
        let cmd = parse(v(&[
            "serve",
            "--isolate",
            "--cell-timeout-secs",
            "30",
            "--crash-loop-threshold",
            "3",
            "--max-connections",
            "16",
            "--conn-deadline-secs",
            "3",
        ]))
        .expect("parses");
        match cmd {
            Command::Serve {
                isolate,
                cell_timeout_secs,
                crash_loop_threshold,
                max_connections,
                conn_deadline_secs,
                ..
            } => {
                assert!(isolate);
                assert_eq!(cell_timeout_secs, 30);
                assert_eq!(crash_loop_threshold, 3);
                assert_eq!(max_connections, 16);
                assert_eq!(conn_deadline_secs, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn chaos_serve_parsing() {
        let cmd = parse(v(&["chaos", "--serve"])).expect("parses");
        match cmd {
            Command::Chaos {
                serve,
                trials,
                data_dir,
                calibration_budget_ms,
                ..
            } => {
                assert!(serve);
                // Service campaigns default to fewer, heavier trials.
                assert_eq!(trials, 8);
                assert_eq!(data_dir, None);
                assert_eq!(calibration_budget_ms, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse(v(&[
            "chaos",
            "--serve",
            "--trials",
            "2",
            "--seed",
            "42",
            "--data-dir",
            "/tmp/torture",
            "--calibration-budget-ms",
            "1500",
        ]))
        .expect("parses");
        match cmd {
            Command::Chaos {
                serve,
                trials,
                seed,
                data_dir,
                calibration_budget_ms,
                ..
            } => {
                assert!(serve);
                assert_eq!(trials, 2);
                assert_eq!(seed, 42);
                assert_eq!(data_dir, Some("/tmp/torture".into()));
                assert_eq!(calibration_budget_ms, 1500);
            }
            other => panic!("unexpected {other:?}"),
        }
        // The torture-only flags demand --serve.
        assert!(parse(v(&["chaos", "--data-dir", "/tmp/x"])).is_err());
        assert!(parse(v(&["chaos", "--calibration-budget-ms", "5"])).is_err());
    }

    #[test]
    fn submit_builds_specs_and_validates_machine_flags() {
        let cmd = parse(v(&[
            "submit",
            "--wait",
            "--sweep-jobs",
            "1",
            "sweep",
            "3",
            "--test-scale",
            "--processors",
            "4",
        ]))
        .expect("parses");
        match cmd {
            Command::Submit {
                addr,
                data_dir,
                spec,
                wait,
            } => {
                assert_eq!(addr, None);
                assert_eq!(data_dir, "dashlat-serve-data");
                assert!(wait);
                assert_eq!(spec.kind, dashlat_serve::JobKind::Sweep { figure: 3 });
                assert_eq!(spec.sweep_jobs, Some(1));
                // Raw machine tokens travel verbatim and parse on the
                // server side too.
                assert_eq!(spec.machine, v(&["--test-scale", "--processors", "4"]));
                assert!(spec.machine_config().is_ok());
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse(v(&[
            "submit",
            "--addr",
            "1.2.3.4:80",
            "chaos",
            "--app",
            "pthor",
            "--trials",
            "3",
            "--seed",
            "9",
        ]))
        .expect("parses");
        match cmd {
            Command::Submit { addr, spec, .. } => {
                assert_eq!(addr.as_deref(), Some("1.2.3.4:80"));
                assert_eq!(
                    spec.kind,
                    dashlat_serve::JobKind::Chaos {
                        app: App::Pthor,
                        trials: 3,
                        seed: 9,
                    }
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse(v(&[
            "submit", "verify", "--models", "sc,rc", "--tests", "sb",
        ]))
        .expect("parses");
        match cmd {
            Command::Submit { spec, .. } => {
                assert_eq!(
                    spec.kind,
                    dashlat_serve::JobKind::Verify {
                        models: vec![Consistency::Sc, Consistency::Rc],
                        tests: vec!["sb".into()],
                        max_runs: 0,
                    }
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        // Machine flags are validated at the prompt, not an hour later.
        assert!(parse(v(&["submit", "sweep", "3", "--bogus"])).is_err());
        assert!(parse(v(&["submit", "sweep", "7"])).is_err());
        assert!(parse(v(&["submit", "dance"])).is_err());
        assert!(parse(v(&["submit"])).is_err());
    }

    #[test]
    fn status_parsing() {
        assert_eq!(
            parse(v(&["status"])),
            Ok(Command::Status {
                addr: None,
                data_dir: "dashlat-serve-data".into(),
                id: None,
            })
        );
        assert_eq!(
            parse(v(&["status", "7", "--data-dir", "/tmp/d"])),
            Ok(Command::Status {
                addr: None,
                data_dir: "/tmp/d".into(),
                id: Some(7),
            })
        );
        assert!(parse(v(&["status", "seven"])).is_err());
    }

    #[test]
    fn machine_flag_variants() {
        let cmd = parse(v(&[
            "run",
            "--app",
            "pthor",
            "--no-cache",
            "--mesh",
            "--dir-pointers",
            "2",
            "--full-caches",
            "--no-contention",
        ]))
        .expect("parses");
        match cmd {
            Command::Run { config, .. } => {
                assert!(!config.caching);
                assert!(!config.contention);
                assert!(config.full_caches);
                assert_eq!(config.network, dashlat_mem::NetworkModel::Mesh2D);
                assert_eq!(
                    config.directory,
                    dashlat_mem::directory::DirectoryKind::LimitedPtr { pointers: 2 }
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
