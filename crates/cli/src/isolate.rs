//! Subprocess isolation for supervised sweep cells.
//!
//! `dashlat sweep --isolate` runs every cell as `dashlat cell --app …
//! <machine flags>` in a child process, so a cell that aborts, is killed,
//! or wedges past its wall-clock deadline takes down only itself. The
//! child prints exactly one JSON record on its last stdout line
//! (`{"ok":N}` or `{"err":{…}}`); everything else about the outcome is
//! derived from that line plus the exit status.

use std::io::Read;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use dashlat::sweep::{CellFailure, FailureClass, SweepCell};
use dashlat_sim::json::Value;

/// How often the supervisor polls a running cell.
const POLL: Duration = Duration::from_millis(20);

/// Runs one cell in a child `dashlat cell` process with a wall-clock
/// deadline. Timeouts and signal kills are transient (the machine may
/// just be overloaded — and fault-heavy schedules legitimately run
/// long); a child that exits nonzero *with* a record reports that
/// record's classification; a child that dies without a record is a
/// permanent failure (it crashed before the runner could even classify).
pub fn run_cell_subprocess(cell: &SweepCell, timeout: Duration) -> Result<u64, CellFailure> {
    let exe = std::env::current_exe()
        .map_err(|e| CellFailure::transient(format!("cannot locate the dashlat binary: {e}")))?;
    let mut cmd = Command::new(exe);
    cmd.arg("cell")
        .arg("--app")
        .arg(cell.app.name().to_ascii_lowercase())
        .args(cell.config.to_cli_args())
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    let mut child = cmd
        .spawn()
        .map_err(|e| CellFailure::transient(format!("cannot spawn cell subprocess: {e}")))?;

    let start = Instant::now();
    let status = loop {
        match child.try_wait() {
            Ok(Some(status)) => break status,
            Ok(None) => {
                if start.elapsed() >= timeout {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(CellFailure::transient(format!(
                        "cell exceeded its {}s wall-clock timeout and was killed",
                        timeout.as_secs()
                    )));
                }
                std::thread::sleep(POLL);
            }
            Err(e) => {
                return Err(CellFailure::transient(format!(
                    "waiting for cell subprocess: {e}"
                )))
            }
        }
    };

    // One short record line fits far inside the pipe buffer, so reading
    // after exit cannot deadlock.
    let mut stdout = String::new();
    if let Some(mut s) = child.stdout.take() {
        let _ = s.read_to_string(&mut stdout);
    }
    let record = stdout.lines().rev().find(|l| !l.trim().is_empty());

    if status.success() {
        return record
            .and_then(parse_ok)
            .ok_or_else(|| CellFailure::transient("cell exited 0 without an ok record"));
    }
    if let Some(failure) = record.and_then(parse_err) {
        return Err(failure);
    }
    match status.code() {
        // No exit code means a signal (SIGKILL from the OOM killer, a
        // stray SIGTERM): re-runnable, same policy as a timeout.
        None => Err(CellFailure::transient(format!(
            "cell was killed by a signal ({status})"
        ))),
        Some(code) => Err(CellFailure {
            error: format!("cell exited {code} without a record (crashed before reporting)"),
            code: 1,
            class: FailureClass::Permanent,
        }),
    }
}

fn parse_ok(line: &str) -> Option<u64> {
    Value::parse(line).ok()?.get("ok")?.as_u64()
}

fn parse_err(line: &str) -> Option<CellFailure> {
    let v = Value::parse(line).ok()?;
    let err = v.get("err")?;
    Some(CellFailure {
        error: err.get("error")?.as_str()?.to_owned(),
        code: err.get("code")?.as_u64()? as u8,
        class: err.get("class")?.as_str()?.parse().ok()?,
    })
}

/// Renders the record line `dashlat cell` prints — kept next to the
/// parsers above so the two sides of the pipe stay in sync.
pub fn render_record(outcome: &Result<u64, CellFailure>) -> String {
    match outcome {
        Ok(elapsed) => format!("{{\"ok\":{elapsed}}}"),
        Err(f) => format!(
            "{{\"err\":{{\"error\":{},\"code\":{},\"class\":{}}}}}",
            dashlat_sim::json::quote(&f.error),
            f.code,
            dashlat_sim::json::quote(&f.class.to_string())
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_lines_round_trip() {
        assert_eq!(parse_ok(&render_record(&Ok(42))), Some(42));
        let f = CellFailure {
            error: "invariant \"x\"\nbroken".into(),
            code: 4,
            class: FailureClass::Permanent,
        };
        let rendered = render_record(&Err(f.clone()));
        assert!(!rendered.contains('\n'), "record must be one line");
        assert_eq!(parse_err(&rendered), Some(f));
        assert_eq!(parse_ok("garbage"), None);
        assert_eq!(parse_err("{\"ok\":1}"), None);
    }
}
