#![deny(missing_docs)]
//! `dashlat` — command-line front-end for the dash-latency simulator.
//!
//! ```sh
//! dashlat run --app mp3d --consistency rc --prefetch --chart
//! dashlat figure 3
//! dashlat trace record --app lu --test-scale --out lu.trace
//! dashlat trace replay --in lu.trace --consistency rc
//! ```

mod args;
use dashlat::isolate;

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

use args::{parse, ArgError, Command, USAGE};
use dashlat::apps::App;
use dashlat::cellcache::CellMemo;
use dashlat::chaos::{active_classes, run_chaos, ChaosOptions};
use dashlat::config::ExperimentConfig;
use dashlat::report::{describe_run, AppFigure, Figure};
use dashlat::runner::{run, RunFailure};
use dashlat::sweep::{
    run_cell_in_process, run_cell_in_process_memo, run_supervised, ReproBundle, SweepCell,
    SweepOptions, SweepPlan,
};
use dashlat_cpu::machine::{Machine, RunError};
use dashlat_cpu::ops::Topology;
use dashlat_cpu::trace::{Trace, TraceRecorder};
use dashlat_mem::layout::AddressSpaceBuilder;
use dashlat_mem::system::MemorySystem;
use dashlat_sim::Cycle;

/// A matrix sweep finished with some cells failed; the healthy cells were
/// still rendered.
#[derive(Debug)]
struct PartialMatrix(usize);

impl std::fmt::Display for PartialMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} configuration(s) failed; partial results rendered above",
            self.0
        )
    }
}

impl std::error::Error for PartialMatrix {}

/// Analysis found data races: the subjects are not properly labeled.
#[derive(Debug)]
struct RacesFound(usize);

impl std::fmt::Display for RacesFound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} subject(s) failed race-freedom certification", self.0)
    }
}

impl std::error::Error for RacesFound {}

/// The static lint found critical findings (a statically possible
/// deadlock, barrier divergence, or under-labeled race), or — under
/// `--strict` — an incomplete analysis.
#[derive(Debug)]
struct LintFindings {
    critical: usize,
    incomplete: usize,
}

impl std::fmt::Display for LintFindings {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} subject(s) failed the static lint", self.critical)?;
        if self.incomplete > 0 {
            write!(f, " ({} incomplete under --strict)", self.incomplete)?;
        }
        Ok(())
    }
}

impl std::error::Error for LintFindings {}

/// The memory-model verifier found a violation (or could not establish
/// exhaustiveness, which is treated just as seriously).
#[derive(Debug)]
struct ModelViolation;

impl std::fmt::Display for ModelViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("memory-model verification failed (details above)")
    }
}

impl std::error::Error for ModelViolation {}

/// A pre-ranked failure from a path where several failure classes can
/// co-occur (a figure matrix): carries the exit code of its most severe
/// constituent so `main` does not have to re-derive it.
#[derive(Debug)]
struct WorstFailure {
    code: u8,
    msg: String,
}

impl std::fmt::Display for WorstFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for WorstFailure {}

/// The chaos fuzzer found a failing fault schedule (shrunk and bundled).
#[derive(Debug)]
struct ChaosFound(String);

impl std::fmt::Display for ChaosFound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ChaosFound {}

/// A repro bundle's recorded failure did not reproduce on replay.
#[derive(Debug)]
struct ReproDivergence(String);

impl std::fmt::Display for ReproDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ReproDivergence {}

/// The job service could not be reached, rejected a request, or a remote
/// job failed without a mappable exit code of its own.
#[derive(Debug)]
struct ServiceError(String);

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ServiceError {}

/// Severity ranking of the exit codes, most severe first: a memory-model
/// violation (7) means the simulator's consistency guarantees are wrong,
/// which invalidates everything downstream; an invariant violation (4)
/// means corrupted coherence state; deadlock (2) and livelock (3) are
/// forward-progress failures; a race (6) indicts the workload's labeling
/// rather than the machine; a chaos finding (8) is a freshly fuzzed bug
/// and a repro divergence (9) an unconfirmed old one — real, but already
/// minimized or secondhand; a static lint finding (11) is a *possible*
/// failure proved without running anything, so it ranks just below the
/// witnessed ones; partial results (5), service errors (10 — the daemon
/// was unreachable or rejected the request, saying nothing about the
/// simulator itself) and generic errors (1) rank last. When failures
/// co-occur the most severe code wins.
const SEVERITY: [u8; 11] = [7, 4, 2, 3, 6, 8, 9, 11, 5, 10, 1];

/// Returns the more severe of two exit codes under [`SEVERITY`].
fn worst_code(a: u8, b: u8) -> u8 {
    let rank = |c: u8| {
        SEVERITY
            .iter()
            .position(|&s| s == c)
            .unwrap_or(SEVERITY.len())
    };
    if rank(a) <= rank(b) {
        a
    } else {
        b
    }
}

/// Distinct exit codes so scripts can tell failure classes apart:
/// 0 success, 1 generic, 2 deadlock, 3 livelock, 4 invariant violation,
/// 5 partial matrix results, 6 race detected, 7 memory-model violation,
/// 8 chaos found a failing schedule, 9 repro bundle did not reproduce,
/// 10 service error, 11 static lint found critical findings.
/// Paths where failures co-occur pre-rank them into [`WorstFailure`].
fn exit_code_for(e: &(dyn std::error::Error + 'static)) -> ExitCode {
    if let Some(w) = e.downcast_ref::<WorstFailure>() {
        return ExitCode::from(w.code);
    }
    if e.downcast_ref::<ModelViolation>().is_some() {
        return ExitCode::from(7);
    }
    if e.downcast_ref::<ChaosFound>().is_some() {
        return ExitCode::from(8);
    }
    if e.downcast_ref::<ReproDivergence>().is_some() {
        return ExitCode::from(9);
    }
    if e.downcast_ref::<ServiceError>().is_some() {
        return ExitCode::from(10);
    }
    if e.downcast_ref::<RacesFound>().is_some() {
        return ExitCode::from(6);
    }
    if e.downcast_ref::<LintFindings>().is_some() {
        return ExitCode::from(11);
    }
    if e.downcast_ref::<PartialMatrix>().is_some() {
        return ExitCode::from(5);
    }
    if matches!(
        e.downcast_ref::<RunFailure>(),
        Some(RunFailure::RaceDetected(_))
    ) {
        return ExitCode::from(6);
    }
    let run_err = e.downcast_ref::<RunError>().or_else(|| {
        e.downcast_ref::<RunFailure>().and_then(|f| match f {
            RunFailure::Error(inner) => Some(inner),
            RunFailure::Panic(_) | RunFailure::RaceDetected(_) => None,
        })
    });
    match run_err {
        Some(RunError::Deadlock { .. }) => ExitCode::from(2),
        Some(RunError::Livelock { .. }) => ExitCode::from(3),
        Some(RunError::InvariantViolation { .. }) => ExitCode::from(4),
        _ => ExitCode::FAILURE,
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse(argv) {
        Ok(cmd) => match execute(cmd) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                exit_code_for(e.as_ref())
            }
        },
        Err(ArgError(msg)) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn execute(cmd: Command) -> Result<(), Box<dyn std::error::Error>> {
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Run { app, config, chart } => {
            let e = run(app, &config)?;
            println!("{}", describe_run(&e));
            let b = &e.result.aggregate;
            println!(
                "breakdown: busy {} | read {} | write {} | sync {} | prefetch {} | \
                 switch {} | idle {} | no-switch {}",
                b.busy,
                b.read_stall,
                b.write_stall,
                b.sync_stall,
                b.prefetch_overhead,
                b.switching,
                b.all_idle,
                b.no_switch
            );
            if let Some(report) = &e.analysis {
                println!("{}", report.render());
                if report.race_detected() {
                    return Err(Box::new(RacesFound(1)));
                }
            }
            if chart {
                let fig = Figure {
                    title: format!("{app} on {}", config.label()),
                    groups: vec![AppFigure::from_experiments(&[e])],
                };
                println!("{}", fig.render_chart());
            }
            Ok(())
        }
        Command::Figure {
            number,
            config,
            csv,
        } => {
            let report = match number {
                2 => dashlat::experiments::figure2(&config),
                3 => dashlat::experiments::figure3(&config),
                4 => dashlat::experiments::figure4(&config),
                5 => dashlat::experiments::figure5(&config),
                6 => dashlat::experiments::figure6(&config),
                _ => unreachable!("validated by the parser"),
            };
            for (app, label, failure) in &report.failures {
                eprintln!("warning: {app}/{label} failed: {failure}");
            }
            if csv {
                print!("{}", report.figure.to_csv());
            } else {
                println!("{}", report.figure.render());
                println!("{}", report.figure.render_chart());
            }
            if report.is_complete() {
                Ok(())
            } else {
                // Several failure classes can co-occur across the matrix's
                // cells; the exit code of the most severe one wins (an
                // invariant violation in one cell outranks another cell's
                // race, which outranks the generic partial-results code).
                let code = report
                    .failures
                    .iter()
                    .map(|(_, _, f)| f.exit_code())
                    .fold(5, worst_code);
                let racy = report
                    .failures
                    .iter()
                    .filter(|(_, _, f)| matches!(f, RunFailure::RaceDetected(_)))
                    .count();
                let msg = if racy > 0 {
                    format!(
                        "{racy} subject(s) failed race-freedom certification; \
                         {} configuration(s) failed in total",
                        report.failures.len()
                    )
                } else {
                    format!(
                        "{} configuration(s) failed; partial results rendered above",
                        report.failures.len()
                    )
                };
                Err(Box::new(WorstFailure { code, msg }))
            }
        }
        Command::Table { number, config } => {
            match number {
                1 => println!("{}", dashlat::experiments::table1()),
                2 => println!("{}", dashlat::experiments::table2(&config)?.render()),
                _ => unreachable!("validated by the parser"),
            }
            Ok(())
        }
        Command::Summary { config } => {
            println!("{}", dashlat::experiments::summary(&config)?.render());
            Ok(())
        }
        Command::TraceRecord { app, out, config } => {
            let trace = record_trace(app, &config)?;
            std::fs::write(&out, trace.to_text())?;
            println!(
                "recorded {} ops from {} ({} processes) to {out}",
                trace.len(),
                app,
                trace.streams.len()
            );
            Ok(())
        }
        Command::TraceReplay { input, config } => {
            let text = std::fs::read_to_string(&input)?;
            let trace = Trace::from_text(&text)?;
            let processes = trace.streams.len();
            let mut cfg = (*config).clone();
            // The trace fixes the process count; derive the topology.
            if processes % cfg.contexts != 0 {
                return Err(format!(
                    "trace has {processes} processes, not divisible by {} contexts",
                    cfg.contexts
                )
                .into());
            }
            cfg.processors = processes / cfg.contexts;
            let topo = cfg.topology();
            // Reconstruct the recorded page placement when available so
            // local/remote classification matches the original run;
            // otherwise fall back to a flat round-robin region.
            let page_map = match &trace.page_homes {
                Some((nodes, homes)) if *nodes == cfg.processors => {
                    dashlat_mem::layout::PageMap::from_homes(
                        homes.iter().map(|&h| dashlat_mem::NodeId(h)).collect(),
                        *nodes,
                    )
                }
                _ => {
                    let max_addr = trace
                        .streams
                        .iter()
                        .flatten()
                        .filter_map(|op| match op {
                            dashlat_cpu::ops::Op::Read(a)
                            | dashlat_cpu::ops::Op::Write(a)
                            | dashlat_cpu::ops::Op::Rmw(a) => Some(a.0),
                            dashlat_cpu::ops::Op::Prefetch { addr, .. } => Some(addr.0),
                            _ => None,
                        })
                        .max()
                        .unwrap_or(0);
                    let mut space = AddressSpaceBuilder::new(cfg.processors);
                    let _ = space.alloc(
                        "trace-region",
                        max_addr + 64,
                        dashlat_mem::layout::Placement::RoundRobin,
                    );
                    space.build()
                }
            };
            let mem = MemorySystem::new(cfg.mem_config(), page_map);
            let result = Machine::new(cfg.proc_config(), topo, mem, trace.into_workload())
                .with_max_cycles(Cycle(50_000_000_000))
                .run()?;
            println!(
                "replayed {input} under {}: elapsed {} | util {:.0}% | read hits {}",
                cfg.label(),
                result.elapsed,
                result.utilization() * 100.0,
                result.mem.read_hits
            );
            Ok(())
        }
        Command::Sweep {
            number,
            config,
            journal,
            out,
            resume,
            isolate,
            timeout_secs,
            retries,
            bundle_dir,
        } => {
            let plan = SweepPlan::figure(number, &config);
            let opts = SweepOptions {
                max_retries: retries,
                bundle_dir: bundle_dir.map(PathBuf::from),
                ..SweepOptions::default()
            };
            println!(
                "supervised sweep {} — {} cells, journal {journal}{}",
                plan.name,
                plan.cells.len(),
                if resume { " (resuming)" } else { "" }
            );
            let timeout = Duration::from_secs(timeout_secs);
            let journal_path = Path::new(&journal);
            let out_path = Path::new(&out);
            let report = if isolate {
                run_supervised(
                    &plan,
                    journal_path,
                    out_path,
                    resume,
                    &opts,
                    |_, cell, _| isolate::run_cell_subprocess(cell, timeout),
                )?
            } else {
                let memo = CellMemo::new();
                let report = run_supervised(
                    &plan,
                    journal_path,
                    out_path,
                    resume,
                    &opts,
                    |_, cell, _| run_cell_in_process_memo(cell, &memo),
                )?;
                if memo.hits() > 0 {
                    println!(
                        "result memo: {} cell(s) served without re-simulating",
                        memo.hits()
                    );
                }
                report
            };
            println!("{}", report.summary());
            for line in report.diagnostics() {
                eprintln!("warning: {line}");
            }
            for bundle in &report.bundles {
                eprintln!("repro bundle written: {}", bundle.display());
            }
            println!("results: {out}");
            if report.is_complete() {
                Ok(())
            } else {
                Err(Box::new(WorstFailure {
                    code: report.exit_code(),
                    msg: format!(
                        "{} cell(s) failed permanently; results in {out} are partial",
                        report.failures.len()
                    ),
                }))
            }
        }
        Command::Cell { app, config } => {
            let cell = SweepCell {
                app,
                point: config.label(),
                config: *config,
                sweep: "cell".into(),
            };
            let outcome = run_cell_in_process(&cell);
            // The record is the contract with the supervising parent: one
            // line, last on stdout.
            println!("{}", isolate::render_record(&outcome));
            match outcome {
                Ok(_) => Ok(()),
                Err(f) => Err(Box::new(WorstFailure {
                    code: f.code,
                    msg: f.error,
                })),
            }
        }
        Command::Repro { bundle } => {
            let text = std::fs::read_to_string(&bundle)?;
            let b = ReproBundle::from_json(&text).map_err(ArgError)?;
            println!(
                "replaying {} — dashlat run --app {} {}",
                b.origin,
                b.app,
                b.machine_args.join(" ")
            );
            let app: App = b.app.parse().map_err(ArgError)?;
            let mut machine_args = b.machine_args.clone();
            let config = args::parse_machine_flags(&mut machine_args)?;
            args::ensure_consumed(&machine_args)?;
            let cell = SweepCell {
                app,
                point: config.label(),
                config,
                sweep: "repro".into(),
            };
            match run_cell_in_process(&cell) {
                Err(f) if f.code == b.expect_code => {
                    println!("reproduced (exit {}): {}", f.code, f.error);
                    if f.error != b.expect_error {
                        eprintln!(
                            "note: failure message differs from the bundle's\n  bundle: {}\n  replay: {}",
                            b.expect_error, f.error
                        );
                    }
                    Ok(())
                }
                Err(f) => Err(Box::new(ReproDivergence(format!(
                    "replay failed with exit {} ({}), but the bundle expects exit {} ({})",
                    f.code, f.error, b.expect_code, b.expect_error
                )))),
                Ok(elapsed) => Err(Box::new(ReproDivergence(format!(
                    "replay completed ({elapsed} pclocks), but the bundle expects exit {} ({})",
                    b.expect_code, b.expect_error
                )))),
            }
        }
        Command::Chaos {
            app,
            config,
            trials,
            seed,
            determinism,
            bundle_dir,
            serve,
            data_dir,
            calibration_budget_ms,
        } => {
            if serve {
                return run_serve_torture(trials, seed, data_dir, calibration_budget_ms);
            }
            let opts = ChaosOptions {
                trials,
                seed,
                app,
                check_determinism: determinism,
                ..ChaosOptions::new(app, (*config).clone())
            };
            println!(
                "chaos: fuzzing {trials} fault schedule(s) against {app} (campaign seed {seed})"
            );
            let report = run_chaos(&opts);
            match report.clean_elapsed {
                Some(elapsed) => println!(
                    "fault-free baseline: {elapsed} pclocks; {} trial(s) run",
                    report.trials_run
                ),
                None => println!("fault-free baseline failed — no schedule needed"),
            }
            match report.failure {
                None => {
                    println!("no failing schedule found");
                    Ok(())
                }
                Some(f) => {
                    println!(
                        "trial #{}: {} oracle tripped (exit {}): {}",
                        f.trial, f.oracle, f.code, f.error
                    );
                    println!("  original schedule:  {}", f.original.to_spec());
                    println!(
                        "  minimized schedule: {} ({} active fault class(es), {} shrink run(s))",
                        f.minimized.to_spec(),
                        active_classes(&f.minimized),
                        f.shrink_runs
                    );
                    let mut cfg = (*config).with_invariant_checks(true);
                    // A schedule with no active classes means the bug
                    // needs no faults; bundle the clean configuration.
                    if f.minimized.is_active() {
                        cfg = cfg.with_faults(f.minimized);
                    }
                    let b = ReproBundle {
                        app: app.name().to_ascii_lowercase(),
                        machine_args: cfg.to_cli_args(),
                        expect_code: f.code,
                        expect_error: f.error.clone(),
                        origin: format!(
                            "chaos trial #{} (campaign seed {seed}, {} oracle)",
                            f.trial, f.oracle
                        ),
                    };
                    std::fs::create_dir_all(&bundle_dir)?;
                    let path = Path::new(&bundle_dir)
                        .join(format!("repro-chaos-{app}-seed{seed}.json").to_lowercase());
                    b.write(&path)?;
                    println!("repro bundle written: {}", path.display());
                    println!("replay with: dashlat repro {}", path.display());
                    Err(Box::new(ChaosFound(format!(
                        "chaos found a failing fault schedule ({} oracle): {}",
                        f.oracle, f.error
                    ))))
                }
            }
        }
        Command::VerifyModel {
            models,
            tests,
            filter,
            max_runs,
            list,
            stats,
            strict,
            deep_closure,
        } => {
            if list {
                print!("{}", dashlat_verify::list_corpus());
                return Ok(());
            }
            let suite = dashlat_verify::verify_suite_opts(&dashlat_verify::SuiteOptions {
                models,
                tests,
                filter,
                max_runs,
                stats,
                strict,
                deep_closure,
            });
            print!("{}", suite.render());
            if suite.passed() {
                Ok(())
            } else {
                Err(Box::new(ModelViolation))
            }
        }
        Command::Serve {
            addr,
            data_dir,
            workers,
            queue_depth,
            job_timeout_secs,
            isolate,
            cell_timeout_secs,
            crash_loop_threshold,
            max_connections,
            conn_deadline_secs,
        } => {
            dashlat_serve::signal::install();
            let server =
                std::sync::Arc::new(dashlat_serve::Server::new(dashlat_serve::ServeConfig {
                    addr,
                    data_dir: PathBuf::from(data_dir),
                    workers,
                    queue_depth,
                    job_timeout_secs,
                    isolate,
                    cell_timeout_secs,
                    crash_loop_threshold,
                    max_connections,
                    conn_deadline_secs,
                    ..dashlat_serve::ServeConfig::default()
                })?);
            // Graceful shutdown (SIGTERM/SIGINT/POST /shutdown) returns
            // Ok from run(), so the daemon exits 0.
            server.run()?;
            Ok(())
        }
        Command::Submit {
            addr,
            data_dir,
            spec,
            wait,
        } => {
            let addr = resolve_addr(addr, &data_dir)?;
            let resp = dashlat_serve::request(&addr, "POST", "/jobs", Some(&spec.to_json()))
                .map_err(|e| ServiceError(format!("cannot reach daemon at {addr}: {e}")))?;
            if resp.status == 429 {
                let retry = resp.header("retry-after").unwrap_or("2");
                return Err(Box::new(ServiceError(format!(
                    "daemon shed the submission (queue full); retry after {retry}s"
                ))));
            }
            if resp.status != 202 {
                return Err(Box::new(ServiceError(format!(
                    "daemon rejected the submission ({}): {}",
                    resp.status,
                    resp.body.trim()
                ))));
            }
            let id = dashlat_sim::json::Value::parse(&resp.body)
                .ok()
                .and_then(|v| v.get("id").and_then(dashlat_sim::json::Value::as_u64))
                .ok_or_else(|| {
                    ServiceError(format!("daemon returned no job id: {}", resp.body.trim()))
                })?;
            println!("job #{id} submitted ({})", spec.describe());
            if !wait {
                println!("follow with: dashlat status {id} --addr {addr}");
                return Ok(());
            }
            wait_for_job(&addr, id)
        }
        Command::Status { addr, data_dir, id } => {
            let addr = resolve_addr(addr, &data_dir)?;
            match id {
                Some(id) => {
                    let resp = dashlat_serve::request(&addr, "GET", &format!("/jobs/{id}"), None)
                        .map_err(|e| {
                        ServiceError(format!("cannot reach daemon at {addr}: {e}"))
                    })?;
                    if resp.status != 200 {
                        return Err(Box::new(ServiceError(format!(
                            "daemon returned {} for job {id}: {}",
                            resp.status,
                            resp.body.trim()
                        ))));
                    }
                    let job = dashlat_sim::json::Value::parse(&resp.body)
                        .map_err(|e| ServiceError(format!("bad status document: {e}")))?;
                    println!("{}", describe_job(&job));
                    Ok(())
                }
                None => {
                    let health = dashlat_serve::request(&addr, "GET", "/healthz", None)
                        .map_err(|e| ServiceError(format!("cannot reach daemon at {addr}: {e}")))?;
                    println!("daemon at {addr}: {}", health.body.trim());
                    let resp = dashlat_serve::request(&addr, "GET", "/jobs", None)
                        .map_err(|e| ServiceError(format!("cannot reach daemon at {addr}: {e}")))?;
                    let doc = dashlat_sim::json::Value::parse(&resp.body)
                        .map_err(|e| ServiceError(format!("bad job list: {e}")))?;
                    let jobs = doc
                        .get("jobs")
                        .and_then(dashlat_sim::json::Value::as_arr)
                        .ok_or_else(|| {
                            ServiceError(format!("bad job list: {}", resp.body.trim()))
                        })?;
                    if jobs.is_empty() {
                        println!("no jobs");
                    }
                    for job in jobs {
                        println!("{}", describe_job(job));
                    }
                    Ok(())
                }
            }
        }
        Command::Analyze {
            apps,
            input,
            passes,
            config,
        } => {
            let mut racy = 0usize;
            if let Some(path) = input {
                let text = std::fs::read_to_string(&path)?;
                let trace = Trace::from_text(&text)?;
                let report = dashlat_analyze::analyze_trace(&path, &trace, &passes);
                println!("{}", report.render());
                racy += usize::from(report.race_detected());
            } else {
                let apps = if apps.is_empty() {
                    vec![App::Mp3d, App::Lu, App::Pthor]
                } else {
                    apps
                };
                let cfg = (*config).with_analysis(passes);
                for app in apps {
                    let e = run(app, &cfg)?;
                    let report = e.analysis.expect("analysis passes were configured");
                    println!("{}", report.render());
                    racy += usize::from(report.race_detected());
                }
            }
            if racy > 0 {
                return Err(Box::new(RacesFound(racy)));
            }
            Ok(())
        }
        Command::Lint {
            apps,
            all,
            input,
            json,
            strict,
            config,
        } => {
            use dashlat_analyze::lint::{lint_trace, lint_workload, LintOptions, LintReport};
            let opts = LintOptions::from_latencies(&config.mem_config().latencies);
            // (report, this subject fails the lint, one-line summary
            // that replaces the full render for passing corpus entries)
            let mut entries: Vec<(LintReport, bool, Option<String>)> = Vec::new();
            if let Some(path) = input {
                let text = std::fs::read_to_string(&path)?;
                let trace = Trace::from_text(&text)?;
                let r = lint_trace(&path, &trace, Vec::new(), false, &opts);
                let failed = r.is_critical() || (strict && r.is_incomplete());
                entries.push((r, failed, None));
            } else {
                let apps = if apps.is_empty() {
                    App::ALL.to_vec()
                } else {
                    apps
                };
                for app in apps {
                    let topo = Topology::new(config.processors, config.contexts);
                    let mut space = AddressSpaceBuilder::new(config.processors);
                    let w = app.build(config.scale, topo, &mut space, config.prefetching);
                    let r = lint_workload(app.name(), w.as_ref(), &opts)?;
                    let failed = r.is_critical() || (strict && r.is_incomplete());
                    entries.push((r, failed, None));
                }
                if all {
                    for t in dashlat_verify::litmus::corpus() {
                        let lay = dashlat_verify::workload::layout(&t, t.nprocs());
                        let offsets = vec![0; t.nprocs()];
                        let w = dashlat_verify::workload::LitmusWorkload::new(&t, &lay, &offsets);
                        let r = lint_workload(t.name, &w, &opts)?;
                        // Competing-by-design corpus entries fail the
                        // PL pass on purpose: the check here is that
                        // the static verdict reproduces the corpus's
                        // hand-written annotation, not that every
                        // litmus program certifies.
                        let verdict_ok = r.labeling.properly_labeled() == t.properly_labeled;
                        let other_critical = !r.extraction_notes.is_empty()
                            || r.deadlock.is_critical()
                            || r.barriers.divergence.is_some();
                        let failed = !verdict_ok || other_critical || (strict && r.is_incomplete());
                        let note = if failed {
                            None
                        } else {
                            Some(format!(
                                "litmus {}: static PL verdict `{}` matches the corpus \
                                 annotation — ok",
                                t.name,
                                if t.properly_labeled {
                                    "properly labeled"
                                } else {
                                    "under-labeled"
                                },
                            ))
                        };
                        entries.push((r, failed, note));
                    }
                }
            }
            if json {
                let docs: Vec<String> = entries
                    .iter()
                    .map(|(r, failed, _)| {
                        format!("{{\"failed\":{failed},\"report\":{}}}", r.to_json())
                    })
                    .collect();
                println!("[{}]", docs.join(","));
            } else {
                for (r, failed, note) in &entries {
                    match note {
                        Some(line) if !failed => println!("{line}"),
                        _ => println!("{}", r.render()),
                    }
                }
            }
            let critical = entries.iter().filter(|(_, failed, _)| *failed).count();
            let incomplete = if strict {
                entries.iter().filter(|(r, _, _)| r.is_incomplete()).count()
            } else {
                0
            };
            if !json {
                println!(
                    "lint: {} subject(s) checked, {} failed",
                    entries.len(),
                    critical
                );
            }
            if critical > 0 {
                return Err(Box::new(LintFindings {
                    critical,
                    incomplete,
                }));
            }
            Ok(())
        }
    }
}

/// Finds the daemon: an explicit `--addr` wins, otherwise the `addr`
/// file the daemon publishes in its data directory.
/// `dashlat chaos --serve`: the service-level torture harness. Boots a
/// daemon per seeded schedule, misbehaves on schedule, and judges the
/// wreckage with the four service oracles; a failing schedule is
/// delta-debugged to minimal and reported with exit 8.
fn run_serve_torture(
    trials: u32,
    seed: u64,
    data_dir: Option<String>,
    calibration_budget_ms: u64,
) -> Result<(), Box<dyn std::error::Error>> {
    let data_root = data_dir.map_or_else(
        || std::env::temp_dir().join(format!("dashlat-torture-{}", std::process::id())),
        PathBuf::from,
    );
    println!(
        "chaos --serve: {trials} torture schedule(s) against a live daemon (campaign seed {seed})"
    );
    let report = dashlat_serve::run_torture(&dashlat_serve::TortureOptions {
        trials,
        seed,
        data_root: data_root.clone(),
        calibration_budget_ms,
        ..dashlat_serve::TortureOptions::default()
    });
    if let Some(why) = report.skipped {
        println!("torture skipped: {why}");
        return Ok(());
    }
    match report.failure {
        None => {
            println!(
                "{} schedule(s) run — all four oracles green \
                 (job-loss, log-integrity, cache, recovery)",
                report.trials_run
            );
            std::fs::remove_dir_all(&data_root).ok();
            Ok(())
        }
        Some(f) => {
            println!(
                "trial #{}: {} oracle tripped: {}",
                f.trial, f.oracle, f.error
            );
            println!("  original schedule:  {}", f.original.to_spec());
            println!(
                "  minimized schedule: {} ({} active fault class(es), {} campaign re-run(s))",
                f.minimized.to_spec(),
                f.minimized.active_classes(),
                f.shrink_runs
            );
            println!("  campaign data kept under {}", data_root.display());
            Err(Box::new(ChaosFound(format!(
                "serve torture found a failing schedule ({} oracle): {}",
                f.oracle, f.error
            ))))
        }
    }
}

fn resolve_addr(addr: Option<String>, data_dir: &str) -> Result<String, Box<ServiceError>> {
    match addr {
        Some(a) => Ok(a),
        None => dashlat_serve::read_addr_file(Path::new(data_dir)).map_err(|e| {
            Box::new(ServiceError(format!(
                "no --addr given and no daemon addr file under {data_dir}/ ({e}); \
                 is `dashlat serve` running?"
            )))
        }),
    }
}

/// Polls one job to a terminal state (`submit --wait`) and converts its
/// outcome into this process's exit status: the remote job's own exit
/// code when it has one, 10 when the job ended opaquely.
fn wait_for_job(addr: &str, id: u64) -> Result<(), Box<dyn std::error::Error>> {
    let mut last_status = String::new();
    loop {
        let resp = dashlat_serve::request(addr, "GET", &format!("/jobs/{id}"), None)
            .map_err(|e| ServiceError(format!("lost the daemon at {addr}: {e}")))?;
        let job = dashlat_sim::json::Value::parse(&resp.body)
            .map_err(|e| ServiceError(format!("bad status document: {e}")))?;
        let status = job
            .get("status")
            .and_then(dashlat_sim::json::Value::as_str)
            .unwrap_or("?")
            .to_owned();
        if status != last_status {
            println!("{}", describe_job(&job));
            last_status.clone_from(&status);
        }
        match status.as_str() {
            "complete" => return Ok(()),
            "failed" | "cancelled" => {
                let detail = job
                    .get("detail")
                    .and_then(dashlat_sim::json::Value::as_str)
                    .unwrap_or("no detail")
                    .to_owned();
                let code = job
                    .get("exit_code")
                    .and_then(dashlat_sim::json::Value::as_u64)
                    .map_or(10, |c| u8::try_from(c).unwrap_or(10));
                return Err(Box::new(WorstFailure {
                    code: if code == 0 { 10 } else { code },
                    msg: format!("job #{id} {status}: {detail}"),
                }));
            }
            "interrupted" => {
                return Err(Box::new(ServiceError(format!(
                    "job #{id} was checkpointed by a daemon shutdown; it resumes when the \
                     daemon restarts"
                ))));
            }
            _ => std::thread::sleep(Duration::from_millis(200)),
        }
    }
}

/// One status line for a job document from the service API.
fn describe_job(job: &dashlat_sim::json::Value) -> String {
    use dashlat_sim::json::Value;
    let num = |key: &str| job.get(key).and_then(Value::as_u64).unwrap_or(0);
    let s = |key: &str| job.get(key).and_then(Value::as_str).unwrap_or("?");
    let mut line = format!(
        "job #{} [{}] {} — {}/{} cell(s), {} from cache",
        num("id"),
        s("kind"),
        s("status"),
        num("cells_done"),
        num("cells_total"),
        num("cache_hits"),
    );
    if let Some(code) = job.get("exit_code").and_then(Value::as_u64) {
        line.push_str(&format!(", exit {code}"));
    }
    let detail = s("detail");
    if !detail.is_empty() && detail != "?" {
        line.push_str(&format!("\n  {detail}"));
    }
    line
}

/// Runs `app` once with a recorder attached and returns the trace,
/// including the page placement so replays keep local/remote geometry.
fn record_trace(app: App, config: &ExperimentConfig) -> Result<Trace, Box<dyn std::error::Error>> {
    let topo = config.topology();
    let mut space = AddressSpaceBuilder::new(config.processors);
    let inner = app.build(config.scale, topo, &mut space, config.prefetching);
    let mut recorder = TraceRecorder::new(inner);
    let page_map = space.build();
    let homes: Vec<usize> = page_map.homes().iter().map(|n| n.0).collect();
    let mem = MemorySystem::new(config.mem_config(), page_map);
    Machine::new(config.proc_config(), topo, mem, &mut recorder)
        .with_max_cycles(Cycle(50_000_000_000))
        .run()?;
    Ok(recorder.into_trace_with_pages(config.processors, homes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ranking_is_total_and_most_severe_wins() {
        // 7 > 4 > 2 > 3 > 6 > 8 > 9 > 11 > 5 > 10 > 1, pairwise.
        for (i, &a) in SEVERITY.iter().enumerate() {
            for &b in &SEVERITY[i..] {
                assert_eq!(worst_code(a, b), a);
                assert_eq!(worst_code(b, a), a);
            }
        }
        // Unknown codes lose to every ranked one.
        assert_eq!(worst_code(99, 5), 5);
        assert_eq!(worst_code(1, 99), 1);
    }

    #[test]
    fn figure_matrix_failures_rank_by_class() {
        let deadlock = RunFailure::Error(RunError::Deadlock { stuck: vec![] });
        let race = RunFailure::RaceDetected(Box::new(dashlat_analyze::AnalysisReport {
            subject: String::new(),
            nprocs: 0,
            events: 0,
            passes: vec![],
            hb: None,
            lockset: None,
            barrier: None,
            prefetch: None,
            sync_balance: None,
            replay_notes: vec![],
        }));
        let panic = RunFailure::Panic("p".into());
        assert_eq!(deadlock.exit_code(), 2);
        assert_eq!(race.exit_code(), 6);
        assert_eq!(panic.exit_code(), 1);
        // A deadlock cell outranks a race cell, both outrank partial (5).
        let code = [&race, &deadlock, &panic]
            .into_iter()
            .map(RunFailure::exit_code)
            .fold(5, worst_code);
        assert_eq!(code, 2);
    }

    #[test]
    fn exit_codes_map_each_error_class() {
        let as_exit = |e: Box<dyn std::error::Error>| exit_code_for(e.as_ref());
        assert_eq!(as_exit(Box::new(ModelViolation)), ExitCode::from(7));
        assert_eq!(as_exit(Box::new(RacesFound(1))), ExitCode::from(6));
        assert_eq!(
            as_exit(Box::new(LintFindings {
                critical: 1,
                incomplete: 0
            })),
            ExitCode::from(11)
        );
        assert_eq!(as_exit(Box::new(PartialMatrix(2))), ExitCode::from(5));
        assert_eq!(
            as_exit(Box::new(ChaosFound("schedule".into()))),
            ExitCode::from(8)
        );
        assert_eq!(
            as_exit(Box::new(ReproDivergence("diverged".into()))),
            ExitCode::from(9)
        );
        assert_eq!(
            as_exit(Box::new(WorstFailure {
                code: 4,
                msg: String::new()
            })),
            ExitCode::from(4)
        );
        assert_eq!(
            as_exit(Box::new(std::io::Error::other("x"))),
            ExitCode::FAILURE
        );
    }
}
