//! End-to-end checks of `dashlat analyze`: the race-detected exit code
//! and the report's contents, driven through the real binary.

use std::process::Command;

const RACY_TRACE: &str = "procs 2\n\
                          lock 0x1000\n\
                          0 A 0\n\
                          0 W 0x40\n\
                          0 L 0\n\
                          0 D\n\
                          1 W 0x40\n\
                          1 D\n";

const CLEAN_TRACE: &str = "procs 2\n\
                           lock 0x1000\n\
                           0 A 0\n\
                           0 W 0x40\n\
                           0 L 0\n\
                           0 D\n\
                           1 A 0\n\
                           1 W 0x40\n\
                           1 L 0\n\
                           1 D\n";

fn write_trace(name: &str, text: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("dashlat-analyze-cli-{name}.trace"));
    std::fs::write(&path, text).expect("trace written");
    path
}

fn dashlat(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_dashlat"))
        .args(args)
        .output()
        .expect("dashlat runs")
}

#[test]
fn racy_trace_exits_with_code_6_and_names_the_race() {
    let path = write_trace("racy", RACY_TRACE);
    let out = dashlat(&["analyze", "--in", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(6), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("NOT properly labeled"), "{stdout}");
    assert!(stdout.contains("P0"), "{stdout}");
    assert!(stdout.contains("P1"), "{stdout}");
    assert!(stdout.contains("line#"), "{stdout}");
    assert!(stdout.contains("missing lock 0"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("race-freedom certification"), "{stderr}");
}

#[test]
fn clean_trace_certifies_and_exits_zero() {
    let path = write_trace("clean", CLEAN_TRACE);
    let out = dashlat(&["analyze", "--in", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("PROPERLY LABELED"), "{stdout}");
}

#[test]
fn pass_selection_is_respected() {
    let path = write_trace("passes", CLEAN_TRACE);
    let out = dashlat(&[
        "analyze",
        "--in",
        path.to_str().unwrap(),
        "--passes",
        "lockset,syncbalance",
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // No HB pass means no certification verdict either way.
    assert!(!stdout.contains("PROPERLY LABELED"), "{stdout}");
    assert!(stdout.contains("lockset"), "{stdout}");
}
