//! End-to-end checks of the `dashlat serve` daemon through the real
//! binary: admission control sheds load with 429 when the queue is
//! full, SIGTERM is a graceful exit 0, and a daemon killed at a
//! deterministic journal crash point (the in-process stand-in for
//! `kill -9`) restarts, auto-resumes the interrupted job, publishes a
//! `SweepLog` byte-identical to an uninterrupted run's, and serves
//! every shared cell from the result cache instead of re-simulating.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

use dashlat_serve::client;

/// Machine flags shared by every sweep here: small enough that a full
/// figure-3 sweep (6 cells) finishes in seconds, deterministic so every
/// run publishes identical bytes.
const MACHINE: [&str; 3] = ["--test-scale", "--processors", "4"];

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dashlat-serve-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir scratch");
    dir
}

fn dashlat(args: &[String]) -> Output {
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
    Command::new(env!("CARGO_BIN_EXE_dashlat"))
        .args(&argrefs)
        .output()
        .expect("dashlat runs")
}

fn spawn_daemon(data_dir: &Path, extra: &[&str], envs: &[(&str, &str)]) -> Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dashlat"));
    cmd.arg("serve")
        .args(["--addr", "127.0.0.1:0", "--data-dir"])
        .arg(data_dir)
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.spawn().expect("daemon spawns")
}

/// Waits until the daemon has published its address *and* answers
/// `/healthz` on it — re-reading the file each attempt, because after a
/// restart the file briefly holds the previous instance's port.
fn wait_ready(data_dir: &Path) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(addr) = client::read_addr_file(data_dir) {
            if let Ok(resp) = client::request(&addr, "GET", "/healthz", None) {
                if resp.status == 200 {
                    return addr;
                }
            }
        }
        assert!(Instant::now() < deadline, "daemon never became ready");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn job_status(addr: &str, id: u64) -> String {
    client::request(addr, "GET", &format!("/jobs/{id}"), None)
        .map(|r| r.body)
        .unwrap_or_default()
}

fn wait_complete(addr: &str, id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let body = job_status(addr, id);
        if body.contains("\"status\":\"complete\"") {
            return body;
        }
        assert!(
            !body.contains("\"status\":\"failed\"") && !body.contains("\"status\":\"cancelled\""),
            "job {id} ended badly: {body}"
        );
        assert!(
            Instant::now() < deadline,
            "job {id} never completed: {body}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn submit_args(data_dir: &Path, extra: &[&str]) -> Vec<String> {
    let mut args = vec![
        "submit".to_owned(),
        "--data-dir".to_owned(),
        data_dir.display().to_string(),
    ];
    args.extend(extra.iter().map(|s| (*s).to_owned()));
    args
}

/// A full admission queue sheds submissions with `429` + `Retry-After`
/// while `/readyz` reports not-ready, and SIGTERM is a graceful exit 0.
#[test]
fn queue_full_sheds_with_429_and_sigterm_exits_zero() {
    let data = scratch("shed");
    let mut daemon = spawn_daemon(&data, &["--workers", "1", "--queue-depth", "1"], &[]);
    let addr = wait_ready(&data);

    // Occupy the single worker with a chaos campaign (one indivisible
    // unit, several seconds of work), then fill the queue of one.
    let body = "{\"kind\":\"chaos\",\"app\":\"lu\",\"trials\":40,\"seed\":1,\
                \"machine\":[\"--test-scale\"]}";
    let a = client::request(&addr, "POST", "/jobs", Some(body)).expect("submit A");
    assert_eq!(a.status, 202, "{a:?}");
    let deadline = Instant::now() + Duration::from_secs(60);
    while !job_status(&addr, 1).contains("\"status\":\"running\"") {
        assert!(Instant::now() < deadline, "job 1 never started running");
        std::thread::sleep(Duration::from_millis(10));
    }
    let b = client::request(&addr, "POST", "/jobs", Some(body)).expect("submit B");
    assert_eq!(b.status, 202, "{b:?}");

    // The queue (depth 1) now holds B: the next submission is shed.
    let c = client::request(&addr, "POST", "/jobs", Some(body)).expect("submit C");
    assert_eq!(c.status, 429, "expected load shedding: {c:?}");
    assert_eq!(c.header("retry-after"), Some("2"), "{c:?}");
    let ready = client::request(&addr, "GET", "/readyz", None).expect("readyz");
    assert_eq!(ready.status, 503, "full queue must report not-ready");

    // The submit CLI surfaces the shed as the service exit code (10).
    let out = dashlat(&submit_args(
        &data,
        &["chaos", "--app", "lu", "--trials", "40", "--test-scale"],
    ));
    assert_eq!(out.status.code(), Some(10), "{out:?}");

    // SIGTERM: graceful drain, exit 0.
    let kill = Command::new("kill")
        .args(["-TERM", &daemon.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(kill.success());
    let status = daemon.wait().expect("daemon reaped");
    assert_eq!(status.code(), Some(0), "SIGTERM must be a graceful exit 0");
}

/// The crash-recovery pipeline end to end: two overlapping sweep jobs,
/// the daemon dies at a deterministic journal crash point mid-job-2
/// (abort = in-process `kill -9`), the restarted daemon auto-resumes it,
/// the resumed `SweepLog` is byte-identical to both job 1's and a plain
/// `dashlat sweep` run's, and the shared cells were simulated (and
/// cached) exactly once — job 2 never runs a simulation at all.
#[test]
fn crash_mid_job_restart_resumes_to_identical_bytes_with_cache() {
    let dir = scratch("crash");
    let data = dir.join("data");

    // Job 1 sweeps the whole matrix: 1 header + 6 cell appends. Job 2's
    // first committed cell is process-wide append #9 — crash there.
    let mut daemon = spawn_daemon(
        &data,
        &["--workers", "1", "--queue-depth", "8"],
        &[("DASHLAT_CRASH_AFTER_JOURNAL_APPEND", "9")],
    );
    wait_ready(&data);
    let mut sweep_submit = vec!["--sweep-jobs", "1", "sweep", "3"];
    sweep_submit.extend(MACHINE);
    let a = dashlat(&submit_args(&data, &sweep_submit));
    assert_eq!(a.status.code(), Some(0), "{a:?}");
    // Submitted while job 1 is still sweeping: the two jobs overlap.
    let b = dashlat(&submit_args(&data, &sweep_submit));
    assert_eq!(b.status.code(), Some(0), "{b:?}");

    // The crash point aborts the daemon (SIGABRT, no cleanup).
    let status = daemon.wait().expect("daemon reaped");
    assert!(!status.success(), "daemon must die at the crash point");
    // Job 1 finished and published; job 2 left a one-cell journal and
    // no published log — the journal is its checkpoint.
    assert!(data.join("jobs/1/sweep.json").exists());
    assert!(data.join("jobs/2/sweep.journal").exists());
    assert!(!data.join("jobs/2/sweep.json").exists());

    // Restart clean: recovery restores job 1 as terminal and
    // re-enqueues job 2, which resumes without being resubmitted.
    let mut daemon = spawn_daemon(&data, &["--workers", "1", "--queue-depth", "8"], &[]);
    let addr = wait_ready(&data);
    let s1 = wait_complete(&addr, 1);
    let s2 = wait_complete(&addr, 2);

    // Job 1 simulated everything; job 2 simulated nothing: one cell
    // replayed from its journal, the other five served from the cache.
    assert!(s1.contains("\"cache_hits\":0"), "{s1}");
    assert!(s1.contains("\"executed\":6"), "{s1}");
    assert!(s2.contains("\"replayed\":1"), "{s2}");
    assert!(s2.contains("\"cache_hits\":5"), "{s2}");
    assert!(s2.contains("\"executed\":5"), "{s2}");

    // Byte-identical logs: resumed-under-crash == uninterrupted == the
    // plain CLI supervisor on the same machine flags.
    let log1 = std::fs::read(data.join("jobs/1/sweep.json")).expect("log 1");
    let log2 = std::fs::read(data.join("jobs/2/sweep.json")).expect("log 2");
    assert_eq!(log1, log2, "resumed log differs from uninterrupted log");
    let refdir = dir.join("reference");
    std::fs::create_dir_all(&refdir).expect("mkdir reference");
    let mut sweep_cli = vec!["sweep".to_owned(), "3".to_owned()];
    sweep_cli.extend(MACHINE.iter().map(|s| (*s).to_owned()));
    sweep_cli.push("--journal".to_owned());
    sweep_cli.push(refdir.join("f3.journal").display().to_string());
    sweep_cli.push("--out".to_owned());
    sweep_cli.push(refdir.join("f3.json").display().to_string());
    let out = dashlat(&sweep_cli);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let reference = std::fs::read(refdir.join("f3.json")).expect("reference log");
    assert_eq!(log1, reference, "service log differs from CLI sweep log");

    // Every distinct cell fingerprint was cached exactly once.
    let cache_entries = std::fs::read_dir(data.join("cache"))
        .expect("cache dir")
        .filter_map(Result::ok)
        .filter(|e| e.file_name().to_string_lossy().starts_with("cell-"))
        .count();
    assert_eq!(cache_entries, 6, "each shared cell cached exactly once");

    // The status CLI sees both jobs through the addr file.
    let out = dashlat(&[
        "status".to_owned(),
        "--data-dir".to_owned(),
        data.display().to_string(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(stdout.contains("job #1"), "{stdout}");
    assert!(stdout.contains("job #2"), "{stdout}");

    // POST /shutdown is the API twin of SIGTERM: graceful exit 0.
    let resp = client::request(&addr, "POST", "/shutdown", None).expect("shutdown");
    assert_eq!(resp.status, 200);
    let status = daemon.wait().expect("daemon reaped");
    assert_eq!(status.code(), Some(0));
}
