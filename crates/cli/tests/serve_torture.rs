//! End-to-end checks of `dashlat chaos --serve` through the real
//! binary: a clean torture campaign leaves all four service oracles
//! green, and arming the planted torn-publish bug
//! (`DASHLAT_BUG_TORN_PUBLISH=1`) makes the cache oracle trip and the
//! shrinker reduce the failing schedule to the disk-fault class alone.
//!
//! Torture campaigns boot real daemons and burn tens of seconds of
//! wall clock, so both tests pass `--calibration-budget-ms`: on a
//! runner too slow (or too loaded) to finish a fault-free cell inside
//! the budget, the campaign skips loudly instead of flaking.

use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::Mutex;

/// Two concurrent campaigns would double the daemon/flood load and
/// invalidate each other's calibration, so run them one at a time.
static TORTURE_LOCK: Mutex<()> = Mutex::new(());

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("dashlat-torture-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_torture(tag: &str, seed: u64, envs: &[(&str, &str)]) -> (Output, String, PathBuf) {
    let dir = scratch(tag);
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dashlat"));
    cmd.args(["chaos", "--serve", "--trials", "2", "--seed"])
        .arg(seed.to_string())
        .args(["--calibration-budget-ms", "2000", "--data-dir"])
        .arg(&dir);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("dashlat runs");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    (out, stdout, dir)
}

/// True when the campaign bowed out at calibration; the oracle
/// assertions are meaningless on such a runner, so the caller passes.
fn skipped(stdout: &str) -> bool {
    if stdout.contains("torture skipped:") {
        eprintln!("runner too slow for torture — campaign skipped itself:\n{stdout}");
        return true;
    }
    false
}

/// A short fault-free-seeded campaign (the same seed the CI smoke job
/// uses) ends with every oracle green and exit 0, and cleans up its
/// campaign directory.
#[test]
fn clean_torture_campaign_is_green() {
    let _guard = TORTURE_LOCK.lock().unwrap();
    let (out, stdout, dir) = run_torture("clean", 7, &[]);
    if skipped(&stdout) {
        return;
    }
    assert!(
        out.status.success(),
        "clean campaign must exit 0: {stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("all four oracles green"),
        "expected green verdict: {stdout}"
    );
    assert!(
        !dir.exists(),
        "green campaign should remove its data root {}",
        dir.display()
    );
}

/// With the planted torn-publish bug armed, the cache oracle catches a
/// zero-length/truncated cache entry, the run exits with the chaos
/// exit code (8), and the delta-debugged schedule keeps a disk-fault
/// class while dropping worker kills and client floods.
#[test]
fn planted_torn_publish_bug_is_caught_and_shrunk() {
    let _guard = TORTURE_LOCK.lock().unwrap();
    // Whether an injected disk fault lands mid-publish depends on the
    // event interleaving, which the unoptimized profile shifts past the
    // surveyed seeds; the CI smoke job runs this under --release.
    if cfg!(debug_assertions) {
        eprintln!("skipping planted-bug torture: seeds are surveyed for release builds");
        return;
    }
    // Seed 4 trips the bug on trial #0; the later seeds also trip and
    // cover runners whose load shifts the interleaving slightly.
    let mut caught = None;
    for seed in [4, 3] {
        let (out, stdout, dir) = run_torture("bug", seed, &[("DASHLAT_BUG_TORN_PUBLISH", "1")]);
        if skipped(&stdout) {
            let _ = std::fs::remove_dir_all(&dir);
            return;
        }
        if out.status.code() == Some(8) {
            caught = Some((stdout, dir));
            break;
        }
        eprintln!("seed {seed} did not trip the planted bug on this runner:\n{stdout}");
        let _ = std::fs::remove_dir_all(&dir);
    }
    let (stdout, dir) = caught.expect("no surveyed seed tripped the planted torn-publish bug");
    assert!(
        stdout.contains("cache oracle tripped"),
        "expected the cache oracle to catch the torn publish: {stdout}"
    );
    let minimized = stdout
        .lines()
        .find_map(|l| l.trim().strip_prefix("minimized schedule: "))
        .unwrap_or_else(|| panic!("no minimized schedule in output: {stdout}"));
    // The bug lives on the disk-fault path, so shrinking must keep a
    // disk class and discard the classes that are irrelevant to it.
    assert!(
        minimized.contains("kill=0,") && minimized.contains("flood=0,"),
        "kills and floods are irrelevant to the torn publish: {minimized}"
    );
    assert!(
        !minimized.contains("eio=0,") || !minimized.contains("short=0,"),
        "a disk fault class must survive shrinking: {minimized}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
