//! End-to-end crash-and-resume checks of `dashlat sweep`, driven through
//! the real binary: a supervisor killed with SIGKILL (or aborted at a
//! deterministic journal crash point) and resumed must publish a
//! `SweepLog` byte-identical to an uninterrupted run's, the atomic
//! output write must never leave a partial file behind, mismatched
//! journals must be refused, and the chaos/repro commands must honour
//! their documented exit codes.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Machine flags shared by every sweep in this file — small enough that
/// a full figure-3 sweep (6 cells) finishes in seconds, deterministic so
/// every run publishes identical bytes.
const MACHINE: [&str; 3] = ["--test-scale", "--processors", "4"];

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dashlat-sweep-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir scratch");
    dir
}

fn dashlat(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dashlat"))
        .args(args)
        .output()
        .expect("dashlat runs")
}

fn sweep_args(dir: &Path, extra: &[&str]) -> Vec<String> {
    let mut args = vec!["sweep".to_owned(), "3".to_owned()];
    args.extend(MACHINE.iter().map(|s| (*s).to_owned()));
    args.push("--journal".to_owned());
    args.push(dir.join("f3.journal").display().to_string());
    args.push("--out".to_owned());
    args.push(dir.join("f3.json").display().to_string());
    args.extend(extra.iter().map(|s| (*s).to_owned()));
    args
}

/// The uninterrupted reference log, computed once per test process.
fn reference_log() -> &'static Vec<u8> {
    static REFERENCE: OnceLock<Vec<u8>> = OnceLock::new();
    REFERENCE.get_or_init(|| {
        let dir = scratch("reference");
        let args = sweep_args(&dir, &[]);
        let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
        let out = dashlat(&argrefs);
        assert_eq!(out.status.code(), Some(0), "reference sweep: {out:?}");
        std::fs::read(dir.join("f3.json")).expect("reference log exists")
    })
}

fn count_cell_records(journal: &Path) -> usize {
    std::fs::read_to_string(journal).map_or(0, |t| {
        t.lines()
            .filter(|l| l.contains("\"kind\":\"cell\""))
            .count()
    })
}

/// SIGKILL the supervisor after at least one cell committed, then
/// `--resume` serially: the published log is byte-identical to the
/// uninterrupted run's, and the summary accounts for the replayed cells.
#[test]
fn sigkill_then_resume_serial_is_bit_identical() {
    let dir = scratch("sigkill");
    let args = sweep_args(&dir, &[]);
    let mut child = Command::new(env!("CARGO_BIN_EXE_dashlat"))
        .args(&args)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("sweep spawns");

    // Wait for the journal to commit at least one cell, then kill -9.
    // If the sweep wins the race and finishes first, the resume below
    // degenerates to an all-replay run — still a valid case.
    let journal = dir.join("f3.journal");
    let deadline = Instant::now() + Duration::from_secs(60);
    while count_cell_records(&journal) < 1 && Instant::now() < deadline {
        if child.try_wait().expect("try_wait").is_some() {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("kill -9");
    child.wait().expect("reap");
    assert!(
        count_cell_records(&journal) >= 1,
        "journal never committed a cell"
    );

    let resume = sweep_args(&dir, &["--resume"]);
    let argrefs: Vec<&str> = resume.iter().map(String::as_str).collect();
    let out = dashlat(&argrefs);
    assert_eq!(out.status.code(), Some(0), "resume: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("replayed from journal"), "{stdout}");
    let resumed = std::fs::read(dir.join("f3.json")).expect("resumed log");
    assert_eq!(
        &resumed,
        reference_log(),
        "resumed log diverged from the uninterrupted run"
    );
}

/// Abort at the deterministic crash point after exactly 3 journal
/// appends (header + 2 cells), then `--resume --jobs 2`: the parallel
/// resume replays exactly those 2 cells and still publishes identical
/// bytes.
#[test]
fn deterministic_crash_then_parallel_resume_is_bit_identical() {
    let dir = scratch("crashpoint");
    let args = sweep_args(&dir, &[]);
    let out = Command::new(env!("CARGO_BIN_EXE_dashlat"))
        .args(&args)
        .env("DASHLAT_CRASH_AFTER_JOURNAL_APPEND", "3")
        .output()
        .expect("sweep runs");
    assert_ne!(
        out.status.code(),
        Some(0),
        "crash point must abort: {out:?}"
    );
    assert_eq!(count_cell_records(&dir.join("f3.journal")), 2);
    assert!(!dir.join("f3.json").exists(), "no output before the crash");

    let resume = sweep_args(&dir, &["--resume", "--jobs", "2"]);
    let argrefs: Vec<&str> = resume.iter().map(String::as_str).collect();
    let out = dashlat(&argrefs);
    assert_eq!(out.status.code(), Some(0), "resume: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 replayed from journal"), "{stdout}");
    let resumed = std::fs::read(dir.join("f3.json")).expect("resumed log");
    assert_eq!(
        &resumed,
        reference_log(),
        "parallel resume diverged from the uninterrupted run"
    );
}

/// Abort *after the output temp file is written but before the rename*:
/// the destination must not exist at all (no torn halves), the journal
/// holds every cell, and a plain resume replays everything without
/// re-running a single simulation.
#[test]
fn crash_before_rename_leaves_no_partial_output() {
    let dir = scratch("rename");
    let args = sweep_args(&dir, &[]);
    let out = Command::new(env!("CARGO_BIN_EXE_dashlat"))
        .args(&args)
        .env("DASHLAT_CRASH_AFTER_TEMP_WRITE", "1")
        .output()
        .expect("sweep runs");
    assert_ne!(
        out.status.code(),
        Some(0),
        "crash point must abort: {out:?}"
    );
    assert!(
        !dir.join("f3.json").exists(),
        "atomic write must not expose a partial output file"
    );
    assert_eq!(count_cell_records(&dir.join("f3.journal")), 6);

    let resume = sweep_args(&dir, &["--resume"]);
    let argrefs: Vec<&str> = resume.iter().map(String::as_str).collect();
    let out = dashlat(&argrefs);
    assert_eq!(out.status.code(), Some(0), "resume: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("6 replayed from journal, 0 executed"),
        "{stdout}"
    );
    let resumed = std::fs::read(dir.join("f3.json")).expect("resumed log");
    assert_eq!(&resumed, reference_log());
}

/// Abort *after the rename and the directory fsync*: the publication is
/// complete, so the output must be findable under its final name with
/// the full contents — this is the durability the parent-directory fsync
/// buys (without it, a power loss here could forget the rename).
#[test]
fn crash_after_rename_leaves_a_durable_published_output() {
    let dir = scratch("postrename");
    let args = sweep_args(&dir, &[]);
    let out = Command::new(env!("CARGO_BIN_EXE_dashlat"))
        .args(&args)
        .env("DASHLAT_CRASH_AFTER_RENAME", "1")
        .output()
        .expect("sweep runs");
    assert_ne!(
        out.status.code(),
        Some(0),
        "crash point must abort: {out:?}"
    );
    // The simulated crash landed after the commit: the file must be
    // there, complete, and byte-identical to an uninterrupted run.
    let published = std::fs::read(dir.join("f3.json"))
        .expect("published output must survive a crash after the rename");
    assert_eq!(&published, reference_log());
    assert_eq!(count_cell_records(&dir.join("f3.journal")), 6);
}

/// A journal written under one configuration is refused under another
/// (fingerprint guard), and an existing journal without `--resume` is
/// refused outright.
#[test]
fn mismatched_or_unacknowledged_journals_are_refused() {
    let dir = scratch("mismatch");
    let args = sweep_args(&dir, &[]);
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
    assert_eq!(dashlat(&argrefs).status.code(), Some(0));

    // Same journal, different machine: the fingerprint catches it.
    let mut other = vec![
        "sweep".to_owned(),
        "3".to_owned(),
        "--test-scale".to_owned(),
        "--processors".to_owned(),
        "8".to_owned(),
        "--resume".to_owned(),
    ];
    other.push("--journal".to_owned());
    other.push(dir.join("f3.journal").display().to_string());
    other.push("--out".to_owned());
    other.push(dir.join("other.json").display().to_string());
    let argrefs: Vec<&str> = other.iter().map(String::as_str).collect();
    let out = dashlat(&argrefs);
    assert_ne!(out.status.code(), Some(0));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("fingerprint"), "{stderr}");

    // Same plan again, but without --resume: refuse, name the remedy.
    let args = sweep_args(&dir, &[]);
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
    let out = dashlat(&argrefs);
    assert_ne!(out.status.code(), Some(0));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--resume"), "{stderr}");
}

/// On a clean (unmutated) build, a short fixed-seed chaos campaign finds
/// nothing and exits 0 — the CI smoke contract.
#[test]
fn chaos_smoke_on_a_clean_build_exits_zero() {
    let dir = scratch("chaos-smoke");
    let out = dashlat(&[
        "chaos",
        "--test-scale",
        "--processors",
        "4",
        "--trials",
        "2",
        "--seed",
        "7",
        "--bundle-dir",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no failing schedule found"), "{stdout}");
    assert!(
        std::fs::read_dir(&dir).unwrap().next().is_none(),
        "a clean campaign writes no bundles"
    );
}

/// A bundle whose expectation cannot reproduce (it expects an invariant
/// violation from a configuration that passes) exits 9 and says why.
#[test]
fn repro_divergence_exits_9() {
    let dir = scratch("divergence");
    let bundle = dir.join("bogus.json");
    std::fs::write(
        &bundle,
        "{\n  \"kind\": \"dashlat-repro\",\n  \"version\": 1,\n  \"app\": \"lu\",\n  \
         \"machine_args\": [\"--test-scale\", \"--processors\", \"4\"],\n  \
         \"expect\": {\"code\": 4, \"error\": \"made-up invariant violation\"},\n  \
         \"origin\": \"hand-written test bundle\"\n}\n",
    )
    .expect("bundle written");
    let out = dashlat(&["repro", bundle.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(9), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("expects exit 4"), "{stderr}");
}

/// The `cell` subcommand (the `--isolate` child half) prints its record
/// as the last stdout line, parsable by the supervisor.
#[test]
fn cell_subcommand_prints_a_parsable_record() {
    let out = dashlat(&["cell", "--app", "lu", "--test-scale", "--processors", "4"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let last = stdout.lines().rev().find(|l| !l.trim().is_empty()).unwrap();
    assert!(
        last.starts_with("{\"ok\":") && last.ends_with('}'),
        "record line: {last}"
    );

    // An isolated sweep actually drives that protocol end to end.
    let dir = scratch("isolate");
    let args = sweep_args(&dir, &["--isolate", "--timeout-secs", "120"]);
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
    let out = dashlat(&argrefs);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let isolated = std::fs::read(dir.join("f3.json")).expect("isolated log");
    assert_eq!(
        &isolated,
        reference_log(),
        "isolated cells must measure identically to in-process cells"
    );
}
