//! The three benchmark applications, addressable by name.

use dashlat_cpu::ops::{Topology, Workload};
use dashlat_mem::layout::AddressSpaceBuilder;
use dashlat_workloads::lu::{Lu, LuParams};
use dashlat_workloads::mp3d::{Mp3d, Mp3dParams};
use dashlat_workloads::pthor::{Pthor, PthorParams};

use crate::config::AppScale;

/// One of the paper's benchmark applications (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum App {
    /// The particle-based wind-tunnel simulator.
    Mp3d,
    /// Dense LU decomposition.
    Lu,
    /// The Chandy–Misra parallel logic simulator.
    Pthor,
}

impl App {
    /// All three, in the order the paper's figures list them.
    pub const ALL: [App; 3] = [App::Mp3d, App::Lu, App::Pthor];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            App::Mp3d => "MP3D",
            App::Lu => "LU",
            App::Pthor => "PTHOR",
        }
    }

    /// Instantiates the application: allocates its shared data in `space`
    /// and returns the op generator.
    pub fn build(
        self,
        scale: AppScale,
        topo: Topology,
        space: &mut AddressSpaceBuilder,
        prefetch: bool,
    ) -> Box<dyn Workload> {
        match self {
            App::Mp3d => {
                let p = match scale {
                    AppScale::Paper => Mp3dParams::paper(),
                    AppScale::Test => Mp3dParams::test_scale(),
                };
                Box::new(Mp3d::new(p, topo, space, prefetch))
            }
            App::Lu => {
                let p = match scale {
                    AppScale::Paper => LuParams::paper(),
                    AppScale::Test => LuParams::test_scale(),
                };
                Box::new(Lu::new(p, topo, space, prefetch))
            }
            App::Pthor => {
                let p = match scale {
                    AppScale::Paper => PthorParams::paper(),
                    AppScale::Test => PthorParams::test_scale(),
                };
                Box::new(Pthor::new(p, topo, space, prefetch))
            }
        }
    }
}

impl std::fmt::Display for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for App {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "mp3d" => Ok(App::Mp3d),
            "lu" => Ok(App::Lu),
            "pthor" => Ok(App::Pthor),
            other => Err(format!(
                "unknown application {other:?} (expected mp3d, lu or pthor)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dashlat_cpu::ops::ProcId;

    #[test]
    fn builds_each_app() {
        for app in App::ALL {
            let topo = Topology::new(2, 1);
            let mut space = AddressSpaceBuilder::new(2);
            let mut w = app.build(AppScale::Test, topo, &mut space, false);
            assert_eq!(w.processes(), 2);
            // The generator produces something.
            let _ = w.next_op(ProcId(0));
            assert!(w.shared_bytes() > 0);
        }
    }

    #[test]
    fn names_and_parsing() {
        assert_eq!(App::Mp3d.name(), "MP3D");
        assert_eq!("pthor".parse::<App>(), Ok(App::Pthor));
        assert_eq!("LU".parse::<App>(), Ok(App::Lu));
        assert!("spice".parse::<App>().is_err());
        assert_eq!(App::Lu.to_string(), "LU");
    }
}
