//! In-process memo of finished cells, keyed by work fingerprint.
//!
//! The paper's figures reuse machine configurations heavily: across the
//! figure 2–6 presets each application names 22 cells of which only 13
//! are unique (the base machine alone appears in five figures). Cells are
//! deterministic functions of their *work identity* — the application
//! plus the full machine configuration, exactly what
//! [`crate::sweep::work_fingerprint`] hashes — so the second and later
//! occurrences of a configuration can be served from a memo instead of
//! re-simulated, and the served clone is byte-identical to what the
//! re-run would have produced.
//!
//! This is the in-process complement of the `dashlat-serve` disk cache:
//! the disk cache persists across processes but stores only summary
//! fields, while this memo holds complete [`Experiment`]s for the
//! lifetime of one sweep. The bench harness keeps one memo per
//! measurement pass (never shared between a serial and a parallel pass)
//! so both sides of a speedup comparison do the same work.
//!
//! Failures are never memoized, mirroring the serve cache policy: a
//! transient fault must stay visible in every cell it strikes, and a
//! panic must re-fire rather than be replayed from a stale clone.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::apps::App;
use crate::config::ExperimentConfig;
use crate::runner::{run_isolated, Experiment, RunFailure};
use crate::sweep::work_fingerprint;

/// Thread-safe memo of successful cell results for one sweep's lifetime.
///
/// Concurrent misses on the same fingerprint may both simulate (the memo
/// does not hold its lock across a simulation); both produce identical
/// results and the second insert is a harmless overwrite, so correctness
/// never depends on the race.
#[derive(Debug, Default)]
pub struct CellMemo {
    done: Mutex<HashMap<u64, Experiment>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CellMemo {
    /// An empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs one cell through the memo: a fingerprint hit returns a clone
    /// of the stored experiment without simulating; a miss simulates via
    /// [`run_isolated`] and stores the result if it succeeded.
    ///
    /// # Errors
    ///
    /// Propagates the [`RunFailure`] of the underlying run; failures are
    /// not memoized.
    pub fn run(&self, app: App, config: &ExperimentConfig) -> Result<Experiment, RunFailure> {
        let fp = work_fingerprint(app, config);
        if let Some(done) = self.done.lock().expect("memo poisoned").get(&fp) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(done.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let outcome = run_isolated(app, config);
        if let Ok(e) = &outcome {
            self.done
                .lock()
                .expect("memo poisoned")
                .insert(fp, e.clone());
        }
        outcome
    }

    /// Cells served from the memo without simulating.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cells that had to simulate.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct successful work identities currently stored.
    pub fn len(&self) -> usize {
        self.done.lock().expect("memo poisoned").len()
    }

    /// True when nothing has been stored yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;

    #[test]
    fn repeated_cells_hit_and_match_the_first_run() {
        let memo = CellMemo::new();
        let cfg = ExperimentConfig::base_test();
        let first = memo.run(App::Mp3d, &cfg).expect("first run");
        let second = memo.run(App::Mp3d, &cfg).expect("memo hit");
        assert_eq!(memo.hits(), 1);
        assert_eq!(memo.misses(), 1);
        assert_eq!(memo.len(), 1);
        assert_eq!(format!("{first:?}"), format!("{second:?}"));
    }

    #[test]
    fn distinct_configs_do_not_collide() {
        let memo = CellMemo::new();
        let cfg = ExperimentConfig::base_test();
        let rc = cfg.clone().with_rc();
        memo.run(App::Mp3d, &cfg).expect("base");
        memo.run(App::Mp3d, &rc).expect("rc");
        assert_eq!(memo.misses(), 2);
        assert_eq!(memo.len(), 2);
        // Same config, different app: also a distinct identity.
        memo.run(App::Lu, &cfg).expect("lu");
        assert_eq!(memo.misses(), 3);
        assert_eq!(memo.hits(), 0);
    }

    #[test]
    fn failures_are_not_memoized() {
        let memo = CellMemo::new();
        let mut poisoned = ExperimentConfig::base_test();
        poisoned.contexts = 0;
        assert!(memo.run(App::Mp3d, &poisoned).is_err());
        assert!(memo.run(App::Mp3d, &poisoned).is_err());
        assert_eq!(memo.hits(), 0);
        assert_eq!(memo.misses(), 2);
        assert!(memo.is_empty());
    }
}
