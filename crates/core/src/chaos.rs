//! Chaos fuzzing of fault schedules, with delta-debugging shrinking.
//!
//! The simulator's fault injection ([`dashlat_sim::fault::FaultPlan`]) is
//! *supposed* to be harmless: NACK storms, packet delays and transient
//! buffer-full events may slow a run arbitrarily but must never corrupt
//! coherence, strand a processor, or break determinism. [`run_chaos`]
//! hammers that contract: it draws randomized fault schedules from a
//! seeded RNG, runs each against the online invariant checker, and checks
//! the survivors against a fault-free determinism oracle. The first
//! schedule that provokes a failure is then *shrunk* — classes dropped,
//! magnitudes halved, the seed zeroed — to the smallest schedule that
//! still fails, which is what goes into the repro bundle a human debugs.

use dashlat_sim::fault::FaultPlan;
use dashlat_sim::rng::Xorshift;

use crate::apps::App;
use crate::config::ExperimentConfig;
use crate::runner::run_isolated;
use crate::sweep::CellFailure;

/// Knobs for one chaos campaign.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Fault schedules to try.
    pub trials: u32,
    /// Campaign seed: same seed, same schedules, same verdicts.
    pub seed: u64,
    /// Application to hammer.
    pub app: App,
    /// Machine configuration the schedules are applied to. Chaos forces
    /// `check_invariants` on regardless of the build-profile default —
    /// a fuzzer without its oracle finds nothing.
    pub base: ExperimentConfig,
    /// Re-run each surviving schedule and require identical elapsed
    /// cycles (the determinism oracle). Doubles the cost of clean trials.
    pub check_determinism: bool,
    /// Ceiling on shrink-phase simulator runs.
    pub max_shrink_runs: u32,
}

impl ChaosOptions {
    /// Defaults: 25 trials, seed 1, LU at test scale, determinism oracle
    /// on, 64 shrink runs.
    pub fn new(app: App, base: ExperimentConfig) -> Self {
        Self {
            trials: 25,
            seed: 1,
            app,
            base,
            check_determinism: true,
            max_shrink_runs: 64,
        }
    }
}

/// A failing schedule, before and after shrinking.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosFailure {
    /// Trial number (0-based) that found it.
    pub trial: u32,
    /// The schedule as drawn.
    pub original: FaultPlan,
    /// The smallest schedule that still fails.
    pub minimized: FaultPlan,
    /// The failure the *minimized* schedule provokes.
    pub error: String,
    /// CLI exit code for the failure class.
    pub code: u8,
    /// Which oracle tripped: `baseline` (the fault-free run itself
    /// failed — the bug needs no faults at all, and the minimal schedule
    /// is the empty one), `failure`, or `determinism`.
    pub oracle: String,
    /// Simulator runs spent shrinking.
    pub shrink_runs: u32,
}

/// The outcome of a chaos campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// Trials completed (== `trials` when nothing failed; 0 when the
    /// baseline itself failed).
    pub trials_run: u32,
    /// Elapsed pclocks of the fault-free baseline run; `None` when the
    /// baseline itself failed.
    pub clean_elapsed: Option<u64>,
    /// The first failing schedule found, if any (the campaign stops at
    /// the first failure — one minimal repro beats ten raw ones).
    pub failure: Option<ChaosFailure>,
}

/// The canonical empty schedule: reported as the "minimized" schedule
/// when the fault-free baseline itself fails, because a bug that needs
/// zero fault classes is already as shrunk as it gets.
pub const INACTIVE_PLAN: FaultPlan = FaultPlan {
    seed: 0,
    nack_prob: 0.0,
    max_retries: 1,
    backoff_base: 1,
    backoff_cap: 1,
    delay_prob: 0.0,
    max_delay: 1,
    buffer_full_prob: 0.0,
};

/// Number of fault classes a plan can actually fire (0..=3). This is the
/// size metric shrinking minimizes first: a one-class schedule tells the
/// debugging human *which* mechanism breaks the property.
pub fn active_classes(plan: &FaultPlan) -> u32 {
    u32::from(plan.nack_prob > 0.0)
        + u32::from(plan.delay_prob > 0.0)
        + u32::from(plan.buffer_full_prob > 0.0)
}

/// Draws one randomized fault schedule from discrete grids. Grids (not
/// continuous draws) keep schedules human-readable and make shrink steps
/// land on values a human would have picked anyway. Every draw has at
/// least one active class — an inactive plan tests nothing.
pub fn random_plan(rng: &mut Xorshift) -> FaultPlan {
    const PROBS: [f64; 4] = [0.0, 0.05, 0.2, 0.5];
    let mut plan = loop {
        let p = FaultPlan {
            seed: rng.next_u64(),
            nack_prob: PROBS[rng.index(PROBS.len())],
            max_retries: [1, 4, 16][rng.index(3)],
            backoff_base: [1, 8][rng.index(2)],
            backoff_cap: [64, 1024][rng.index(2)],
            delay_prob: [0.0, 0.1, 0.3][rng.index(3)],
            max_delay: [4, 32][rng.index(2)],
            buffer_full_prob: [0.0, 0.05, 0.2][rng.index(3)],
        };
        if p.is_active() {
            break p;
        }
    };
    // Heavy three-class schedules are rare under independent draws; the
    // first trial of every campaign is the kitchen sink on purpose.
    if rng.chance(0.2) {
        plan.nack_prob = plan.nack_prob.max(0.2);
        plan.delay_prob = plan.delay_prob.max(0.1);
        plan.buffer_full_prob = plan.buffer_full_prob.max(0.05);
    }
    plan
}

/// Generic greedy delta-debugging engine, shared by the machine-fault
/// shrinker below and the service torture harness's schedule shrinker
/// (`dashlat-serve`).
///
/// `simpler` lists candidate reductions of the current best, ordered
/// cheapest-explanation-first; any candidate equal to the current best
/// is skipped without spending a predicate call. Each candidate that
/// still makes `fails` return true becomes the new best and the
/// candidate list is regenerated from it. The loop ends at a fixpoint
/// (no candidate fails) or after `max_runs` predicate calls. Returns the
/// minimized value and the number of calls used.
pub fn shrink<P: Clone + PartialEq>(
    start: P,
    mut simpler: impl FnMut(&P) -> Vec<P>,
    mut fails: impl FnMut(&P) -> bool,
    max_runs: u32,
) -> (P, u32) {
    let mut best = start;
    let mut runs = 0u32;
    loop {
        let mut improved = false;
        for cand in simpler(&best) {
            if cand == best {
                continue;
            }
            if runs >= max_runs {
                return (best, runs);
            }
            runs += 1;
            if fails(&cand) {
                best = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            return (best, runs);
        }
    }
}

/// Greedy delta-debugging over a fault plan: repeatedly tries simpler
/// candidates, keeping each one that still makes `fails` return true,
/// until no candidate reduces further or `max_runs` predicate calls are
/// spent. Returns the minimized plan and the number of calls used.
///
/// Reduction order — cheapest explanation first:
/// 1. drop whole fault classes (NACK, delay, buffer-full);
/// 2. shrink magnitudes (halve probabilities, pull retry/backoff/delay
///    knobs to their floor);
/// 3. zero the schedule seed.
pub fn shrink_plan(
    start: FaultPlan,
    fails: impl FnMut(&FaultPlan) -> bool,
    max_runs: u32,
) -> (FaultPlan, u32) {
    shrink(start, plan_candidates, fails, max_runs)
}

/// The ordered reduction candidates for one fault plan (see
/// [`shrink_plan`] for the phase rationale).
fn plan_candidates(best: &FaultPlan) -> Vec<FaultPlan> {
    let mut cands = Vec::new();

    // Phase 1: drop whole classes.
    for drop in 0..3 {
        let mut cand = *best;
        match drop {
            0 => cand.nack_prob = 0.0,
            1 => cand.delay_prob = 0.0,
            _ => cand.buffer_full_prob = 0.0,
        }
        cands.push(cand);
    }

    // Phase 2: shrink magnitudes of whatever classes remain.
    for step in 0..6 {
        let mut cand = *best;
        match step {
            0 if cand.nack_prob > 0.01 => cand.nack_prob /= 2.0,
            1 if cand.delay_prob > 0.01 => cand.delay_prob /= 2.0,
            2 if cand.buffer_full_prob > 0.01 => cand.buffer_full_prob /= 2.0,
            3 if cand.max_delay > 1 => cand.max_delay = 1,
            4 if cand.max_retries > 1 => cand.max_retries = 1,
            5 if cand.backoff_base > 1 || cand.backoff_cap > 1 => {
                cand.backoff_base = 1;
                cand.backoff_cap = 1;
            }
            _ => continue,
        }
        cands.push(cand);
    }

    // Phase 3: canonicalize the seed.
    if best.seed != 0 {
        let mut cand = *best;
        cand.seed = 0;
        cands.push(cand);
    }

    cands
}

/// What one faulted run produced, reduced to what the oracles compare.
fn faulted_verdict(
    app: App,
    base: &ExperimentConfig,
    plan: &FaultPlan,
) -> Result<u64, CellFailure> {
    let cfg = base.clone().with_faults(*plan);
    run_isolated(app, &cfg)
        .map(|e| e.result.elapsed.as_u64())
        // Chaos classification: the *point* is that bounded fault
        // injection must never break the run, so every failure under
        // chaos is a finding — classify against faults_active = false.
        .map_err(|f| CellFailure::classify(&f, false))
}

/// Checks one schedule against the oracles. `Ok(())` = schedule is
/// clean; `Err((error, code, oracle))` = finding.
fn check_schedule(
    app: App,
    base: &ExperimentConfig,
    plan: &FaultPlan,
    check_determinism: bool,
) -> Result<(), (String, u8, String)> {
    match faulted_verdict(app, base, plan) {
        Err(f) => Err((f.error, f.code, "failure".into())),
        Ok(elapsed) => {
            if check_determinism {
                match faulted_verdict(app, base, plan) {
                    Err(f) => Err((
                        format!("second run failed where first passed: {}", f.error),
                        f.code,
                        "determinism".into(),
                    )),
                    Ok(second) if second != elapsed => Err((
                        format!(
                            "non-deterministic elapsed time under identical fault schedule: \
                             {elapsed} vs {second} pclocks"
                        ),
                        1,
                        "determinism".into(),
                    )),
                    Ok(_) => Ok(()),
                }
            } else {
                Ok(())
            }
        }
    }
}

/// Runs a chaos campaign. The fault-free baseline runs first: if it
/// *itself* fails, that is already the campaign's finding — the bug
/// needs no fault schedule at all, so the report carries
/// [`INACTIVE_PLAN`] as the (trivially minimal) schedule. Otherwise each
/// trial draws a schedule, runs it, and the campaign stops at the first
/// failure, shrinking it to minimal.
pub fn run_chaos(opts: &ChaosOptions) -> ChaosReport {
    let mut base = opts.base.clone().with_invariant_checks(true);
    base.faults = None;
    let clean_elapsed = match run_isolated(opts.app, &base) {
        Ok(e) => e.result.elapsed.as_u64(),
        Err(f) => {
            let failure = CellFailure::classify(&f, false);
            return ChaosReport {
                trials_run: 0,
                clean_elapsed: None,
                failure: Some(ChaosFailure {
                    trial: 0,
                    original: INACTIVE_PLAN,
                    minimized: INACTIVE_PLAN,
                    error: failure.error,
                    code: failure.code,
                    oracle: "baseline".into(),
                    shrink_runs: 0,
                }),
            };
        }
    };

    let mut rng = Xorshift::new(opts.seed);
    for trial in 0..opts.trials {
        let plan = random_plan(&mut rng);
        if let Err((_, _, oracle)) = check_schedule(opts.app, &base, &plan, opts.check_determinism)
        {
            // Shrink against the *same* oracle set; any failure counts as
            // reproducing (a smaller schedule tripping a different oracle
            // is still a smaller finding).
            let (minimized, shrink_runs) = shrink_plan(
                plan,
                |cand| check_schedule(opts.app, &base, cand, opts.check_determinism).is_err(),
                opts.max_shrink_runs,
            );
            // Re-derive the failure from the minimized schedule so the
            // bundle's expectation matches what a replay will see.
            let (error, code, final_oracle) =
                match check_schedule(opts.app, &base, &minimized, opts.check_determinism) {
                    Err(finding) => finding,
                    // Flaky-at-the-boundary shrink result; fall back to
                    // the original (which definitely failed this process).
                    Ok(()) => {
                        let (error, code, o) =
                            check_schedule(opts.app, &base, &plan, opts.check_determinism)
                                .err()
                                .unwrap_or((
                                    "failure did not reproduce on re-check".into(),
                                    1,
                                    oracle,
                                ));
                        return ChaosReport {
                            trials_run: trial + 1,
                            clean_elapsed: Some(clean_elapsed),
                            failure: Some(ChaosFailure {
                                trial,
                                original: plan,
                                minimized: plan,
                                error,
                                code,
                                oracle: o,
                                shrink_runs,
                            }),
                        };
                    }
                };
            return ChaosReport {
                trials_run: trial + 1,
                clean_elapsed: Some(clean_elapsed),
                failure: Some(ChaosFailure {
                    trial,
                    original: plan,
                    minimized,
                    error,
                    code,
                    oracle: final_oracle,
                    shrink_runs,
                }),
            };
        }
    }
    ChaosReport {
        trials_run: opts.trials,
        clean_elapsed: Some(clean_elapsed),
        failure: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plans_are_deterministic_and_always_active() {
        let draw = |seed: u64| {
            let mut rng = Xorshift::new(seed);
            (0..10).map(|_| random_plan(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        for plan in draw(7) {
            assert!(plan.is_active());
            assert!(active_classes(&plan) >= 1);
        }
        // Different seeds explore different schedules.
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn shrinker_converges_to_exactly_the_needed_classes() {
        // Synthetic predicate: fails iff NACKs AND delays are both
        // active — the shrinker must keep those two classes and strip
        // buffer-full, magnitudes and the seed.
        let start = FaultPlan {
            seed: 0xdead_beef,
            nack_prob: 0.5,
            max_retries: 16,
            backoff_base: 8,
            backoff_cap: 1024,
            delay_prob: 0.3,
            max_delay: 32,
            buffer_full_prob: 0.2,
        };
        let fails = |p: &FaultPlan| p.nack_prob > 0.0 && p.delay_prob > 0.0;
        assert!(fails(&start));
        let (min, runs) = shrink_plan(start, fails, 200);
        assert!(fails(&min), "shrinking must preserve the failure");
        assert_eq!(active_classes(&min), 2);
        assert_eq!(min.buffer_full_prob, 0.0);
        assert_eq!(min.seed, 0);
        assert_eq!(min.max_delay, 1);
        assert_eq!(min.max_retries, 1);
        assert!(min.nack_prob <= start.nack_prob / 2.0);
        assert!(runs <= 200);
    }

    #[test]
    fn shrinker_respects_the_run_budget() {
        let start = FaultPlan::heavy(1);
        let mut calls = 0u32;
        let (_, runs) = shrink_plan(
            start,
            |_| {
                calls += 1;
                true
            },
            5,
        );
        assert!(runs <= 5);
        assert_eq!(calls, runs);
    }

    #[test]
    fn shrinker_returns_start_when_nothing_smaller_fails() {
        let start = FaultPlan {
            seed: 0,
            nack_prob: 0.05,
            max_retries: 1,
            backoff_base: 1,
            backoff_cap: 1,
            delay_prob: 0.0,
            max_delay: 1,
            buffer_full_prob: 0.0,
        };
        // Only this exact plan fails.
        let (min, _) = shrink_plan(start, |p| *p == start, 50);
        assert_eq!(min, start);
    }
}
