//! Experiment configuration.
//!
//! One [`ExperimentConfig`] value describes a complete machine variant:
//! which latency techniques are enabled (caching, consistency model,
//! prefetching, contexts) and at what scale the application runs. The
//! paper's figures are all matrices of such variants.

use dashlat_analyze::PassKind;
use dashlat_cpu::config::{Consistency, ProcConfig};
use dashlat_cpu::ops::Topology;
use dashlat_mem::contention::NetworkModel;
use dashlat_mem::directory::DirectoryKind;
use dashlat_mem::system::MemConfig;
use dashlat_sim::fault::FaultPlan;
use dashlat_sim::Cycle;

/// Application data-set scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppScale {
    /// The paper's data sets (Table 2): MP3D 10,000 particles / 5 steps,
    /// LU 200×200, PTHOR ~11,000 gates / 5 clock cycles.
    Paper,
    /// Reduced data sets for tests and quick exploration.
    Test,
}

/// A complete machine + technique configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Number of processors (the paper simulates 16).
    pub processors: usize,
    /// Hardware contexts per processor.
    pub contexts: usize,
    /// Context-switch overhead in cycles (4 or 16 in the paper).
    pub switch_overhead: Cycle,
    /// Memory consistency model.
    pub consistency: Consistency,
    /// Whether shared data is cacheable.
    pub caching: bool,
    /// Whether software prefetching is enabled (and compiled into the
    /// applications).
    pub prefetching: bool,
    /// Use the full-size 64 KB/256 KB caches instead of the scaled
    /// 2 KB/4 KB ones.
    pub full_caches: bool,
    /// Model bus/network/memory queueing.
    pub contention: bool,
    /// Application data-set scale.
    pub scale: AppScale,
    /// Interconnection-network queueing model.
    pub network: NetworkModel,
    /// Directory organisation.
    pub directory: DirectoryKind,
    /// Perfect-lookahead window for reads (0 = the paper's blocking
    /// reads; see `dashlat_cpu::config::ProcConfig::read_lookahead`).
    pub read_lookahead: Cycle,
    /// Fault-injection plan applied to the whole machine (mesh/directory
    /// NACKs, packet delays, transient buffer-full events). `None`, or an
    /// inactive plan, runs clean.
    pub faults: Option<FaultPlan>,
    /// Check coherence invariants online after every memory access,
    /// failing the run on the first violation. Defaults to on in debug
    /// builds, off in release.
    pub check_invariants: bool,
    /// Enforce the write buffer's W→W FIFO retirement order as an online
    /// invariant (see `ProcConfig::enforce_wb_fifo` in `dashlat-cpu`).
    /// Off by default; chaos testing and supervised sweeps turn it on.
    pub enforce_wb_fifo: bool,
    /// Arm the deliberately seeded W→W write-buffer reordering bug
    /// (`ProcConfig::relaxation_bug`). Only compiled with the
    /// `verify-mutations` feature; exists so the chaos fuzzer's
    /// convergence tests can hunt a known-real bug.
    #[cfg(feature = "verify-mutations")]
    pub mutate_ww: bool,
    /// Analysis passes to run over the event stream after the run
    /// completes (empty = record nothing, analyze nothing). A non-empty
    /// list makes the machine keep an event log, which costs memory
    /// proportional to the reference count.
    pub analyze: Vec<PassKind>,
}

impl ExperimentConfig {
    /// The paper's base machine: 16 processors, single context, coherent
    /// caches (scaled), sequential consistency, no prefetching.
    pub fn base() -> Self {
        ExperimentConfig {
            processors: 16,
            contexts: 1,
            switch_overhead: Cycle(4),
            consistency: Consistency::Sc,
            caching: true,
            prefetching: false,
            full_caches: false,
            contention: true,
            scale: AppScale::Paper,
            network: NetworkModel::Ports,
            directory: DirectoryKind::FullMap,
            read_lookahead: Cycle(0),
            faults: None,
            check_invariants: cfg!(debug_assertions),
            enforce_wb_fifo: false,
            #[cfg(feature = "verify-mutations")]
            mutate_ww: false,
            analyze: Vec::new(),
        }
    }

    /// Same machine at test scale (for CI).
    pub fn base_test() -> Self {
        ExperimentConfig {
            scale: AppScale::Test,
            processors: 8,
            ..Self::base()
        }
    }

    /// Returns a copy with shared-data caching disabled (Figure 2's
    /// baseline).
    pub fn without_caching(mut self) -> Self {
        self.caching = false;
        self
    }

    /// Returns a copy using release consistency.
    pub fn with_rc(mut self) -> Self {
        self.consistency = Consistency::Rc;
        self
    }

    /// Returns a copy using the given consistency model (the full SC / PC /
    /// WC / RC spectrum).
    pub fn with_consistency(mut self, model: Consistency) -> Self {
        self.consistency = model;
        self
    }

    /// Returns a copy with software prefetching enabled.
    pub fn with_prefetching(mut self) -> Self {
        self.prefetching = true;
        self
    }

    /// Returns a copy with `contexts` hardware contexts at the given
    /// switch overhead.
    pub fn with_contexts(mut self, contexts: usize, switch_overhead: Cycle) -> Self {
        assert!(contexts > 0);
        self.contexts = contexts;
        self.switch_overhead = switch_overhead;
        self
    }

    /// Returns a copy with the full-size (64 KB / 256 KB) caches.
    pub fn with_full_caches(mut self) -> Self {
        self.full_caches = true;
        self
    }

    /// Returns a copy using the 2-D mesh network model.
    pub fn with_mesh_network(mut self) -> Self {
        self.network = NetworkModel::Mesh2D;
        self
    }

    /// Returns a copy using a limited-pointer (Dir_i-B) directory.
    pub fn with_limited_directory(mut self, pointers: usize) -> Self {
        self.directory = DirectoryKind::LimitedPtr { pointers };
        self
    }

    /// Returns a copy with a perfect read-lookahead window (the §4.1
    /// out-of-order what-if; 0 = blocking reads).
    pub fn with_read_lookahead(mut self, window: Cycle) -> Self {
        self.read_lookahead = window;
        self
    }

    /// Returns a copy that runs under the given fault-injection plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Returns a copy with online invariant checking forced on or off.
    pub fn with_invariant_checks(mut self, on: bool) -> Self {
        self.check_invariants = on;
        self
    }

    /// Returns a copy with the write-buffer W→W FIFO-order invariant
    /// enforced.
    pub fn with_wb_fifo_enforcement(mut self) -> Self {
        self.enforce_wb_fifo = true;
        self
    }

    /// Returns a copy with the seeded W→W reordering bug armed (see
    /// [`ExperimentConfig::mutate_ww`]).
    #[cfg(feature = "verify-mutations")]
    pub fn with_ww_mutation(mut self) -> Self {
        self.mutate_ww = true;
        self
    }

    /// Returns a copy that records an event log during the run and feeds
    /// it to the given analysis passes afterwards.
    pub fn with_analysis(mut self, passes: Vec<PassKind>) -> Self {
        self.analyze = passes;
        self
    }

    /// The machine topology this configuration implies.
    pub fn topology(&self) -> Topology {
        Topology::new(self.processors, self.contexts)
    }

    /// The processor configuration this implies.
    pub fn proc_config(&self) -> ProcConfig {
        let mut cfg = match self.consistency {
            Consistency::Sc => ProcConfig::sc_baseline(),
            Consistency::Pc => ProcConfig::pc_baseline(),
            Consistency::Wc => ProcConfig::wc_baseline(),
            Consistency::Rc => ProcConfig::rc_baseline(),
        };
        cfg.prefetching = self.prefetching;
        cfg.contexts = self.contexts;
        cfg.switch_overhead = self.switch_overhead;
        cfg.read_lookahead = self.read_lookahead;
        cfg.faults = self.faults;
        cfg.check_invariants = self.check_invariants;
        cfg.enforce_wb_fifo = self.enforce_wb_fifo;
        #[cfg(feature = "verify-mutations")]
        {
            cfg.relaxation_bug = self.mutate_ww;
        }
        cfg
    }

    /// The memory-system configuration this implies.
    pub fn mem_config(&self) -> MemConfig {
        let mut cfg = if self.full_caches {
            MemConfig::dash_full(self.processors)
        } else {
            MemConfig::dash_scaled(self.processors)
        };
        cfg.caching = self.caching;
        cfg.contention = self.contention;
        cfg.network = self.network;
        cfg.directory = self.directory;
        cfg.faults = self.faults;
        cfg
    }

    /// Renders this configuration as the machine-flag argument list the
    /// CLI parser accepts, such that parsing the result reproduces the
    /// configuration exactly — the inverse the repro-bundle format relies
    /// on (`dashlat repro` replays a failure from its recorded cmdline).
    ///
    /// Every knob is emitted explicitly (including the
    /// `--check-invariants` / `--no-check-invariants` pair, whose default
    /// differs between debug and release builds) so a bundle replays
    /// identically regardless of which build parses it.
    pub fn to_cli_args(&self) -> Vec<String> {
        let mut args: Vec<String> = Vec::new();
        let mut flag = |f: &str| args.push(f.to_string());
        let consistency = self.consistency.to_string().to_ascii_lowercase();
        flag("--processors");
        flag(&self.processors.to_string());
        flag("--consistency");
        flag(&consistency);
        flag("--contexts");
        flag(&self.contexts.to_string());
        flag("--switch");
        flag(&self.switch_overhead.as_u64().to_string());
        if self.prefetching {
            flag("--prefetch");
        }
        if !self.caching {
            flag("--no-cache");
        }
        if self.full_caches {
            flag("--full-caches");
        }
        if !self.contention {
            flag("--no-contention");
        }
        if self.network == NetworkModel::Mesh2D {
            flag("--mesh");
        }
        if let DirectoryKind::LimitedPtr { pointers } = self.directory {
            flag("--dir-pointers");
            flag(&pointers.to_string());
        }
        if self.read_lookahead > Cycle(0) {
            flag("--lookahead");
            flag(&self.read_lookahead.as_u64().to_string());
        }
        if self.scale == AppScale::Test {
            flag("--test-scale");
        }
        if let Some(plan) = &self.faults {
            flag("--faults");
            flag(&plan.to_spec());
        }
        flag(if self.check_invariants {
            "--check-invariants"
        } else {
            "--no-check-invariants"
        });
        if self.enforce_wb_fifo {
            flag("--enforce-wb-fifo");
        }
        #[cfg(feature = "verify-mutations")]
        if self.mutate_ww {
            flag("--mutate-ww");
        }
        if !self.analyze.is_empty() {
            let list: Vec<&str> = self.analyze.iter().copied().map(PassKind::name).collect();
            flag("--analyze");
            flag(&list.join(","));
        }
        args
    }

    /// A short label like `"RC+pf 4ctx/4"` for report columns.
    pub fn label(&self) -> String {
        let mut s = self.consistency.to_string();
        if !self.caching {
            s = format!("NoCache {s}");
        }
        if self.prefetching {
            s.push_str("+pf");
        }
        if self.contexts > 1 {
            s.push_str(&format!(
                " {}ctx/{}",
                self.contexts,
                self.switch_overhead.as_u64()
            ));
        }
        if self.faults.is_some_and(|f| f.is_active()) {
            s.push_str(" +faults");
        }
        s
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::base()
    }
}

/// Extracts the machine flags from `args`, removing everything it
/// consumes; unrecognized tokens are left in place for the caller to
/// validate. This is the single parser behind the CLI's machine flags,
/// `dashlat repro` bundle replay, and the `dashlat serve` job-submission
/// API — all three accept exactly the argument list
/// [`ExperimentConfig::to_cli_args`] emits, so a configuration round-trips
/// bit-exactly through any of them.
///
/// # Errors
///
/// Returns a user-facing message for a malformed or out-of-range value.
#[allow(clippy::too_many_lines)]
pub fn parse_machine_args(args: &mut Vec<String>) -> Result<ExperimentConfig, String> {
    let mut cfg = ExperimentConfig::base();
    let mut contexts: usize = 1;
    let mut switch: u64 = 4;
    let take_value = |args: &mut Vec<String>, i: usize, flag: &str| -> Result<String, String> {
        if i + 1 >= args.len() {
            return Err(format!("{flag} needs a value"));
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Ok(v)
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--processors" => {
                let v = take_value(args, i, "--processors")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("bad processor count {v:?}"))?;
                if !(1..=64).contains(&n) {
                    return Err("--processors must be 1..=64".into());
                }
                cfg.processors = n;
            }
            "--consistency" => {
                let v = take_value(args, i, "--consistency")?;
                cfg = cfg.with_consistency(v.parse()?);
            }
            "--contexts" => {
                let v = take_value(args, i, "--contexts")?;
                contexts = v.parse().map_err(|_| format!("bad context count {v:?}"))?;
                if contexts == 0 {
                    return Err("--contexts must be positive".into());
                }
            }
            "--switch" => {
                let v = take_value(args, i, "--switch")?;
                switch = v
                    .parse()
                    .map_err(|_| format!("bad switch overhead {v:?}"))?;
            }
            "--prefetch" => {
                args.remove(i);
                cfg = cfg.with_prefetching();
            }
            "--no-cache" => {
                args.remove(i);
                cfg = cfg.without_caching();
            }
            "--full-caches" => {
                args.remove(i);
                cfg = cfg.with_full_caches();
            }
            "--no-contention" => {
                args.remove(i);
                cfg.contention = false;
            }
            "--mesh" => {
                args.remove(i);
                cfg = cfg.with_mesh_network();
            }
            "--dir-pointers" => {
                let v = take_value(args, i, "--dir-pointers")?;
                let n: usize = v.parse().map_err(|_| format!("bad pointer count {v:?}"))?;
                if n == 0 {
                    return Err("--dir-pointers must be positive".into());
                }
                cfg = cfg.with_limited_directory(n);
            }
            "--lookahead" => {
                let v = take_value(args, i, "--lookahead")?;
                let n: u64 = v
                    .parse()
                    .map_err(|_| format!("bad lookahead window {v:?}"))?;
                cfg = cfg.with_read_lookahead(Cycle(n));
            }
            "--test-scale" => {
                args.remove(i);
                cfg.scale = AppScale::Test;
            }
            "--jobs" => {
                let v = take_value(args, i, "--jobs")?;
                let n: usize = v.parse().map_err(|_| format!("bad job count {v:?}"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                // Worker count is a property of the sweep engine, not of
                // the simulated machine, so it pins the process-wide
                // default instead of living in the config (which takes
                // part in bit-identical comparisons).
                crate::pool::set_default_jobs(Some(n));
            }
            "--faults" => {
                let v = take_value(args, i, "--faults")?;
                cfg = cfg.with_faults(FaultPlan::from_spec(&v)?);
            }
            "--check-invariants" => {
                args.remove(i);
                cfg = cfg.with_invariant_checks(true);
            }
            "--no-check-invariants" => {
                args.remove(i);
                cfg = cfg.with_invariant_checks(false);
            }
            "--enforce-wb-fifo" => {
                args.remove(i);
                cfg = cfg.with_wb_fifo_enforcement();
            }
            "--mutate-ww" => {
                args.remove(i);
                #[cfg(feature = "verify-mutations")]
                {
                    cfg = cfg.with_ww_mutation();
                }
                #[cfg(not(feature = "verify-mutations"))]
                {
                    return Err(
                        "--mutate-ww requires a build with the verify-mutations feature".into(),
                    );
                }
            }
            "--analyze" => {
                let v = take_value(args, i, "--analyze")?;
                cfg = cfg.with_analysis(dashlat_analyze::parse_passes(&v)?);
            }
            _ => i += 1,
        }
    }
    Ok(cfg.with_contexts(contexts, Cycle(switch)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_matches_paper_machine() {
        let c = ExperimentConfig::base();
        assert_eq!(c.processors, 16);
        assert_eq!(c.contexts, 1);
        assert_eq!(c.consistency, Consistency::Sc);
        assert!(c.caching);
        assert!(!c.prefetching);
        let mem = c.mem_config();
        assert_eq!(mem.primary_bytes, 2048);
        assert_eq!(mem.secondary_bytes, 4096);
    }

    #[test]
    fn builder_combinators() {
        let c = ExperimentConfig::base()
            .with_rc()
            .with_prefetching()
            .with_contexts(4, Cycle(16))
            .with_full_caches();
        assert_eq!(c.consistency, Consistency::Rc);
        assert!(c.prefetching);
        assert_eq!(c.contexts, 4);
        assert_eq!(c.switch_overhead, Cycle(16));
        assert_eq!(c.mem_config().primary_bytes, 64 * 1024);
        assert_eq!(c.topology().processes(), 64);
        let pc = c.proc_config();
        assert!(pc.prefetching);
        assert_eq!(pc.contexts, 4);
    }

    #[test]
    fn uncached_variant() {
        let c = ExperimentConfig::base().without_caching();
        assert!(!c.mem_config().caching);
        assert!(c.label().contains("NoCache"));
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(ExperimentConfig::base().label(), "SC");
        assert_eq!(ExperimentConfig::base().with_rc().label(), "RC");
        assert_eq!(
            ExperimentConfig::base()
                .with_rc()
                .with_prefetching()
                .label(),
            "RC+pf"
        );
        assert_eq!(
            ExperimentConfig::base().with_contexts(2, Cycle(4)).label(),
            "SC 2ctx/4"
        );
        assert_eq!(
            ExperimentConfig::base()
                .with_faults(FaultPlan::light(7))
                .label(),
            "SC +faults"
        );
    }

    #[test]
    fn machine_args_round_trip_through_the_parser() {
        let cfg = ExperimentConfig::base()
            .with_rc()
            .with_prefetching()
            .with_contexts(2, Cycle(16))
            .with_mesh_network()
            .with_limited_directory(4)
            .with_faults(FaultPlan::light(42))
            .with_invariant_checks(true);
        let mut args = cfg.to_cli_args();
        let parsed = parse_machine_args(&mut args).expect("parses");
        assert!(args.is_empty(), "nothing left over: {args:?}");
        assert_eq!(parsed, cfg);
        // Unknown tokens are left in place, not errors.
        let mut extra = vec!["--app".to_string(), "lu".to_string()];
        let _ = parse_machine_args(&mut extra).expect("parses");
        assert_eq!(extra, vec!["--app".to_string(), "lu".to_string()]);
        // Malformed values are user-facing errors.
        let mut bad = vec!["--processors".to_string(), "sixteen".to_string()];
        assert!(parse_machine_args(&mut bad).is_err());
    }

    #[test]
    fn faults_flow_into_both_sides() {
        let plan = FaultPlan::light(42);
        let c = ExperimentConfig::base()
            .with_faults(plan)
            .with_invariant_checks(true);
        assert_eq!(c.proc_config().faults, Some(plan));
        assert!(c.proc_config().check_invariants);
        assert_eq!(c.mem_config().faults, Some(plan));
        // An inactive plan leaves the label untouched.
        let quiet = ExperimentConfig::base().with_faults(FaultPlan::default());
        assert_eq!(quiet.label(), "SC");
    }
}
