//! Presets reproducing every table and figure of the paper.
//!
//! Each function takes the base machine configuration (use
//! [`ExperimentConfig::base`] for the paper's machine,
//! [`ExperimentConfig::base_test`] for quick runs) and returns the
//! rendered-ready structure. The experiment index lives in `DESIGN.md`.

use dashlat_cpu::machine::RunError;
use dashlat_mem::latency::LatencyTable;
use dashlat_sim::Cycle;

use crate::apps::App;
use crate::config::ExperimentConfig;
use crate::report::{AppFigure, Figure, Table2, Table2Row};
use crate::runner::{run, run_matrix, Experiment, RunFailure};

/// Renders Table 1: the memory-operation latencies of the simulated
/// machine (configuration, not measurement).
pub fn table1() -> String {
    let t = LatencyTable::dash();
    let row = |name: &str, c: Cycle| format!("  {name:<44} {:>4} pclock\n", c.as_u64());
    let mut s = String::from("Table 1: Latency for memory system operations (1 pclock = 30 ns)\n");
    s.push_str("Read Operations\n");
    s.push_str(&row("Hit in Primary Cache", t.read_primary_hit));
    s.push_str(&row("Fill from Secondary Cache", t.read_fill_secondary));
    s.push_str(&row("Fill from Local Node", t.read_fill_local));
    s.push_str(&row(
        "Fill from Home Node (Home != Local)",
        t.read_fill_home,
    ));
    s.push_str(&row(
        "Fill from Remote Node (Remote != Home != Local)",
        t.read_fill_remote,
    ));
    s.push_str("Write Operations\n");
    s.push_str(&row("Owned by Secondary Cache", t.write_owned_secondary));
    s.push_str(&row("Owned by Local Node", t.write_owned_local));
    s.push_str(&row(
        "Owned in Home Node (Home != Local)",
        t.write_owned_home,
    ));
    s.push_str(&row(
        "Owned in Remote Node (Remote != Home != Local)",
        t.write_owned_remote,
    ));
    s
}

/// Table 2: general statistics for the benchmarks, measured on the base
/// machine.
///
/// # Errors
///
/// Propagates a failed run.
pub fn table2(base: &ExperimentConfig) -> Result<Table2, RunError> {
    let rows = App::ALL
        .iter()
        .map(|&app| run(app, base).map(|e| Table2Row::from_experiment(&e)))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Table2 { rows })
}

/// A figure assembled from a resilient sweep: the bars that completed,
/// plus every cell that failed (so partial results are never silently
/// presented as complete).
#[derive(Debug, Clone)]
pub struct FigureReport {
    /// The renderable figure. App groups whose *baseline* (first) bar
    /// failed are dropped — the remaining bars could not be normalized —
    /// but their failures are still listed.
    pub figure: Figure,
    /// `(app, config label, failure)` for each cell that did not finish.
    pub failures: Vec<(String, String, RunFailure)>,
}

impl FigureReport {
    /// True when every cell of every app group completed.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }
}

fn figure_from_matrix(title: &str, configs: &[ExperimentConfig]) -> FigureReport {
    let mut groups = Vec::with_capacity(App::ALL.len());
    let mut failures = Vec::new();
    for app in App::ALL {
        let report = run_matrix(app, configs);
        for (label, f) in report.failures() {
            failures.push((app.name().to_owned(), label.to_owned(), f.clone()));
        }
        let ok: Vec<Experiment> = report.successes().into_iter().cloned().collect();
        if !ok.is_empty() && report.cells[0].outcome.is_ok() {
            groups.push(AppFigure::from_experiments(&ok));
        }
    }
    FigureReport {
        figure: Figure {
            title: title.to_owned(),
            groups,
        },
        failures,
    }
}

/// The machine-variant columns of one paper figure (2–6), in bar order.
/// This is the single source of truth for the figure presets — the figure
/// functions, the bench harness and the parallel-determinism tests all
/// sweep exactly these matrices.
///
/// # Panics
///
/// Panics for a figure number outside 2..=6.
pub fn figure_configs(figure: u8, base: &ExperimentConfig) -> Vec<ExperimentConfig> {
    let sw = Cycle(4);
    match figure {
        2 => vec![base.clone().without_caching(), base.clone()],
        3 => vec![base.clone(), base.clone().with_rc()],
        4 => vec![
            base.clone(),
            base.clone().with_prefetching(),
            base.clone().with_rc(),
            base.clone().with_rc().with_prefetching(),
        ],
        5 => vec![
            base.clone(),
            base.clone().with_contexts(2, Cycle(16)),
            base.clone().with_contexts(4, Cycle(16)),
            base.clone().with_contexts(2, Cycle(4)),
            base.clone().with_contexts(4, Cycle(4)),
        ],
        6 => vec![
            base.clone(),
            base.clone().with_contexts(2, sw),
            base.clone().with_contexts(4, sw),
            base.clone().with_rc(),
            base.clone().with_rc().with_contexts(2, sw),
            base.clone().with_rc().with_contexts(4, sw),
            base.clone().with_rc().with_prefetching(),
            base.clone()
                .with_rc()
                .with_prefetching()
                .with_contexts(2, sw),
            base.clone()
                .with_rc()
                .with_prefetching()
                .with_contexts(4, sw),
        ],
        n => panic!("no figure {n}: the paper's sweep figures are 2..=6"),
    }
}

/// Figure 2: effect of caching shared data (no-cache baseline vs coherent
/// caches, both under SC). Failed cells are reported, not fatal.
pub fn figure2(base: &ExperimentConfig) -> FigureReport {
    figure_from_matrix(
        "Figure 2: Effect of caching shared data (normalized to no-cache)",
        &figure_configs(2, base),
    )
}

/// Figure 3: effect of relaxing the consistency model (SC vs RC).
/// Failed cells are reported, not fatal.
pub fn figure3(base: &ExperimentConfig) -> FigureReport {
    figure_from_matrix(
        "Figure 3: Effect of relaxing the consistency model (normalized to SC)",
        &figure_configs(3, base),
    )
}

/// Figure 4: effect of prefetching, without and with, under SC and RC.
/// Bars: SC, SC+pf, RC, RC+pf — normalized to SC. Failed cells are
/// reported, not fatal.
pub fn figure4(base: &ExperimentConfig) -> FigureReport {
    figure_from_matrix(
        "Figure 4: Effect of prefetching (normalized to SC without prefetching)",
        &figure_configs(4, base),
    )
}

/// Figure 5: effect of multiple contexts under SC: 1 context, then 2 and 4
/// contexts at 16-cycle and at 4-cycle switch overhead. Failed cells are
/// reported, not fatal.
pub fn figure5(base: &ExperimentConfig) -> FigureReport {
    figure_from_matrix(
        "Figure 5: Effect of multiple contexts under SC (normalized to 1 context)",
        &figure_configs(5, base),
    )
}

/// Figure 6: combining the schemes (4-cycle switch): SC with 1/2/4
/// contexts, RC with 1/2/4 contexts, RC+prefetch with 1/2/4 contexts.
/// Failed cells are reported, not fatal.
pub fn figure6(base: &ExperimentConfig) -> FigureReport {
    figure_from_matrix(
        "Figure 6: Effect of combining the schemes (4-cycle switch, normalized to SC/1ctx)",
        &figure_configs(6, base),
    )
}

/// The concluding claim (§7): the best technique combination per
/// application, against both the cached-SC machine and the no-cache
/// machine (the paper's overall 4–7× figure composes the caching gain with
/// the best latency-tolerance combination).
#[derive(Debug, Clone)]
pub struct Summary {
    /// Per-app: (best experiment, speedup vs cached SC, speedup vs no-cache).
    pub best: Vec<(Experiment, f64, f64)>,
}

impl Summary {
    /// Renders the summary lines.
    pub fn render(&self) -> String {
        let mut s = String::from("Best combinations (paper §7: overall gains of 4x-7x)\n");
        for (e, vs_sc, vs_nc) in &self.best {
            s.push_str(&format!(
                "  {:<6} best = {:<18} {:>5.2}x over cached SC, {:>5.2}x over no-cache SC\n",
                e.app.name(),
                e.config.label(),
                vs_sc,
                vs_nc
            ));
        }
        s
    }
}

/// Searches the full technique matrix for each application's best
/// combination.
///
/// # Errors
///
/// Propagates a failed run.
pub fn summary(base: &ExperimentConfig) -> Result<Summary, RunError> {
    let sw = Cycle(4);
    let candidates = [
        base.clone().with_rc(),
        base.clone().with_rc().with_prefetching(),
        base.clone().with_rc().with_contexts(2, sw),
        base.clone().with_rc().with_contexts(4, sw),
        base.clone()
            .with_rc()
            .with_prefetching()
            .with_contexts(2, sw),
        base.clone()
            .with_rc()
            .with_prefetching()
            .with_contexts(4, sw),
    ];
    let mut best = Vec::new();
    for app in App::ALL {
        let cached_sc = run(app, base)?;
        let no_cache = run(app, &base.clone().without_caching())?;
        let mut best_e: Option<Experiment> = None;
        for c in &candidates {
            let e = run(app, c)?;
            if best_e
                .as_ref()
                .is_none_or(|b| e.result.elapsed < b.result.elapsed)
            {
                best_e = Some(e);
            }
        }
        let e = best_e.expect("candidates non-empty");
        let vs_sc = cached_sc.result.elapsed.as_u64() as f64 / e.result.elapsed.as_u64() as f64;
        let vs_nc = no_cache.result.elapsed.as_u64() as f64 / e.result.elapsed.as_u64() as f64;
        best.push((e, vs_sc, vs_nc));
    }
    Ok(Summary { best })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_the_nine_rows() {
        let t = table1();
        assert!(t.contains("Hit in Primary Cache"));
        assert!(t.contains("90 pclock") || t.contains("  90 pclock"));
        assert!(t.contains("Owned in Remote Node"));
    }

    #[test]
    fn figure3_shapes_hold_at_test_scale() {
        let report = figure3(&ExperimentConfig::base_test());
        assert!(report.is_complete(), "failures: {:?}", report.failures);
        let f = report.figure;
        assert_eq!(f.groups.len(), 3);
        for g in &f.groups {
            // RC bar is never (materially) taller than the SC baseline.
            // PTHOR gets slack: its amount of work is timing-dependent
            // (task activation order changes which gates re-evaluate — the
            // paper notes the same busy-time variability in §2.2), which
            // at test scale can outweigh the consistency-model gain.
            let limit = if g.app == "PTHOR" { 115.0 } else { 100.5 };
            assert!(
                g.bars[1].scaled.total() <= limit,
                "{}: RC bar {:.1} exceeds SC baseline",
                g.app,
                g.bars[1].scaled.total()
            );
            // RC write stall is (near) zero.
            assert!(
                g.bars[1].scaled.write_stall < 1.0,
                "{}: RC write stall {:.1}%",
                g.app,
                g.bars[1].scaled.write_stall
            );
        }
        let text = f.render();
        assert!(text.contains("MP3D") && text.contains("LU") && text.contains("PTHOR"));
    }

    #[test]
    fn figure2_caching_wins_everywhere() {
        let report = figure2(&ExperimentConfig::base_test());
        assert!(report.is_complete(), "failures: {:?}", report.failures);
        for g in &report.figure.groups {
            assert!(
                g.speedup(1) > 1.3,
                "{}: caching speedup only {:.2}",
                g.app,
                g.speedup(1)
            );
        }
    }
}
