//! Subprocess isolation for supervised sweep cells.
//!
//! `dashlat sweep --isolate` — and, since the service-hardening work,
//! `dashlat serve --isolate` — run every cell as `dashlat cell --app …
//! <machine flags>` in a child process, so a cell that aborts, is killed,
//! or wedges past its wall-clock deadline takes down only itself. The
//! child prints exactly one JSON record on its last stdout line
//! (`{"ok":N}` or `{"err":{…}}`); everything else about the outcome is
//! derived from that line plus the exit status.
//!
//! # Worker-kill injection
//!
//! The service torture harness needs to SIGKILL workers on a seeded
//! schedule to prove the daemon survives. [`arm_kills`] arms a
//! process-global plan: while armed, each spawned cell draws once and,
//! if selected, is killed after a seeded delay inside the poll loop.
//! The parent observes an ordinary signal death — indistinguishable from
//! the OOM killer — and applies its normal transient-retry policy.

use std::io::Read;
use std::process::{Command, Stdio};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::sweep::{CellFailure, FailureClass, SweepCell};
use dashlat_sim::json::Value;
use dashlat_sim::Xorshift;

/// How often the supervisor polls a running cell.
const POLL: Duration = Duration::from_millis(20);

/// Environment variable overriding the binary used to spawn cell
/// subprocesses. By default the current executable is re-invoked (it is
/// the `dashlat` binary when running `dashlat sweep`/`serve`/`chaos`);
/// tests and drivers hosted in other binaries point this at a built
/// `dashlat`.
pub const CELL_BIN_ENV: &str = "DASHLAT_CELL_BIN";

/// A seeded plan for killing cell subprocesses, for the torture harness.
#[derive(Debug, Clone, PartialEq)]
pub struct KillPlan {
    /// Seed for the deterministic draw stream.
    pub seed: u64,
    /// Probability each spawned cell is selected for a SIGKILL.
    pub kill_prob: f64,
    /// A selected cell is killed after a uniform delay in
    /// `[0, max_delay_ms]`, so kills land at different points of the
    /// cell's run.
    pub max_delay_ms: u64,
}

struct ArmedKills {
    plan: KillPlan,
    rng: Xorshift,
    kills: u64,
}

static KILLS: Mutex<Option<ArmedKills>> = Mutex::new(None);

fn kills_lock() -> std::sync::MutexGuard<'static, Option<ArmedKills>> {
    match KILLS.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Arms the process-global worker-kill plan, replacing any previous one
/// and resetting the draw stream.
pub fn arm_kills(plan: KillPlan) {
    let rng = Xorshift::new(plan.seed);
    *kills_lock() = Some(ArmedKills {
        plan,
        rng,
        kills: 0,
    });
}

/// Disarms worker-kill injection and returns how many cells were killed
/// since [`arm_kills`]. Safe to call when nothing is armed.
pub fn disarm_kills() -> u64 {
    kills_lock().take().map_or(0, |a| a.kills)
}

/// Draws the kill decision for one spawned cell: `None` (spare it) or
/// the delay to wait before killing.
fn draw_kill() -> Option<Duration> {
    let mut guard = kills_lock();
    let armed = guard.as_mut()?;
    if !armed.rng.chance(armed.plan.kill_prob) {
        return None;
    }
    let delay = if armed.plan.max_delay_ms == 0 {
        0
    } else {
        armed.rng.below(armed.plan.max_delay_ms + 1)
    };
    Some(Duration::from_millis(delay))
}

fn record_kill() {
    if let Some(armed) = kills_lock().as_mut() {
        armed.kills += 1;
    }
}

/// True when `failure` describes the *worker* dying (timeout, signal,
/// spawn failure, crash before reporting) rather than the simulation
/// inside it failing. The serve daemon's crash-loop circuit breaker
/// counts only these: a cell that runs to completion and reports a
/// deadlock is a result, not a crash.
pub fn is_worker_crash(failure: &CellFailure) -> bool {
    let e = failure.error.as_str();
    e.contains("wall-clock timeout")
        || e.contains("killed by a signal")
        || e.contains("without an ok record")
        || e.contains("without a record")
        || e.contains("cannot spawn cell subprocess")
        || e.contains("cannot locate the dashlat binary")
}

/// Runs one cell in a child `dashlat cell` process with a wall-clock
/// deadline. Timeouts and signal kills are transient (the machine may
/// just be overloaded — and fault-heavy schedules legitimately run
/// long); a child that exits nonzero *with* a record reports that
/// record's classification; a child that dies without a record is a
/// permanent failure (it crashed before the runner could even classify).
pub fn run_cell_subprocess(cell: &SweepCell, timeout: Duration) -> Result<u64, CellFailure> {
    let exe = match std::env::var(CELL_BIN_ENV) {
        Ok(bin) => std::path::PathBuf::from(bin),
        Err(_) => std::env::current_exe().map_err(|e| {
            CellFailure::transient(format!("cannot locate the dashlat binary: {e}"))
        })?,
    };
    let mut cmd = Command::new(exe);
    cmd.arg("cell")
        .arg("--app")
        .arg(cell.app.name().to_ascii_lowercase())
        .args(cell.config.to_cli_args())
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    let mut child = cmd
        .spawn()
        .map_err(|e| CellFailure::transient(format!("cannot spawn cell subprocess: {e}")))?;
    let kill_after = draw_kill();

    let start = Instant::now();
    let status = loop {
        match child.try_wait() {
            Ok(Some(status)) => break status,
            Ok(None) => {
                if let Some(delay) = kill_after {
                    if start.elapsed() >= delay {
                        // Injected worker kill: a real SIGKILL, so the
                        // child dies exactly like an OOM-killed worker
                        // and the normal signal-death path below runs.
                        let _ = child.kill();
                        record_kill();
                    }
                }
                if start.elapsed() >= timeout {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(CellFailure::transient(format!(
                        "cell exceeded its {}s wall-clock timeout and was killed",
                        timeout.as_secs()
                    )));
                }
                std::thread::sleep(POLL);
            }
            Err(e) => {
                return Err(CellFailure::transient(format!(
                    "waiting for cell subprocess: {e}"
                )))
            }
        }
    };

    // One short record line fits far inside the pipe buffer, so reading
    // after exit cannot deadlock.
    let mut stdout = String::new();
    if let Some(mut s) = child.stdout.take() {
        let _ = s.read_to_string(&mut stdout);
    }
    let record = stdout.lines().rev().find(|l| !l.trim().is_empty());

    if status.success() {
        return record
            .and_then(parse_ok)
            .ok_or_else(|| CellFailure::transient("cell exited 0 without an ok record"));
    }
    if let Some(failure) = record.and_then(parse_err) {
        return Err(failure);
    }
    match status.code() {
        // No exit code means a signal (SIGKILL from the OOM killer, a
        // stray SIGTERM, or an injected worker kill): re-runnable, same
        // policy as a timeout.
        None => Err(CellFailure::transient(format!(
            "cell was killed by a signal ({status})"
        ))),
        Some(code) => Err(CellFailure {
            error: format!("cell exited {code} without a record (crashed before reporting)"),
            code: 1,
            class: FailureClass::Permanent,
        }),
    }
}

fn parse_ok(line: &str) -> Option<u64> {
    Value::parse(line).ok()?.get("ok")?.as_u64()
}

fn parse_err(line: &str) -> Option<CellFailure> {
    let v = Value::parse(line).ok()?;
    let err = v.get("err")?;
    Some(CellFailure {
        error: err.get("error")?.as_str()?.to_owned(),
        code: err.get("code")?.as_u64()? as u8,
        class: err.get("class")?.as_str()?.parse().ok()?,
    })
}

/// Renders the record line `dashlat cell` prints — kept next to the
/// parsers above so the two sides of the pipe stay in sync.
pub fn render_record(outcome: &Result<u64, CellFailure>) -> String {
    match outcome {
        Ok(elapsed) => format!("{{\"ok\":{elapsed}}}"),
        Err(f) => format!(
            "{{\"err\":{{\"error\":{},\"code\":{},\"class\":{}}}}}",
            dashlat_sim::json::quote(&f.error),
            f.code,
            dashlat_sim::json::quote(&f.class.to_string())
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_lines_round_trip() {
        assert_eq!(parse_ok(&render_record(&Ok(42))), Some(42));
        let f = CellFailure {
            error: "invariant \"x\"\nbroken".into(),
            code: 4,
            class: FailureClass::Permanent,
        };
        let rendered = render_record(&Err(f.clone()));
        assert!(!rendered.contains('\n'), "record must be one line");
        assert_eq!(parse_err(&rendered), Some(f));
        assert_eq!(parse_ok("garbage"), None);
        assert_eq!(parse_err("{\"ok\":1}"), None);
    }

    #[test]
    fn kill_plan_draws_are_deterministic_and_disarm_is_safe() {
        // Drawing directly (not spawning) keeps this test hermetic.
        let draw_all = |seed: u64| -> Vec<Option<Duration>> {
            arm_kills(KillPlan {
                seed,
                kill_prob: 0.5,
                max_delay_ms: 40,
            });
            let draws = (0..64).map(|_| draw_kill()).collect();
            disarm_kills();
            draws
        };
        let a = draw_all(5);
        let b = draw_all(5);
        assert_eq!(a, b, "same seed, same kill schedule");
        assert!(a.iter().any(Option::is_some) && a.iter().any(Option::is_none));
        assert!(a.iter().flatten().all(|d| *d <= Duration::from_millis(40)));
        assert_eq!(disarm_kills(), 0, "disarm when disarmed is a no-op");
        assert_eq!(draw_kill(), None, "disarmed draws never kill");
    }

    #[test]
    fn worker_crash_classification() {
        let crash = |msg: &str| is_worker_crash(&CellFailure::transient(msg.to_string()));
        assert!(crash(
            "cell exceeded its 5s wall-clock timeout and was killed"
        ));
        assert!(crash("cell was killed by a signal (signal: 9 (SIGKILL))"));
        assert!(crash(
            "cell exited 134 without a record (crashed before reporting)"
        ));
        assert!(crash("cannot spawn cell subprocess: No such file"));
        assert!(!crash("deadlock: all processors stalled at cycle 1810"));
    }
}
