#![deny(missing_docs)]

//! `dashlat` — experiment layer of the `dash-latency` reproduction.
//!
//! This crate glues the substrates together and exposes the paper's
//! experiments as a library:
//!
//! * [`config::ExperimentConfig`] — one machine variant (caching on/off,
//!   SC/RC, prefetching, context count/switch overhead, cache sizes).
//! * [`apps::App`] — the three benchmark applications of Table 2.
//! * [`runner::run`] — wire an application to a machine and measure it.
//! * [`report`] — the paper's normalized-execution-time bar groups and
//!   Table 2 rendering.
//! * [`experiments`] — one preset per paper table/figure
//!   ([`experiments::figure2`] … [`experiments::figure6`],
//!   [`experiments::table1`], [`experiments::table2`],
//!   [`experiments::summary`]).
//! * [`sweeplog`] — ordered sweep results with partial-JSON degradation
//!   and crash-safe atomic publication.
//! * [`sweep`] — the crash-safe supervised sweep: write-ahead journal,
//!   resume, failure classification, retry with backoff, repro bundles.
//! * [`chaos`] — fault-schedule fuzzing against the invariant checker
//!   with delta-debugging shrinking of failing schedules.
//!
//! # Example
//!
//! Compare SC and RC for LU on a small machine:
//!
//! ```
//! use dashlat::apps::App;
//! use dashlat::config::ExperimentConfig;
//! use dashlat::runner::run;
//!
//! # fn main() -> Result<(), dashlat_cpu::machine::RunError> {
//! let base = ExperimentConfig::base_test();
//! let sc = run(App::Lu, &base)?;
//! let rc = run(App::Lu, &base.clone().with_rc())?;
//! assert!(rc.result.elapsed <= sc.result.elapsed);
//! # Ok(())
//! # }
//! ```

pub mod apps;
pub mod cellcache;
pub mod chaos;
pub mod config;
pub mod experiments;
pub mod isolate;
pub mod pool;
pub mod report;
pub mod runner;
pub mod sweep;
pub mod sweeplog;

pub use apps::App;
pub use cellcache::CellMemo;
pub use config::{parse_machine_args, AppScale, ExperimentConfig};
pub use pool::{
    effective_jobs, hardware_cores, par_indexed_map, par_indexed_map_while, set_default_jobs,
};
pub use report::{AppFigure, Figure, FigureBar, Table2, Table2Row};
pub use runner::{
    matrix_jobs, run, run_isolated, run_matrix, run_matrix_jobs, run_matrix_jobs_memo, Experiment,
    MatrixCell, MatrixReport, RunFailure,
};
pub use sweep::{
    cell_fingerprint, retry_backoff_ms, run_supervised, run_supervised_controlled,
    work_fingerprint, SweepControl,
};
pub use sweeplog::{SweepBatch, SweepLog, SweepPoint};
