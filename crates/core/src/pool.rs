//! Scoped worker pool for parallel sweeps.
//!
//! Every paper figure is a matrix of *independent, deterministic* cells:
//! each cell builds its own machine, memory system and workload from a
//! `(config, seed)` pair and shares nothing mutable with its neighbours. A
//! sweep therefore parallelises embarrassingly — the only requirements are
//! that results come back keyed by cell index (never by completion order)
//! and that a panicking cell stays isolated, both of which
//! [`par_indexed_map`] guarantees. Runs themselves stay single-threaded,
//! so per-cell results are bit-identical to serial execution.
//!
//! The worker count defaults to [`std::thread::available_parallelism`] and
//! can be pinned process-wide with [`set_default_jobs`] (the CLI and bench
//! binaries wire their `--jobs N` flag to it).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Process-wide default worker count; 0 means "not set, use
/// `available_parallelism`".
static DEFAULT_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Pins the process-wide default worker count used when a sweep is run
/// without an explicit `jobs` argument. `None` restores the default
/// (`available_parallelism`). Values are clamped to at least 1.
pub fn set_default_jobs(jobs: Option<usize>) {
    DEFAULT_JOBS.store(jobs.unwrap_or(0), Ordering::Relaxed);
}

/// The parallelism the hardware actually offers
/// ([`std::thread::available_parallelism`], 1 when unknown). Sweeps clamp
/// their worker count to this: workers beyond the core count only add
/// scheduler thrash (the source of the sub-1.0 "speedups" in early BENCH
/// files), and bench reports record it so throughput numbers can be read
/// against the machine that produced them.
pub fn hardware_cores() -> usize {
    thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The effective worker count: the explicit `requested` value if given,
/// else the process-wide default from [`set_default_jobs`], else
/// [`std::thread::available_parallelism`]. Never less than 1.
pub fn effective_jobs(requested: Option<usize>) -> usize {
    requested
        .filter(|&n| n > 0)
        .or_else(|| {
            let d = DEFAULT_JOBS.load(Ordering::Relaxed);
            (d > 0).then_some(d)
        })
        .unwrap_or_else(|| thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get))
}

/// Applies `f` to every item on a scoped pool of `jobs` workers, returning
/// the results **in input order** (keyed by item index, not completion
/// order).
///
/// Work is handed out through a shared atomic cursor, so cell-to-worker
/// assignment varies between runs — which is exactly why results are
/// written into their input slot instead of being collected. `f` must
/// contain its own panic isolation if items may panic (the runner's cells
/// wrap each run in `catch_unwind`); a panic that does escape `f` aborts
/// the whole sweep when the scope joins.
///
/// With `jobs == 1`, or a single item, `f` runs inline on the caller's
/// thread: the serial path stays allocation- and thread-free.
pub fn par_indexed_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<R>>> =
        items.iter().map(|_| std::sync::Mutex::new(None)).collect();
    thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = f(i, item);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

/// Like [`par_indexed_map`], but checks `keep_going()` before starting
/// each item and stops handing out work once it returns `false`. Items
/// that never started are `None` in the result; items already in flight
/// when the signal flips are finished normally (drained), so a caller
/// that journals per-item results never loses a completed item.
///
/// This is the cooperative-cancellation seam the long-running sweep
/// service uses: a cancelled or deadline-expired job stops at the next
/// cell boundary with every finished cell intact.
pub fn par_indexed_map_while<T, R, F, C>(
    jobs: usize,
    items: &[T],
    keep_going: C,
    f: F,
) -> Vec<Option<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
    C: Fn() -> bool + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs == 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| keep_going().then(|| f(i, t)))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<R>>> =
        items.iter().map(|_| std::sync::Mutex::new(None)).collect();
    thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                if !keep_going() {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = f(i, item);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("result slot poisoned"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_indexed_map(8, &items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_path_matches_parallel() {
        let items: Vec<u64> = (0..37).collect();
        let serial = par_indexed_map(1, &items, |_, &x| x * x);
        let parallel = par_indexed_map(4, &items, |_, &x| x * x);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single_item() {
        let none: Vec<u8> = Vec::new();
        assert!(par_indexed_map(4, &none, |_, &x| x).is_empty());
        assert_eq!(par_indexed_map(4, &[7u8], |_, &x| x), vec![7]);
    }

    #[test]
    fn cancellable_map_runs_everything_when_never_cancelled() {
        let items: Vec<usize> = (0..40).collect();
        for jobs in [1, 4] {
            let out = par_indexed_map_while(jobs, &items, || true, |_, &x| x + 1);
            assert_eq!(out.len(), 40);
            assert!(out.iter().all(Option::is_some));
            assert_eq!(out[7], Some(8));
        }
    }

    #[test]
    fn cancellable_map_drains_in_flight_items_and_skips_the_rest() {
        use std::sync::atomic::AtomicBool;
        let items: Vec<usize> = (0..100).collect();
        let stop = AtomicBool::new(false);
        // Each of the 4 workers takes one of items 0..=3 first; item 3
        // flips the flag while 0..=2 hold their workers until it is set,
        // so no worker can fetch item 4 before cancellation is visible.
        let out = par_indexed_map_while(
            4,
            &items,
            || !stop.load(Ordering::SeqCst),
            |i, &x| {
                if i == 3 {
                    stop.store(true, Ordering::SeqCst);
                } else {
                    while !stop.load(Ordering::SeqCst) {
                        std::thread::yield_now();
                    }
                }
                x
            },
        );
        // Exactly the in-flight items drained; everything else skipped.
        for (i, slot) in out.iter().enumerate() {
            if i <= 3 {
                assert_eq!(*slot, Some(i), "in-flight item {i} must drain");
            } else {
                assert_eq!(*slot, None, "item {i} must not start after cancel");
            }
        }
    }

    #[test]
    fn cancellable_map_serial_path_respects_the_signal() {
        use std::sync::atomic::AtomicBool;
        let items: Vec<usize> = (0..10).collect();
        let stop = AtomicBool::new(false);
        let out = par_indexed_map_while(
            1,
            &items,
            || !stop.load(Ordering::Relaxed),
            |i, &x| {
                if i == 2 {
                    stop.store(true, Ordering::Relaxed);
                }
                x
            },
        );
        assert_eq!(out[..3], [Some(0), Some(1), Some(2)]);
        assert!(out[3..].iter().all(Option::is_none));
    }

    #[test]
    fn effective_jobs_resolution() {
        assert!(effective_jobs(None) >= 1);
        assert_eq!(effective_jobs(Some(3)), 3);
        set_default_jobs(Some(2));
        assert_eq!(effective_jobs(None), 2);
        assert_eq!(effective_jobs(Some(5)), 5);
        set_default_jobs(None);
        assert!(effective_jobs(None) >= 1);
    }
}
