//! Rendering experiments the way the paper presents them.
//!
//! Every figure in the paper is a set of per-application stacked bars of
//! *normalized execution time*: each bar's sections are percentages of the
//! application's baseline run. [`Figure`] holds that structure and renders
//! it as a text table; [`Table2`] reproduces the benchmark-statistics
//! table.

use std::fmt::Write as _;

use dashlat_cpu::breakdown::ScaledBreakdown;
use dashlat_sim::Cycle;

use crate::runner::Experiment;

/// One stacked bar: a labelled, baseline-normalized breakdown.
#[derive(Debug, Clone)]
pub struct FigureBar {
    /// Configuration label (e.g. `"RC+pf 2ctx/4"`).
    pub label: String,
    /// Sections as percentages of the app's baseline execution time.
    pub scaled: ScaledBreakdown,
    /// Raw elapsed time of the run.
    pub elapsed: Cycle,
}

/// All bars of one application within a figure.
#[derive(Debug, Clone)]
pub struct AppFigure {
    /// Application name.
    pub app: String,
    /// Bars, first one being the 100% baseline.
    pub bars: Vec<FigureBar>,
}

impl AppFigure {
    /// Builds the bars from experiments, normalizing every run against the
    /// first one (the baseline).
    ///
    /// # Panics
    ///
    /// Panics if `experiments` is empty or mixes applications.
    pub fn from_experiments(experiments: &[Experiment]) -> AppFigure {
        assert!(!experiments.is_empty(), "a figure needs at least one run");
        let app = experiments[0].app;
        assert!(
            experiments.iter().all(|e| e.app == app),
            "experiments mix applications"
        );
        let baseline_total = experiments[0].result.aggregate.total();
        let bars = experiments
            .iter()
            .map(|e| FigureBar {
                label: e.config.label(),
                scaled: e.result.aggregate.scaled_percent(baseline_total),
                elapsed: e.result.elapsed,
            })
            .collect();
        AppFigure {
            app: app.name().to_owned(),
            bars,
        }
    }

    /// Speedup of bar `i` over the baseline (elapsed-time ratio).
    pub fn speedup(&self, i: usize) -> f64 {
        self.bars[0].elapsed.as_u64().max(1) as f64 / self.bars[i].elapsed.as_u64().max(1) as f64
    }
}

/// A full figure: a titled set of per-application bar groups.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Figure title (e.g. `"Figure 3: Effect of relaxing the consistency model"`).
    pub title: String,
    /// One group per application.
    pub groups: Vec<AppFigure>,
}

impl Figure {
    /// Renders the figure as a text table of normalized percentages.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let _ = writeln!(out, "{}", "=".repeat(self.title.len()));
        for group in &self.groups {
            let _ = writeln!(out, "\n{}", group.app);
            let _ = writeln!(
                out,
                "  {:<18} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} | {:>6} {:>8}",
                "config",
                "busy",
                "read",
                "write",
                "sync",
                "pf",
                "switch",
                "idle",
                "nosw",
                "total",
                "speedup"
            );
            for (i, bar) in group.bars.iter().enumerate() {
                let s = &bar.scaled;
                let _ = writeln!(
                    out,
                    "  {:<18} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1} | {:>6.1} {:>7.2}x",
                    bar.label,
                    s.busy,
                    s.read_stall,
                    s.write_stall,
                    s.sync_stall,
                    s.prefetch_overhead,
                    s.switching,
                    s.all_idle,
                    s.no_switch,
                    s.total(),
                    group.speedup(i),
                );
            }
        }
        out
    }
}

impl Figure {
    /// Renders the figure as horizontal stacked bars (2 % per character),
    /// the closest text rendering of the paper's stacked-bar charts.
    ///
    /// Legend: `B` busy, `r` read stall, `w` write stall, `s` sync,
    /// `p` prefetch overhead, `x` switching, `i` all idle, `n` no-switch.
    pub fn render_chart(&self) -> String {
        const SCALE: f64 = 2.0; // percent per character
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let _ = writeln!(
            out,
            "legend: B=busy r=read w=write s=sync p=prefetch x=switch i=idle n=noswitch ({SCALE}%/char)"
        );
        for group in &self.groups {
            let _ = writeln!(out, "\n{}", group.app);
            for bar in &group.bars {
                let s = &bar.scaled;
                let mut glyphs = String::new();
                let mut carry = 0.0f64;
                // Largest-remainder-free greedy: accumulate fractional
                // characters across sections so the bar length tracks the
                // total faithfully.
                for (ch, v) in [
                    ('B', s.busy),
                    ('r', s.read_stall),
                    ('w', s.write_stall),
                    ('s', s.sync_stall),
                    ('p', s.prefetch_overhead),
                    ('x', s.switching),
                    ('i', s.all_idle),
                    ('n', s.no_switch),
                ] {
                    let exact = v / SCALE + carry;
                    let n = exact.round().max(0.0) as usize;
                    carry = exact - n as f64;
                    glyphs.extend(std::iter::repeat_n(ch, n));
                }
                let _ = writeln!(out, "  {:<18} |{glyphs}| {:.1}", bar.label, s.total());
            }
        }
        out
    }
}

impl Figure {
    /// Exports the figure as CSV (one row per bar) for external plotting:
    /// `app,config,busy,read,write,sync,prefetch,switch,idle,noswitch,total,speedup`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "app,config,busy,read,write,sync,prefetch,switch,idle,noswitch,total,speedup\n",
        );
        for group in &self.groups {
            for (i, bar) in group.bars.iter().enumerate() {
                let s = &bar.scaled;
                let _ = writeln!(
                    out,
                    "{},{},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.3}",
                    group.app,
                    bar.label,
                    s.busy,
                    s.read_stall,
                    s.write_stall,
                    s.sync_stall,
                    s.prefetch_overhead,
                    s.switching,
                    s.all_idle,
                    s.no_switch,
                    s.total(),
                    group.speedup(i),
                );
            }
        }
        out
    }
}

/// One row of the paper's Table 2 ("General statistics for the
/// benchmarks"), measured from a run.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Application name.
    pub program: String,
    /// Useful (busy) cycles, in thousands, summed over processors.
    pub useful_kcycles: u64,
    /// Shared reads issued, thousands.
    pub shared_reads_k: u64,
    /// Shared writes issued, thousands.
    pub shared_writes_k: u64,
    /// Lock acquisitions.
    pub locks: u64,
    /// Barrier arrivals.
    pub barriers: u64,
    /// Shared data size in Kbytes.
    pub shared_kbytes: u64,
}

impl Table2Row {
    /// Extracts the row from an experiment.
    pub fn from_experiment(e: &Experiment) -> Table2Row {
        Table2Row {
            program: e.app.name().to_owned(),
            useful_kcycles: e.result.aggregate.busy.as_u64() / 1000,
            shared_reads_k: e.result.shared_reads / 1000,
            shared_writes_k: e.result.shared_writes / 1000,
            locks: e.result.lock_acquires,
            barriers: e.result.barrier_arrivals,
            shared_kbytes: e.shared_bytes / 1024,
        }
    }
}

/// The benchmark-statistics table.
#[derive(Debug, Clone, Default)]
pub struct Table2 {
    /// One row per application.
    pub rows: Vec<Table2Row>,
}

impl Table2 {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<8} {:>14} {:>14} {:>15} {:>9} {:>9} {:>18}",
            "Program",
            "Useful (K)",
            "Sh.Reads (K)",
            "Sh.Writes (K)",
            "Locks",
            "Barriers",
            "Shared Data (KB)"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<8} {:>14} {:>14} {:>15} {:>9} {:>9} {:>18}",
                r.program,
                r.useful_kcycles,
                r.shared_reads_k,
                r.shared_writes_k,
                r.locks,
                r.barriers,
                r.shared_kbytes
            );
        }
        out
    }
}

/// Text summary of hit rates and utilization quoted in the paper's prose.
pub fn describe_run(e: &Experiment) -> String {
    let m = &e.result.mem;
    format!(
        "{}: elapsed {} | util {:.0}% | read hits {} | write hits {} | \
         invalidations {} | run-length median {} | switches {}",
        e.id(),
        e.result.elapsed,
        e.result.utilization() * 100.0,
        m.read_hits,
        m.write_hits,
        m.invalidations_sent,
        e.result
            .run_lengths
            .approx_median()
            .map_or_else(|| "n/a".into(), |c| c.to_string()),
        e.result.context_switches,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::App;
    use crate::config::ExperimentConfig;
    use crate::runner::run;

    fn two_runs() -> Vec<Experiment> {
        vec![
            run(App::Lu, &ExperimentConfig::base_test()).expect("runs"),
            run(App::Lu, &ExperimentConfig::base_test().with_rc()).expect("runs"),
        ]
    }

    #[test]
    fn baseline_bar_is_100_percent() {
        let g = AppFigure::from_experiments(&two_runs());
        assert!((g.bars[0].scaled.total() - 100.0).abs() < 1e-6);
        assert!((g.speedup(0) - 1.0).abs() < 1e-9);
        assert!(g.speedup(1) >= 1.0);
    }

    #[test]
    fn render_contains_labels_and_numbers() {
        let f = Figure {
            title: "Figure 3 (test)".into(),
            groups: vec![AppFigure::from_experiments(&two_runs())],
        };
        let text = f.render();
        assert!(text.contains("Figure 3 (test)"));
        assert!(text.contains("LU"));
        assert!(text.contains("SC"));
        assert!(text.contains("RC"));
        assert!(text.contains("100.0"));
    }

    #[test]
    fn chart_bars_track_totals() {
        let f = Figure {
            title: "chart".into(),
            groups: vec![AppFigure::from_experiments(&two_runs())],
        };
        let chart = f.render_chart();
        assert!(chart.contains("legend:"));
        for line in chart.lines().filter(|l| l.contains('|')) {
            // Bar length in characters ~ total / 2%.
            let bar: String = line.split('|').nth(1).expect("bar section").to_string();
            let total: f64 = line
                .rsplit(' ')
                .next()
                .expect("total")
                .parse()
                .expect("numeric total");
            let expect = total / 2.0;
            assert!(
                (bar.len() as f64 - expect).abs() <= 4.0,
                "bar of {} chars vs total {total}",
                bar.len()
            );
        }
    }

    #[test]
    fn csv_has_one_row_per_bar_plus_header() {
        let f = Figure {
            title: "csv".into(),
            groups: vec![AppFigure::from_experiments(&two_runs())],
        };
        let csv = f.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 2);
        assert!(lines[0].starts_with("app,config,busy"));
        assert!(lines[1].starts_with("LU,SC,"));
        assert!(lines[2].starts_with("LU,RC,"));
        // Every data row has 12 fields.
        for row in &lines[1..] {
            assert_eq!(row.split(',').count(), 12, "bad row {row:?}");
        }
    }

    #[test]
    fn table2_row_extraction() {
        let e = run(App::Mp3d, &ExperimentConfig::base_test()).expect("runs");
        let row = Table2Row::from_experiment(&e);
        assert_eq!(row.program, "MP3D");
        assert!(row.shared_reads_k > 0);
        assert_eq!(row.locks, 0, "MP3D uses no locks");
        assert!(row.barriers > 0);
        assert!(row.shared_kbytes > 0);
        let t = Table2 { rows: vec![row] };
        let text = t.render();
        assert!(text.contains("MP3D"));
        assert!(text.contains("Locks"));
    }

    #[test]
    fn describe_run_mentions_key_stats() {
        let e = run(App::Lu, &ExperimentConfig::base_test()).expect("runs");
        let d = describe_run(&e);
        assert!(d.contains("LU/SC"));
        assert!(d.contains("util"));
        assert!(d.contains("read hits"));
    }

    #[test]
    #[should_panic(expected = "mix applications")]
    fn mixed_apps_rejected() {
        let runs = vec![
            run(App::Lu, &ExperimentConfig::base_test()).expect("runs"),
            run(App::Mp3d, &ExperimentConfig::base_test()).expect("runs"),
        ];
        let _ = AppFigure::from_experiments(&runs);
    }
}
