//! Wiring and running one experiment.
//!
//! [`run`] wires one configuration and runs it to completion. [`run_matrix`]
//! runs a whole column of configurations *resiliently*: each experiment is
//! isolated (panics are caught, structured [`RunError`]s recorded), the
//! sweep continues past failures, and the caller gets a [`MatrixReport`]
//! with a per-configuration outcome instead of losing the healthy runs to
//! one poisoned cell.

use std::panic::{catch_unwind, AssertUnwindSafe};

use dashlat_analyze::AnalysisReport;
use dashlat_cpu::machine::{Machine, RunError, RunResult};
use dashlat_mem::layout::AddressSpaceBuilder;
use dashlat_mem::system::MemorySystem;
use dashlat_sim::Cycle;

use crate::apps::App;
use crate::config::ExperimentConfig;

/// A finished experiment: the configuration and its measurements.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Which application ran.
    pub app: App,
    /// The machine variant.
    pub config: ExperimentConfig,
    /// Everything measured.
    pub result: RunResult,
    /// Shared-data footprint reported by the workload.
    pub shared_bytes: u64,
    /// Analysis report, when the configuration requested passes.
    pub analysis: Option<AnalysisReport>,
}

impl Experiment {
    /// Short `APP/label` identifier.
    pub fn id(&self) -> String {
        format!("{}/{}", self.app, self.config.label())
    }
}

/// Why one matrix cell failed to produce an experiment.
#[derive(Debug, Clone)]
pub enum RunFailure {
    /// The machine reported a structured error (budget, deadlock,
    /// livelock, invariant violation).
    Error(RunError),
    /// The run panicked; the payload message is preserved.
    Panic(String),
    /// The run completed but the happens-before pass found data races —
    /// the measurements exist (inside the report's experiment) but the
    /// program is not properly labeled, so the paper's latency comparison
    /// does not apply to it.
    RaceDetected(Box<AnalysisReport>),
}

impl std::fmt::Display for RunFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunFailure::Error(e) => write!(f, "{e}"),
            RunFailure::Panic(msg) => write!(f, "panic: {msg}"),
            RunFailure::RaceDetected(report) => {
                let races = report.hb.as_ref().map_or(0, |h| h.races_total);
                write!(
                    f,
                    "race detected: {} ({} processes) is not properly labeled, {races} race(s)",
                    report.subject, report.nprocs
                )
            }
        }
    }
}

impl std::error::Error for RunFailure {}

impl RunFailure {
    /// The CLI exit code of this failure class (the documented 0–9
    /// scheme): 6 race detected, 2 deadlock, 3 livelock, 4 invariant
    /// violation, 1 everything else. Kept next to the type so every
    /// consumer (CLI dispatch, journal records, repro bundles) agrees.
    pub fn exit_code(&self) -> u8 {
        match self {
            RunFailure::RaceDetected(_) => 6,
            RunFailure::Error(RunError::Deadlock { .. }) => 2,
            RunFailure::Error(RunError::Livelock { .. }) => 3,
            RunFailure::Error(RunError::InvariantViolation { .. }) => 4,
            RunFailure::Error(_) | RunFailure::Panic(_) => 1,
        }
    }

    /// Is this failure plausibly a *transient* effect of the active fault
    /// plan (worth retrying), rather than a permanent bug? See
    /// [`RunError::is_transient_under_faults`]; panics and races are
    /// always permanent.
    pub fn is_transient_under_faults(&self, faults_active: bool) -> bool {
        match self {
            RunFailure::Error(e) => e.is_transient_under_faults(faults_active),
            RunFailure::Panic(_) | RunFailure::RaceDetected(_) => false,
        }
    }
}

/// One cell of a [`MatrixReport`]: the configuration label plus either the
/// finished experiment or the reason it failed.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// The configuration's short label (kept even on failure, when no
    /// [`Experiment`] exists to ask).
    pub label: String,
    /// The outcome.
    pub outcome: Result<Experiment, RunFailure>,
}

/// Outcome of a resilient matrix sweep: one cell per configuration, in the
/// order given, failures included.
#[derive(Debug, Clone)]
pub struct MatrixReport {
    /// The application that ran.
    pub app: App,
    /// Per-configuration outcomes, in input order.
    pub cells: Vec<MatrixCell>,
}

impl MatrixReport {
    /// The successful experiments, in input order.
    pub fn successes(&self) -> Vec<&Experiment> {
        self.cells
            .iter()
            .filter_map(|c| c.outcome.as_ref().ok())
            .collect()
    }

    /// The failed cells as `(label, failure)` pairs, in input order.
    pub fn failures(&self) -> Vec<(&str, &RunFailure)> {
        self.cells
            .iter()
            .filter_map(|c| c.outcome.as_ref().err().map(|e| (c.label.as_str(), e)))
            .collect()
    }

    /// True when every configuration produced an experiment.
    pub fn is_fully_ok(&self) -> bool {
        self.cells.iter().all(|c| c.outcome.is_ok())
    }

    /// Consumes the report into the experiments, erroring with the first
    /// failure if any cell failed (the strict pre-resilience contract).
    pub fn into_experiments(self) -> Result<Vec<Experiment>, RunFailure> {
        self.cells.into_iter().map(|c| c.outcome).collect()
    }
}

/// Runs `app` on the machine described by `config`.
///
/// # Errors
///
/// Propagates [`RunError`] from the machine (cycle budget exceeded,
/// deadlock, livelock, or an invariant violation) — all indicate a bug or
/// an injected fault exposing one, rather than an expected outcome for
/// these workloads.
pub fn run(app: App, config: &ExperimentConfig) -> Result<Experiment, RunError> {
    let topo = config.topology();
    let mut space = AddressSpaceBuilder::new(config.processors);
    let workload = app.build(config.scale, topo, &mut space, config.prefetching);
    let shared_bytes = workload.shared_bytes();
    let mem = MemorySystem::new(config.mem_config(), space.build());
    let mut machine = Machine::new(config.proc_config(), topo, mem, workload)
        .with_max_cycles(Cycle(50_000_000_000));
    if !config.analyze.is_empty() {
        machine = machine.with_event_log();
    }
    let result = machine.run()?;
    let analysis = result.events.as_ref().map(|log| {
        dashlat_analyze::analyze(&format!("{app}/{}", config.label()), log, &config.analyze)
    });
    Ok(Experiment {
        app,
        config: config.clone(),
        result,
        shared_bytes,
        analysis,
    })
}

/// Runs one configuration with panic isolation: a panicking run becomes a
/// [`RunFailure::Panic`] instead of unwinding into the sweep, and a
/// requested analysis that finds races becomes
/// [`RunFailure::RaceDetected`]. This is the cell-execution primitive the
/// matrix sweep, the supervised sweep and the chaos fuzzer all share.
pub fn run_isolated(app: App, config: &ExperimentConfig) -> Result<Experiment, RunFailure> {
    match catch_unwind(AssertUnwindSafe(|| run(app, config))) {
        Ok(Ok(e)) => match &e.analysis {
            Some(report) if report.race_detected() => {
                Err(RunFailure::RaceDetected(Box::new(report.clone())))
            }
            _ => Ok(e),
        },
        Ok(Err(e)) => Err(RunFailure::Error(e)),
        Err(payload) => Err(RunFailure::Panic(panic_message(payload))),
    }
}

pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `app` on every configuration, isolating each run: a failure (panic
/// or [`RunError`]) is recorded in its cell and the sweep continues, so one
/// poisoned configuration cannot take down the healthy ones.
///
/// Cells execute on a scoped worker pool sized by
/// [`crate::pool::effective_jobs`] (the process-wide `--jobs` default, else
/// `available_parallelism`). Each cell is an independent single-threaded
/// simulation, so the report is bit-identical to serial execution and the
/// cells stay in input order regardless of completion order.
pub fn run_matrix(app: App, configs: &[ExperimentConfig]) -> MatrixReport {
    run_matrix_jobs(app, configs, None)
}

/// [`run_matrix`] with an explicit worker count (`None` = the process-wide
/// default). `jobs = Some(1)` forces the serial path on the caller's
/// thread; larger values are subject to the [`matrix_jobs`] policy.
pub fn run_matrix_jobs(
    app: App,
    configs: &[ExperimentConfig],
    jobs: Option<usize>,
) -> MatrixReport {
    run_matrix_jobs_memo(app, configs, jobs, None)
}

/// [`run_matrix_jobs`] with an optional result memo: cells whose work
/// fingerprint is already in `memo` are served from it instead of
/// re-simulated (see [`crate::cellcache::CellMemo`]). The report is
/// bit-identical with or without the memo — a hit is a clone of what the
/// re-run would have produced.
pub fn run_matrix_jobs_memo(
    app: App,
    configs: &[ExperimentConfig],
    jobs: Option<usize>,
    memo: Option<&crate::cellcache::CellMemo>,
) -> MatrixReport {
    let jobs = matrix_jobs(configs, jobs);
    // Longest-expected-first dispatch: the pool's cursor hands out items
    // in slice order, so sorting indices by descending estimated cost
    // approximates LPT scheduling — the slowest cells start first and the
    // cheap ones backfill, instead of a slow cell landing last and
    // stretching the sweep by its whole length. The sort is stable and
    // cost estimation is deterministic, so the dispatch order (and with
    // it the report) is reproducible; results are written back into input
    // order regardless.
    let mut order: Vec<usize> = (0..configs.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(estimated_cost(&configs[i])));
    let by_order = crate::pool::par_indexed_map(jobs, &order, |_, &i| {
        let c = &configs[i];
        let outcome = match memo {
            Some(m) => m.run(app, c),
            None => run_isolated(app, c),
        };
        (
            i,
            MatrixCell {
                label: c.label(),
                outcome,
            },
        )
    });
    let mut slots: Vec<Option<MatrixCell>> = configs.iter().map(|_| None).collect();
    for (i, cell) in by_order {
        slots[i] = Some(cell);
    }
    let cells = slots
        .into_iter()
        .map(|s| s.expect("every dispatched cell produced a result"))
        .collect();
    MatrixReport { app, cells }
}

/// Matrices whose summed [`estimated_cost`] is below this run serially:
/// spawning workers, fanning a handful of millisecond-scale cells across
/// them and joining costs more than it saves. Test-scale cells weigh
/// `processors × contexts` (16–64 units), so this admits parallelism only
/// once a matrix carries at least a few non-trivial cells.
const PARALLEL_COST_FLOOR: u64 = 64;

/// Worker-count policy for one cell matrix: the requested (or default)
/// count, clamped to the cells available and to what the hardware
/// actually offers — workers beyond `available_parallelism` only context-
/// switch against each other, which is how BENCH_3.json recorded parallel
/// sweeps *slower* than serial (speedup 0.85–0.88 on figures 3 and 5).
/// Falls back to serial on single-core hosts and for matrices too small
/// to amortize pool overhead.
pub fn matrix_jobs(configs: &[ExperimentConfig], requested: Option<usize>) -> usize {
    let jobs = crate::pool::effective_jobs(requested)
        .min(crate::pool::hardware_cores())
        .min(configs.len().max(1));
    if jobs > 1 && configs.iter().map(estimated_cost).sum::<u64>() < PARALLEL_COST_FLOOR {
        return 1;
    }
    jobs
}

/// Rough relative cost of simulating one cell, for dispatch ordering and
/// the serial-fallback decision. Simulated events scale with the process
/// count (every context issues its own operation stream), and paper-scale
/// data sets run ~three orders of magnitude longer than test-scale ones.
/// Only the *ordering* of estimates matters, not their absolute values.
fn estimated_cost(config: &ExperimentConfig) -> u64 {
    let processes = (config.processors.max(1) * config.contexts.max(1)) as u64;
    let scale = match config.scale {
        crate::config::AppScale::Paper => 1_000,
        crate::config::AppScale::Test => 1,
    };
    processes * scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use dashlat_cpu::config::Consistency;
    use dashlat_sim::fault::FaultPlan;

    #[test]
    fn runs_mp3d_at_test_scale() {
        let cfg = ExperimentConfig::base_test();
        let e = run(App::Mp3d, &cfg).expect("runs");
        assert!(e.result.elapsed > Cycle::ZERO);
        assert!(e.shared_bytes > 0);
        assert_eq!(e.id(), "MP3D/SC");
    }

    #[test]
    fn analysis_certifies_clean_run() {
        let cfg =
            ExperimentConfig::base_test().with_analysis(dashlat_analyze::PassKind::ALL.to_vec());
        let e = run(App::Mp3d, &cfg).expect("runs");
        let report = e.analysis.expect("analysis requested");
        assert_eq!(report.properly_labeled(), Some(true), "{}", report.render());
        assert!(report.replay_notes.is_empty());
        // Live logs come straight from the machine, never from replay.
        assert!(e.result.events.is_some());
    }

    #[test]
    fn no_analysis_requested_means_no_log() {
        let e = run(App::Lu, &ExperimentConfig::base_test()).expect("runs");
        assert!(e.analysis.is_none());
        assert!(e.result.events.is_none());
    }

    #[test]
    fn matrix_preserves_order() {
        let configs = vec![
            ExperimentConfig::base_test(),
            ExperimentConfig::base_test().with_rc(),
        ];
        let report = run_matrix(App::Lu, &configs);
        assert!(report.is_fully_ok());
        let es = report.into_experiments().expect("runs");
        assert_eq!(es.len(), 2);
        assert_eq!(es[0].config.consistency, Consistency::Sc);
        assert_eq!(es[1].config.consistency, Consistency::Rc);
        // RC is never slower for LU.
        assert!(es[1].result.elapsed <= es[0].result.elapsed);
    }

    #[test]
    fn uncached_run_is_slower() {
        let cached = run(App::Mp3d, &ExperimentConfig::base_test()).expect("runs");
        let uncached =
            run(App::Mp3d, &ExperimentConfig::base_test().without_caching()).expect("runs");
        assert!(
            uncached.result.elapsed > cached.result.elapsed,
            "caching did not help: {} <= {}",
            uncached.result.elapsed,
            cached.result.elapsed
        );
    }

    #[test]
    fn poisoned_config_yields_partial_results() {
        // A 0-context topology panics deep in the machine; the healthy
        // neighbours must still complete.
        let mut poisoned = ExperimentConfig::base_test();
        poisoned.contexts = 0;
        let configs = vec![
            ExperimentConfig::base_test(),
            poisoned,
            ExperimentConfig::base_test().with_rc(),
        ];
        let report = run_matrix(App::Lu, &configs);
        assert!(!report.is_fully_ok());
        assert_eq!(report.cells.len(), 3);
        assert_eq!(report.successes().len(), 2);
        let failures = report.failures();
        assert_eq!(failures.len(), 1);
        assert!(
            matches!(failures[0].1, RunFailure::Panic(_)),
            "expected a caught panic, got {:?}",
            failures[0].1
        );
    }

    #[test]
    fn fault_runs_are_reproducible() {
        let cfg = ExperimentConfig::base_test().with_faults(FaultPlan::light(0xDA5));
        let a = run(App::Mp3d, &cfg).expect("runs");
        let b = run(App::Mp3d, &cfg).expect("runs");
        assert_eq!(a.result.elapsed, b.result.elapsed);
        assert_eq!(a.result.mem.faults, b.result.mem.faults);
        assert!(
            !a.result.mem.faults.is_empty(),
            "light plan injected nothing"
        );
    }

    #[test]
    fn faulted_run_is_no_faster() {
        let clean = run(App::Mp3d, &ExperimentConfig::base_test()).expect("runs");
        let faulted = run(
            App::Mp3d,
            &ExperimentConfig::base_test().with_faults(FaultPlan::heavy(3)),
        )
        .expect("runs");
        assert!(
            faulted.result.elapsed >= clean.result.elapsed,
            "faults sped the run up: {} < {}",
            faulted.result.elapsed,
            clean.result.elapsed
        );
    }
}
