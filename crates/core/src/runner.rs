//! Wiring and running one experiment.

use dashlat_cpu::machine::{Machine, RunError, RunResult};
use dashlat_mem::layout::AddressSpaceBuilder;
use dashlat_mem::system::MemorySystem;
use dashlat_sim::Cycle;

use crate::apps::App;
use crate::config::ExperimentConfig;

/// A finished experiment: the configuration and its measurements.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Which application ran.
    pub app: App,
    /// The machine variant.
    pub config: ExperimentConfig,
    /// Everything measured.
    pub result: RunResult,
    /// Shared-data footprint reported by the workload.
    pub shared_bytes: u64,
}

impl Experiment {
    /// Short `APP/label` identifier.
    pub fn id(&self) -> String {
        format!("{}/{}", self.app, self.config.label())
    }
}

/// Runs `app` on the machine described by `config`.
///
/// # Errors
///
/// Propagates [`RunError`] from the machine (cycle budget exceeded or a
/// synchronization deadlock) — both indicate a bug rather than an expected
/// outcome for these workloads.
pub fn run(app: App, config: &ExperimentConfig) -> Result<Experiment, RunError> {
    let topo = config.topology();
    let mut space = AddressSpaceBuilder::new(config.processors);
    let workload = app.build(config.scale, topo, &mut space, config.prefetching);
    let shared_bytes = workload.shared_bytes();
    let mem = MemorySystem::new(config.mem_config(), space.build());
    let result = Machine::new(config.proc_config(), topo, mem, workload)
        .with_max_cycles(Cycle(50_000_000_000))
        .run()?;
    Ok(Experiment {
        app,
        config: config.clone(),
        result,
        shared_bytes,
    })
}

/// Runs `app` on every configuration, returning the experiments in order.
///
/// # Errors
///
/// Fails on the first configuration whose run fails.
pub fn run_matrix(app: App, configs: &[ExperimentConfig]) -> Result<Vec<Experiment>, RunError> {
    configs.iter().map(|c| run(app, c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dashlat_cpu::config::Consistency;

    #[test]
    fn runs_mp3d_at_test_scale() {
        let cfg = ExperimentConfig::base_test();
        let e = run(App::Mp3d, &cfg).expect("runs");
        assert!(e.result.elapsed > Cycle::ZERO);
        assert!(e.shared_bytes > 0);
        assert_eq!(e.id(), "MP3D/SC");
    }

    #[test]
    fn matrix_preserves_order() {
        let configs = vec![
            ExperimentConfig::base_test(),
            ExperimentConfig::base_test().with_rc(),
        ];
        let es = run_matrix(App::Lu, &configs).expect("runs");
        assert_eq!(es.len(), 2);
        assert_eq!(es[0].config.consistency, Consistency::Sc);
        assert_eq!(es[1].config.consistency, Consistency::Rc);
        // RC is never slower for LU.
        assert!(es[1].result.elapsed <= es[0].result.elapsed);
    }

    #[test]
    fn uncached_run_is_slower() {
        let cached = run(App::Mp3d, &ExperimentConfig::base_test()).expect("runs");
        let uncached =
            run(App::Mp3d, &ExperimentConfig::base_test().without_caching()).expect("runs");
        assert!(
            uncached.result.elapsed > cached.result.elapsed,
            "caching did not help: {} <= {}",
            uncached.result.elapsed,
            cached.result.elapsed
        );
    }
}
