//! Crash-safe supervised sweeps: write-ahead journal, resume, failure
//! classification, bounded retry, and self-contained repro bundles.
//!
//! A paper figure is a matrix of independent deterministic cells, so a
//! sweep that dies halfway (OOM kill, power loss, watchdog `kill -9`)
//! has lost nothing *logically* — every finished cell would produce the
//! same result again. This module makes that recovery real:
//!
//! * [`SweepPlan`] names the cells of one sweep in a fixed order and
//!   fingerprints the whole plan, so a journal can only ever be resumed
//!   against the plan that wrote it.
//! * [`run_supervised`] executes the plan cell-by-cell, committing each
//!   outcome to a write-ahead JSONL journal (append + fsync per record)
//!   *before* it counts as done. Re-running with `resume` replays the
//!   committed prefix and executes only the remainder; because cells are
//!   deterministic, the final [`SweepLog`] is byte-identical to an
//!   uninterrupted run — serial or parallel.
//! * Failures are classified [`Transient`](FailureClass::Transient)
//!   (fault-injected NACK storms legitimately exhaust cycle budgets;
//!   subprocess wall-clock timeouts) or
//!   [`Permanent`](FailureClass::Permanent) (deadlock, invariant
//!   violation, panic, race): transients retry with capped exponential
//!   backoff, permanents fail the cell at once and can emit a
//!   self-contained [`ReproBundle`] replayable via `dashlat repro`.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dashlat_sim::journal::{atomic_write, Journal};
use dashlat_sim::json::{quote, Value};

use crate::apps::App;
use crate::config::ExperimentConfig;
use crate::experiments::figure_configs;
use crate::runner::{run_isolated, RunFailure};
use crate::sweeplog::SweepLog;

/// Journal format version written into the header record.
pub const JOURNAL_VERSION: u64 = 1;

/// One cell of a sweep: an application under a machine configuration,
/// plus the `sweep`/`point` labels it is recorded under in the
/// [`SweepLog`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// The benchmark application.
    pub app: App,
    /// The machine configuration.
    pub config: ExperimentConfig,
    /// Sweep name, e.g. `figure3/LU`.
    pub sweep: String,
    /// Point label within the sweep, e.g. `RC`.
    pub point: String,
}

/// A named, ordered list of sweep cells. The order is the contract: cell
/// indices key the journal, and the final [`SweepLog`] lists points in
/// plan order no matter what order cells actually completed in.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPlan {
    /// Plan name, e.g. `figure3`; recorded in the journal header.
    pub name: String,
    /// The cells, in the order they are journaled and reported.
    pub cells: Vec<SweepCell>,
}

impl SweepPlan {
    /// The full matrix for paper figure `number` (2..=6): every
    /// application of Table 2 crossed with that figure's machine
    /// configurations, in the same order the figure binaries sweep.
    ///
    /// # Panics
    ///
    /// Panics for a figure number outside 2..=6 (same contract as
    /// [`figure_configs`]).
    pub fn figure(number: u8, base: &ExperimentConfig) -> Self {
        let configs = figure_configs(number, base);
        let mut cells = Vec::with_capacity(App::ALL.len() * configs.len());
        for app in App::ALL {
            for config in &configs {
                cells.push(SweepCell {
                    app,
                    config: config.clone(),
                    sweep: format!("figure{number}/{}", app.name()),
                    point: config.label(),
                });
            }
        }
        Self {
            name: format!("figure{number}"),
            cells,
        }
    }

    /// FNV-1a fingerprint over the plan name and every cell's identity
    /// (application, labels, and the full configuration debug rendering).
    /// Any change to the plan — order, labels, or any machine knob —
    /// changes the fingerprint, which is what stops `--resume` from
    /// splicing cells measured under a different configuration into this
    /// run's results.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            // Field separator so concatenations can't collide.
            h ^= 0xff;
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        eat(self.name.as_bytes());
        for cell in &self.cells {
            eat(cell.app.name().as_bytes());
            eat(cell.sweep.as_bytes());
            eat(cell.point.as_bytes());
            eat(format!("{:?}", cell.config).as_bytes());
        }
        h
    }
}

/// FNV-1a fingerprint of one cell's *work identity*: the application and
/// the full machine configuration, deliberately excluding the
/// `sweep`/`point` labels. Two cells in different sweeps — or different
/// jobs of the long-running `dashlat serve` service — that would simulate
/// exactly the same machine share a fingerprint, which is what lets the
/// service's content-addressed result cache serve repeated cells without
/// re-simulating them. Cells are deterministic functions of this
/// identity, so equal fingerprints imply equal results.
pub fn cell_fingerprint(cell: &SweepCell) -> u64 {
    work_fingerprint(cell.app, &cell.config)
}

/// [`cell_fingerprint`] for callers that hold an `(app, config)` pair
/// rather than a [`SweepCell`] — the in-process result memo
/// ([`crate::cellcache::CellMemo`]) keys on this before a cell exists.
pub fn work_fingerprint(app: App, config: &ExperimentConfig) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= 0xff;
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    eat(app.name().as_bytes());
    eat(format!("{config:?}").as_bytes());
    h
}

/// The delay in milliseconds before transient-failure retry `attempt`
/// (1-based: the wait after the first failed attempt): capped exponential
/// backoff with deterministic seeded jitter, uniform in
/// `[backoff/2, backoff]`.
///
/// The jitter exists to break retry storms: when N cells fail
/// transiently at the same moment (one NACK-storm fault schedule, one
/// overloaded host), an unjittered exponential schedule retries them all
/// in lockstep, re-creating the very contention spike that failed them.
/// The spread is derived from `splitmix64(salt ^ attempt)` — no clock, no
/// RNG state — so a given `(salt, attempt)` pair always waits the same
/// time and supervised runs stay reproducible. Callers salt with the cell
/// index (XORed with the plan fingerprint) so neighbouring cells spread
/// apart.
pub fn retry_backoff_ms(base_ms: u64, cap_ms: u64, attempt: u32, salt: u64) -> u64 {
    let exp = base_ms
        .saturating_mul(1u64 << attempt.saturating_sub(1).min(16))
        .min(cap_ms);
    if exp <= 1 {
        return exp;
    }
    // splitmix64 finalizer over the (salt, attempt) pair.
    let mut z =
        salt ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x9e37_79b9_7f4a_7c15;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    let lo = exp / 2;
    lo + z % (exp - lo + 1)
}

/// Cooperative cancellation and deadline control for a supervised sweep.
///
/// The control is checked at cell boundaries: cells already in flight
/// when it trips are drained (finished and journaled), cells not yet
/// started are skipped and stay uncommitted in the journal, so a
/// cancelled or deadline-expired run is exactly a crash-free checkpoint —
/// resuming it later completes the plan with a byte-identical log. The
/// default control never interrupts.
#[derive(Debug, Clone, Default)]
pub struct SweepControl {
    cancel: Option<Arc<AtomicBool>>,
    deadline: Option<Instant>,
}

impl SweepControl {
    /// A control that never interrupts (what [`run_supervised`] uses).
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a copy interrupted whenever `token` is `true` — the
    /// service sets one token per job for client cancellation and
    /// graceful shutdown alike.
    #[must_use]
    pub fn with_cancel(mut self, token: Arc<AtomicBool>) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Returns a copy interrupted once `deadline` passes (per-job
    /// wall-clock budget).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Why the run should stop (`"cancelled"` or `"deadline exceeded"`),
    /// or `None` to keep going. Cancellation is reported in preference to
    /// an expired deadline when both hold.
    pub fn interruption(&self) -> Option<&'static str> {
        if self
            .cancel
            .as_ref()
            .is_some_and(|t| t.load(Ordering::SeqCst))
        {
            return Some("cancelled");
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Some("deadline exceeded");
        }
        None
    }

    /// True when the run should stop scheduling new cells.
    pub fn is_interrupted(&self) -> bool {
        self.interruption().is_some()
    }
}

/// Whether a cell failure is worth retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureClass {
    /// Plausibly timing- or fault-schedule-induced: cycle-budget
    /// exhaustion or livelock under active fault injection (NACK storms
    /// legitimately slow runs), and subprocess wall-clock timeouts or
    /// signal kills. Retried with capped exponential backoff.
    Transient,
    /// A real property violation — deadlock, coherence-invariant
    /// violation, panic, data race — or any failure of a fault-free run.
    /// Never retried; eligible for a repro bundle.
    Permanent,
}

impl fmt::Display for FailureClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureClass::Transient => write!(f, "transient"),
            FailureClass::Permanent => write!(f, "permanent"),
        }
    }
}

impl std::str::FromStr for FailureClass {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "transient" => Ok(FailureClass::Transient),
            "permanent" => Ok(FailureClass::Permanent),
            other => Err(format!("unknown failure class {other:?}")),
        }
    }
}

/// A classified cell failure: the human-readable error, the CLI exit
/// code its error class maps to, and whether it is retryable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// Human-readable failure message.
    pub error: String,
    /// The exit code the CLI maps this failure class to
    /// (see `RunFailure::exit_code`).
    pub code: u8,
    /// Retryable or not.
    pub class: FailureClass,
}

impl CellFailure {
    /// Classifies a structured [`RunFailure`], given whether the cell ran
    /// with an active fault-injection plan.
    pub fn classify(failure: &RunFailure, faults_active: bool) -> Self {
        let class = if failure.is_transient_under_faults(faults_active) {
            FailureClass::Transient
        } else {
            FailureClass::Permanent
        };
        Self {
            error: failure.to_string(),
            code: failure.exit_code(),
            class,
        }
    }

    /// A transient failure with the CLI's generic-error exit code —
    /// used by the subprocess runner for wall-clock timeouts and
    /// signal-killed children, which carry no structured error.
    pub fn transient(error: impl Into<String>) -> Self {
        Self {
            error: error.into(),
            code: 1,
            class: FailureClass::Transient,
        }
    }
}

/// Runs one cell in-process through the standard isolated runner and
/// classifies any failure. This is the default cell runner for
/// `dashlat sweep` without `--isolate`, and the whole body of the
/// `dashlat cell` subprocess.
pub fn run_cell_in_process(cell: &SweepCell) -> Result<u64, CellFailure> {
    let faults_active = cell.config.faults.is_some_and(|p| p.is_active());
    run_isolated(cell.app, &cell.config)
        .map(|e| e.result.elapsed.as_u64())
        .map_err(|f| CellFailure::classify(&f, faults_active))
}

/// [`run_cell_in_process`] with a warm-result memo in front: a cell whose
/// work fingerprint is already in `memo` is served from it without
/// re-simulating (bit-identical by the fingerprint invariant — see
/// [`cell_fingerprint`]). One plan has no duplicate fingerprints, so the
/// memo pays off when shared across plans — the `dashlat sweep` CLI
/// shares one per invocation and the serve daemon one per process, in
/// front of its (elapsed-only, cross-process) disk cache.
pub fn run_cell_in_process_memo(
    cell: &SweepCell,
    memo: &crate::cellcache::CellMemo,
) -> Result<u64, CellFailure> {
    let faults_active = cell.config.faults.is_some_and(|p| p.is_active());
    memo.run(cell.app, &cell.config)
        .map(|e| e.result.elapsed.as_u64())
        .map_err(|f| CellFailure::classify(&f, faults_active))
}

/// One committed journal record: the cell index, its labels (stored
/// redundantly and cross-checked against the plan on resume), the final
/// outcome, and how many attempts it took.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellRecord {
    /// Index into [`SweepPlan::cells`].
    pub index: usize,
    /// Sweep label, cross-checked on resume.
    pub sweep: String,
    /// Point label, cross-checked on resume.
    pub point: String,
    /// Elapsed pclocks, or the (final, post-retry) classified failure.
    pub outcome: Result<u64, CellFailure>,
    /// Attempts consumed (1 = succeeded or failed permanently first try).
    pub attempts: u32,
}

impl CellRecord {
    /// Renders the record as one JSONL journal line (no trailing
    /// newline — [`Journal::append`] adds it).
    pub fn render(&self) -> String {
        let mut line = format!(
            "{{\"kind\":\"cell\",\"index\":{},\"sweep\":{},\"point\":{},\"attempts\":{}",
            self.index,
            quote(&self.sweep),
            quote(&self.point),
            self.attempts
        );
        match &self.outcome {
            Ok(elapsed) => line.push_str(&format!(",\"ok\":{elapsed}}}")),
            Err(f) => line.push_str(&format!(
                ",\"err\":{{\"error\":{},\"code\":{},\"class\":{}}}}}",
                quote(&f.error),
                f.code,
                quote(&f.class.to_string())
            )),
        }
        line
    }

    /// Parses a journal line previously produced by [`CellRecord::render`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or missing field.
    pub fn parse(line: &str) -> Result<Self, String> {
        let v = Value::parse(line)?;
        if v.get("kind").and_then(Value::as_str) != Some("cell") {
            return Err("not a cell record".into());
        }
        let index = v
            .get("index")
            .and_then(Value::as_u64)
            .ok_or("cell record missing index")? as usize;
        let sweep = v
            .get("sweep")
            .and_then(Value::as_str)
            .ok_or("cell record missing sweep")?
            .to_owned();
        let point = v
            .get("point")
            .and_then(Value::as_str)
            .ok_or("cell record missing point")?
            .to_owned();
        let attempts = v
            .get("attempts")
            .and_then(Value::as_u64)
            .ok_or("cell record missing attempts")? as u32;
        let outcome = if let Some(elapsed) = v.get("ok").and_then(Value::as_u64) {
            Ok(elapsed)
        } else if let Some(err) = v.get("err") {
            let error = err
                .get("error")
                .and_then(Value::as_str)
                .ok_or("err record missing error")?
                .to_owned();
            let code = err
                .get("code")
                .and_then(Value::as_u64)
                .ok_or("err record missing code")? as u8;
            let class: FailureClass = err
                .get("class")
                .and_then(Value::as_str)
                .ok_or("err record missing class")?
                .parse()?;
            Err(CellFailure { error, code, class })
        } else {
            return Err("cell record has neither ok nor err".into());
        };
        Ok(Self {
            index,
            sweep,
            point,
            outcome,
            attempts,
        })
    }
}

/// Supervision knobs for [`run_supervised`].
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker count (`None` → the process-wide `--jobs` default).
    pub jobs: Option<usize>,
    /// Maximum retries per cell *after* the first attempt; only
    /// transient failures retry.
    pub max_retries: u32,
    /// First retry backoff; doubles per retry.
    pub backoff_base_ms: u64,
    /// Backoff ceiling.
    pub backoff_cap_ms: u64,
    /// Where to write repro bundles for permanent failures (`None` =
    /// don't write bundles).
    pub bundle_dir: Option<PathBuf>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self {
            jobs: None,
            max_retries: 2,
            backoff_base_ms: 50,
            backoff_cap_ms: 2000,
            bundle_dir: None,
        }
    }
}

/// Why a supervised sweep could not run (distinct from cell failures,
/// which are *recorded*, not raised).
#[derive(Debug)]
pub enum SweepError {
    /// Journal or output file I/O failed.
    Io(io::Error),
    /// The journal exists but belongs to a different plan (name,
    /// fingerprint or cell labels disagree), or `resume` was not
    /// requested for an existing journal.
    JournalMismatch(String),
    /// A committed journal line failed to parse.
    Corrupt(String),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Io(e) => write!(f, "journal I/O error: {e}"),
            SweepError::JournalMismatch(m) => write!(f, "journal mismatch: {m}"),
            SweepError::Corrupt(m) => write!(f, "corrupt journal: {m}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<io::Error> for SweepError {
    fn from(e: io::Error) -> Self {
        SweepError::Io(e)
    }
}

/// The outcome of a supervised sweep: the assembled log plus supervision
/// bookkeeping for diagnostics and exit-code folding.
#[derive(Debug)]
pub struct SweepReport {
    /// Results in plan order (replayed + freshly executed).
    pub log: SweepLog,
    /// Cells replayed from the journal instead of re-run.
    pub replayed: usize,
    /// Cells executed this invocation.
    pub executed: usize,
    /// Total retry attempts spent on transient failures.
    pub retries: u32,
    /// Final failures, in plan order: `(index, sweep, point, failure)`.
    pub failures: Vec<(usize, String, String, CellFailure)>,
    /// Repro bundles written for permanent failures.
    pub bundles: Vec<PathBuf>,
    /// The journal backing this run.
    pub journal_path: PathBuf,
    /// Highest-index committed cell `(index, sweep, point)` — the resume
    /// point a crashed run would restart after.
    pub last_committed: Option<(usize, String, String)>,
    /// Cells skipped because the run was interrupted (cancelled or past
    /// its deadline) before they started. They remain uncommitted in the
    /// journal and run on the next resume.
    pub skipped: usize,
    /// Why the run stopped early (`"cancelled"`, `"deadline exceeded"`),
    /// or `None` for a run that finished its whole plan. Set only when at
    /// least one cell was actually skipped — an interruption that arrives
    /// after the last cell drained is a complete run.
    pub interrupted: Option<String>,
}

/// Cell-failure exit codes ranked most-severe-first, mirroring the CLI's
/// documented precedence (invariant violation > deadlock > livelock >
/// race > generic error).
const CELL_SEVERITY: [u8; 5] = [4, 2, 3, 6, 1];

impl SweepReport {
    /// True when every cell ran and succeeded.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty() && self.skipped == 0
    }

    /// The exit code the sweep should terminate with: 0 when complete,
    /// else the most severe failure code per the CLI precedence (a sweep
    /// whose only failure is a generic error still exits 1, not the
    /// partial-results 5 — the supervisor knows *why* cells are missing).
    pub fn exit_code(&self) -> u8 {
        let mut worst = 0u8;
        let rank = |c: u8| CELL_SEVERITY.iter().position(|&s| s == c);
        for (_, _, _, f) in &self.failures {
            match (rank(f.code), rank(worst)) {
                (Some(n), Some(w)) if n < w => worst = f.code,
                (Some(_), None) => worst = f.code,
                _ => {}
            }
        }
        worst
    }

    /// Per-failure diagnostic lines. Each names the cell, its class and
    /// exit code, and — so a stuck or crashed sweep can be picked up
    /// exactly where it stopped — the journal path and the last committed
    /// cell.
    pub fn diagnostics(&self) -> Vec<String> {
        let resume_hint = match &self.last_committed {
            Some((i, sweep, point)) => format!(
                "journal {}; last committed cell #{i} {sweep}/{point}",
                self.journal_path.display()
            ),
            None => format!(
                "journal {}; no cell committed yet",
                self.journal_path.display()
            ),
        };
        self.failures
            .iter()
            .map(|(i, sweep, point, f)| {
                format!(
                    "cell #{i} {sweep}/{point} failed ({}, exit {}): {}; {resume_hint}",
                    f.class, f.code, f.error
                )
            })
            .collect()
    }

    /// One-paragraph completion summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} cell(s): {} replayed from journal, {} executed, {} retry attempt(s), {} failure(s)",
            self.replayed + self.executed,
            self.replayed,
            self.executed,
            self.retries,
            self.failures.len()
        );
        if let Some(why) = &self.interrupted {
            s.push_str(&format!(
                "; {why} with {} cell(s) still pending (journal checkpointed — resume to finish)",
                self.skipped
            ));
        }
        s
    }
}

fn render_header(plan: &SweepPlan) -> String {
    format!(
        "{{\"kind\":\"header\",\"version\":{JOURNAL_VERSION},\"name\":{},\"fingerprint\":{},\"cells\":{}}}",
        quote(&plan.name),
        plan.fingerprint(),
        plan.cells.len()
    )
}

fn check_header(line: &str, plan: &SweepPlan) -> Result<(), SweepError> {
    let v = Value::parse(line).map_err(SweepError::Corrupt)?;
    if v.get("kind").and_then(Value::as_str) != Some("header") {
        return Err(SweepError::Corrupt(
            "first journal line is not a header record".into(),
        ));
    }
    let version = v.get("version").and_then(Value::as_u64);
    if version != Some(JOURNAL_VERSION) {
        return Err(SweepError::JournalMismatch(format!(
            "journal version {version:?}, this build writes {JOURNAL_VERSION}"
        )));
    }
    let name = v.get("name").and_then(Value::as_str).unwrap_or("<missing>");
    if name != plan.name {
        return Err(SweepError::JournalMismatch(format!(
            "journal was written by sweep {name:?}, this run is {:?}",
            plan.name
        )));
    }
    let fp = v.get("fingerprint").and_then(Value::as_u64);
    if fp != Some(plan.fingerprint()) {
        return Err(SweepError::JournalMismatch(format!(
            "configuration fingerprint {fp:?} does not match this run's {} — \
             the journal was written under a different configuration; delete it \
             (or point --journal elsewhere) to start over",
            plan.fingerprint()
        )));
    }
    let cells = v.get("cells").and_then(Value::as_u64);
    if cells != Some(plan.cells.len() as u64) {
        return Err(SweepError::JournalMismatch(format!(
            "journal plans {cells:?} cells, this run has {}",
            plan.cells.len()
        )));
    }
    Ok(())
}

/// Loads the committed records of an existing journal and validates them
/// against `plan`. Returns one slot per plan cell (`None` = not yet
/// committed).
fn load_committed(path: &Path, plan: &SweepPlan) -> Result<Vec<Option<CellRecord>>, SweepError> {
    let lines = Journal::read_committed_lines(path)?;
    let Some((header, records)) = lines.split_first() else {
        // Torn before the header finished: treat as empty and rewrite.
        return Ok(vec![None; plan.cells.len()]);
    };
    check_header(header, plan)?;
    let mut committed: Vec<Option<CellRecord>> = vec![None; plan.cells.len()];
    for line in records {
        let rec = CellRecord::parse(line).map_err(SweepError::Corrupt)?;
        let cell = plan.cells.get(rec.index).ok_or_else(|| {
            SweepError::JournalMismatch(format!(
                "journal commits cell #{} but the plan has only {} cells",
                rec.index,
                plan.cells.len()
            ))
        })?;
        if cell.sweep != rec.sweep || cell.point != rec.point {
            return Err(SweepError::JournalMismatch(format!(
                "journal cell #{} is {}/{} but the plan expects {}/{}",
                rec.index, rec.sweep, rec.point, cell.sweep, cell.point
            )));
        }
        // Duplicate commits for one index can only happen if two
        // supervisors shared a journal; keep the first (the one a
        // resumed log would have used) and reject the situation loudly.
        if committed[rec.index].is_some() {
            return Err(SweepError::Corrupt(format!(
                "cell #{} committed twice — was this journal shared by two sweeps?",
                rec.index
            )));
        }
        let index = rec.index;
        committed[index] = Some(rec);
    }
    Ok(committed)
}

/// Runs `plan` under supervision, journaling to `journal_path` and
/// atomically publishing the final [`SweepLog`] JSON to `out_path`.
///
/// `runner` executes one cell: `(index, cell, attempt)` → elapsed or a
/// classified failure. `run_supervised` owns retry policy (transients
/// retry up to `opts.max_retries` times with exponential backoff, capped
/// at `opts.backoff_cap_ms`), journaling (one fsynced record per
/// *finished* cell — a crash between records loses at most the cells in
/// flight), and bundle emission for permanent failures.
///
/// With `resume`, an existing journal for the same plan (validated by
/// fingerprint) replays its committed cells; without it, an existing
/// journal is an error so two supervisors can't silently interleave.
///
/// # Errors
///
/// Fails only for supervision problems ([`SweepError`]): journal I/O,
/// plan/journal mismatch, corrupt records. Cell failures never fail the
/// sweep; they are recorded in the report (and the published log).
pub fn run_supervised<F>(
    plan: &SweepPlan,
    journal_path: &Path,
    out_path: &Path,
    resume: bool,
    opts: &SweepOptions,
    runner: F,
) -> Result<SweepReport, SweepError>
where
    F: Fn(usize, &SweepCell, u32) -> Result<u64, CellFailure> + Sync,
{
    run_supervised_controlled(
        plan,
        journal_path,
        out_path,
        resume,
        opts,
        &SweepControl::new(),
        runner,
    )
}

/// [`run_supervised`] with cooperative interruption: `control` is checked
/// at cell boundaries (before each cell starts, and before each retry
/// sleep), so a cancelled or deadline-expired run stops promptly while
/// every *finished* cell stays committed in the journal.
///
/// An interrupted run publishes **no** SweepLog — the journal is the
/// checkpoint, and re-running with `resume` completes the plan with a log
/// byte-identical to an uninterrupted run. The report's
/// [`skipped`](SweepReport::skipped) / [`interrupted`](SweepReport::interrupted)
/// fields say what remains.
///
/// # Errors
///
/// Same contract as [`run_supervised`].
#[allow(clippy::too_many_lines)]
pub fn run_supervised_controlled<F>(
    plan: &SweepPlan,
    journal_path: &Path,
    out_path: &Path,
    resume: bool,
    opts: &SweepOptions,
    control: &SweepControl,
    runner: F,
) -> Result<SweepReport, SweepError>
where
    F: Fn(usize, &SweepCell, u32) -> Result<u64, CellFailure> + Sync,
{
    let (committed, journal) = if resume && journal_path.exists() {
        let committed = load_committed(journal_path, plan)?;
        // The torn tail (if any) is dropped by rewriting the file to
        // exactly the committed prefix before appending: atomic_write
        // publishes the truncation, then we append as usual.
        let mut prefix = render_header(plan);
        prefix.push('\n');
        for rec in committed.iter().flatten() {
            prefix.push_str(&rec.render());
            prefix.push('\n');
        }
        atomic_write(journal_path, &prefix)?;
        (committed, Journal::open_append(journal_path)?)
    } else if journal_path.exists() {
        return Err(SweepError::JournalMismatch(format!(
            "journal {} already exists; pass --resume to continue it or delete it to start over",
            journal_path.display()
        )));
    } else {
        let mut journal = Journal::create(journal_path)?;
        journal.append(&render_header(plan))?;
        (vec![None; plan.cells.len()], journal)
    };

    let replayed = committed.iter().filter(|c| c.is_some()).count();
    let pending: Vec<usize> = (0..plan.cells.len())
        .filter(|&i| committed[i].is_none())
        .collect();

    let journal = Mutex::new(journal);
    // A journal append that fails (disk full, injected fault) must stop
    // the sweep loudly, not panic a worker thread: the first error is
    // captured here, the pool drains via the keep-going predicate, and
    // the supervisor returns it as `SweepError::Io`. Cells whose append
    // failed stay uncommitted, so a resume after the disk recovers
    // re-runs exactly those cells.
    let journal_error: Mutex<Option<io::Error>> = Mutex::new(None);
    let journal_failed = || journal_error.lock().map_or(true, |e| e.is_some());
    // Workers beyond the hardware's parallelism only thrash the
    // scheduler (cells are CPU-bound); clamp like the matrix runner.
    let jobs = crate::pool::effective_jobs(opts.jobs).min(crate::pool::hardware_cores());
    let salt_base = plan.fingerprint();
    let fresh: Vec<Option<Option<CellRecord>>> = crate::pool::par_indexed_map_while(
        jobs,
        &pending,
        || !control.is_interrupted() && !journal_failed(),
        |_, &index| {
            let cell = &plan.cells[index];
            let mut attempts = 0u32;
            let outcome = loop {
                attempts += 1;
                match runner(index, cell, attempts) {
                    Ok(elapsed) => break Ok(elapsed),
                    Err(f)
                        if f.class == FailureClass::Transient && attempts <= opts.max_retries =>
                    {
                        // A retry is a fresh attempt, not in-flight work:
                        // honour interruption instead of sleeping, leaving
                        // the cell uncommitted so resume re-runs it.
                        if control.is_interrupted() {
                            return None;
                        }
                        let backoff = retry_backoff_ms(
                            opts.backoff_base_ms,
                            opts.backoff_cap_ms,
                            attempts,
                            salt_base ^ index as u64,
                        );
                        std::thread::sleep(Duration::from_millis(backoff));
                    }
                    Err(f) => break Err(f),
                }
            };
            let rec = CellRecord {
                index,
                sweep: cell.sweep.clone(),
                point: cell.point.clone(),
                outcome,
                attempts,
            };
            // The commit point: once this append returns, the cell is done
            // forever — a crash immediately after re-runs nothing.
            let append = journal
                .lock()
                .expect("journal lock poisoned")
                .append(&rec.render());
            if let Err(e) = append {
                let mut slot = journal_error.lock().expect("journal error lock poisoned");
                if slot.is_none() {
                    *slot = Some(e);
                }
                // The cell ran but never committed; drop the record so
                // resume re-runs it once the journal is writable again.
                return None;
            }
            Some(rec)
        },
    );

    if let Some(e) = journal_error
        .into_inner()
        .expect("journal error lock poisoned")
    {
        return Err(SweepError::Io(e));
    }

    // Assemble the log in plan order from replayed + fresh records. A
    // `None` slot (outer: never started; inner: retry loop interrupted)
    // is an uncommitted cell left for the next resume.
    let mut slots: Vec<Option<CellRecord>> = committed;
    let mut retries = 0u32;
    let mut executed = 0usize;
    for rec in fresh.into_iter().flatten().flatten() {
        retries += rec.attempts.saturating_sub(1);
        executed += 1;
        let index = rec.index;
        slots[index] = Some(rec);
    }
    let mut log = SweepLog::new();
    let mut failures = Vec::new();
    let mut bundles = Vec::new();
    let mut last_committed = None;
    let mut skipped = 0usize;
    for (i, slot) in slots.iter().enumerate() {
        let Some(rec) = slot.as_ref() else {
            skipped += 1;
            continue;
        };
        last_committed = Some((i, rec.sweep.clone(), rec.point.clone()));
        match &rec.outcome {
            Ok(elapsed) => log.record(&rec.sweep, &rec.point, Ok(*elapsed)),
            Err(f) => {
                log.record(&rec.sweep, &rec.point, Err(f.error.clone()));
                if f.class == FailureClass::Permanent {
                    if let Some(dir) = &opts.bundle_dir {
                        let cell = &plan.cells[i];
                        let bundle = ReproBundle::for_cell(plan, i, cell, f);
                        let path = dir.join(format!(
                            "repro-{}-cell{}.json",
                            plan.name.replace(['/', ' '], "-"),
                            i
                        ));
                        std::fs::create_dir_all(dir)?;
                        bundle.write(&path)?;
                        bundles.push(path);
                    }
                }
                failures.push((i, rec.sweep.clone(), rec.point.clone(), f.clone()));
            }
        }
    }

    // An interrupted run is a checkpoint, not a result: publishing a
    // partial log would let a reader mistake it for the finished sweep,
    // so the journal alone carries the state until resume completes it.
    if skipped == 0 {
        log.write_atomic(out_path)?;
    }
    Ok(SweepReport {
        log,
        replayed,
        executed,
        retries,
        failures,
        bundles,
        journal_path: journal_path.to_path_buf(),
        last_committed,
        skipped,
        interrupted: (skipped > 0)
            .then(|| control.interruption().unwrap_or("interrupted").to_owned()),
    })
}

/// A self-contained reproduction recipe for one permanent cell failure:
/// the application, the exact machine flags (including the fault-schedule
/// spec and seed), and the failure it is expected to reproduce. Written
/// as JSON; replayed with `dashlat repro <bundle>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReproBundle {
    /// Application name (lowercase, as `dashlat run <app>` accepts).
    pub app: String,
    /// The machine flags reproducing the cell's exact configuration.
    pub machine_args: Vec<String>,
    /// Exit code the replay must terminate with.
    pub expect_code: u8,
    /// The failure message observed when the bundle was written.
    pub expect_error: String,
    /// Where the failure came from (sweep/cell or chaos trial).
    pub origin: String,
}

impl ReproBundle {
    /// Builds a bundle for a permanently failed sweep cell.
    pub fn for_cell(
        plan: &SweepPlan,
        index: usize,
        cell: &SweepCell,
        failure: &CellFailure,
    ) -> Self {
        Self {
            app: cell.app.name().to_ascii_lowercase(),
            machine_args: cell.config.to_cli_args(),
            expect_code: failure.code,
            expect_error: failure.error.clone(),
            origin: format!("{} cell #{index} {}/{}", plan.name, cell.sweep, cell.point),
        }
    }

    /// Renders the bundle as a JSON document.
    pub fn to_json(&self) -> String {
        let args: Vec<String> = self.machine_args.iter().map(|a| quote(a)).collect();
        format!(
            "{{\n  \"kind\": \"dashlat-repro\",\n  \"version\": 1,\n  \"app\": {},\n  \
             \"machine_args\": [{}],\n  \"expect\": {{\"code\": {}, \"error\": {}}},\n  \
             \"origin\": {}\n}}\n",
            quote(&self.app),
            args.join(", "),
            self.expect_code,
            quote(&self.expect_error),
            quote(&self.origin)
        )
    }

    /// Parses a bundle document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or missing field.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = Value::parse(text)?;
        if v.get("kind").and_then(Value::as_str) != Some("dashlat-repro") {
            return Err("not a dashlat repro bundle (missing kind)".into());
        }
        match v.get("version").and_then(Value::as_u64) {
            Some(1) => {}
            other => return Err(format!("unsupported bundle version {other:?}")),
        }
        let app = v
            .get("app")
            .and_then(Value::as_str)
            .ok_or("bundle missing app")?
            .to_owned();
        let machine_args = v
            .get("machine_args")
            .and_then(Value::as_arr)
            .ok_or("bundle missing machine_args")?
            .iter()
            .map(|a| {
                a.as_str()
                    .map(str::to_owned)
                    .ok_or("machine_args entry is not a string")
            })
            .collect::<Result<Vec<_>, _>>()?;
        let expect = v.get("expect").ok_or("bundle missing expect")?;
        let expect_code = expect
            .get("code")
            .and_then(Value::as_u64)
            .ok_or("bundle missing expect.code")? as u8;
        let expect_error = expect
            .get("error")
            .and_then(Value::as_str)
            .ok_or("bundle missing expect.error")?
            .to_owned();
        let origin = v
            .get("origin")
            .and_then(Value::as_str)
            .unwrap_or("<unknown>")
            .to_owned();
        Ok(Self {
            app,
            machine_args,
            expect_code,
            expect_error,
            origin,
        })
    }

    /// Writes the bundle atomically to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; on failure `path` is untouched.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        atomic_write(path, &self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dashlat-sweep-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn tiny_plan() -> SweepPlan {
        // A synthetic plan; the fake runners below never look at the
        // config, so base_test() keeps construction cheap.
        let base = ExperimentConfig::base_test();
        SweepPlan {
            name: "unit".into(),
            cells: (0..6)
                .map(|i| SweepCell {
                    app: App::Lu,
                    config: base.clone(),
                    sweep: "unit/LU".into(),
                    point: format!("cell{i}"),
                })
                .collect(),
        }
    }

    fn fast_opts() -> SweepOptions {
        SweepOptions {
            jobs: Some(1),
            max_retries: 2,
            backoff_base_ms: 0,
            backoff_cap_ms: 0,
            bundle_dir: None,
        }
    }

    #[test]
    fn fingerprint_is_sensitive_to_every_identity_field() {
        let plan = tiny_plan();
        let fp = plan.fingerprint();

        let mut renamed = plan.clone();
        renamed.name = "unit2".into();
        assert_ne!(fp, renamed.fingerprint());

        let mut relabeled = plan.clone();
        relabeled.cells[3].point = "cellX".into();
        assert_ne!(fp, relabeled.fingerprint());

        let mut reconfigured = plan.clone();
        reconfigured.cells[0].config = reconfigured.cells[0].config.clone().with_rc();
        assert_ne!(fp, reconfigured.fingerprint());

        let mut reordered = plan.clone();
        reordered.cells.swap(1, 2);
        assert_ne!(fp, reordered.fingerprint());

        assert_eq!(fp, plan.clone().fingerprint());
    }

    #[test]
    fn classification_follows_fault_activity() {
        use dashlat_cpu::machine::RunError;
        let budget = RunFailure::Error(RunError::CycleBudgetExceeded {
            limit: dashlat_sim::Cycle(1),
        });
        assert_eq!(
            CellFailure::classify(&budget, true).class,
            FailureClass::Transient
        );
        assert_eq!(
            CellFailure::classify(&budget, false).class,
            FailureClass::Permanent
        );
        let inv = RunFailure::Error(RunError::InvariantViolation {
            at: dashlat_sim::Cycle(9),
            detail: "wb fifo".into(),
        });
        // Invariant violations are permanent even under faults.
        let f = CellFailure::classify(&inv, true);
        assert_eq!(f.class, FailureClass::Permanent);
        assert_eq!(f.code, 4);
        let panic = RunFailure::Panic("boom".into());
        assert_eq!(
            CellFailure::classify(&panic, true).class,
            FailureClass::Permanent
        );
    }

    #[test]
    fn cell_record_round_trips_including_nasty_strings() {
        let ok = CellRecord {
            index: 3,
            sweep: "figure3/LU".into(),
            point: "RC \"quoted\"\nline".into(),
            outcome: Ok(u64::MAX),
            attempts: 2,
        };
        assert_eq!(CellRecord::parse(&ok.render()).unwrap(), ok);
        let err = CellRecord {
            index: 0,
            sweep: "s\\w".into(),
            point: "p".into(),
            outcome: Err(CellFailure {
                error: "deadlock\tat cycle 7\u{1}".into(),
                code: 2,
                class: FailureClass::Permanent,
            }),
            attempts: 1,
        };
        assert_eq!(CellRecord::parse(&err.render()).unwrap(), err);
        // Journal lines must be single lines.
        assert!(!ok.render().contains('\n'));
        assert!(!err.render().contains('\n'));
    }

    #[test]
    fn supervisor_retries_transients_with_bounded_attempts() {
        let dir = tmpdir("retry");
        let plan = tiny_plan();
        let calls = AtomicU32::new(0);
        let report = run_supervised(
            &plan,
            &dir.join("sweep.journal"),
            &dir.join("out.json"),
            false,
            &fast_opts(),
            |index, _cell, attempt| {
                calls.fetch_add(1, Ordering::Relaxed);
                match index {
                    // Succeeds on the 3rd attempt (2 retries).
                    1 if attempt < 3 => Err(CellFailure::transient("nack storm")),
                    // Transient that never recovers: exhausts retries.
                    2 => Err(CellFailure::transient("stuck")),
                    // Permanent: must not retry.
                    4 => Err(CellFailure {
                        error: "invariant".into(),
                        code: 4,
                        class: FailureClass::Permanent,
                    }),
                    _ => Ok(100 + index as u64),
                }
            },
        )
        .expect("supervised run");
        // Cells: 0 ok(1), 1 ok(3 attempts), 2 err(3 attempts), 3 ok(1),
        // 4 err(1 attempt), 5 ok(1) = 10 runner calls.
        assert_eq!(calls.load(Ordering::Relaxed), 10);
        assert_eq!(report.executed, 6);
        assert_eq!(report.replayed, 0);
        assert_eq!(report.retries, 2 + 2);
        assert_eq!(report.failures.len(), 2);
        assert_eq!(report.log.failed(), 2);
        // Most severe failure is the invariant violation (code 4).
        assert_eq!(report.exit_code(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_replays_committed_cells_and_matches_uninterrupted_log() {
        let dir = tmpdir("resume");
        let plan = tiny_plan();
        let opts = fast_opts();
        let runner = |index: usize, _cell: &SweepCell, _attempt: u32| Ok(1000 + (index as u64) * 7);

        // Uninterrupted reference run.
        let full = run_supervised(
            &plan,
            &dir.join("full.journal"),
            &dir.join("full.json"),
            false,
            &opts,
            runner,
        )
        .expect("full run");

        // "Crashed" run: journal only a prefix, by hand.
        let journal_path = dir.join("crashed.journal");
        {
            let mut j = Journal::create(&journal_path).unwrap();
            j.append(&render_header(&plan)).unwrap();
            for index in [0usize, 2] {
                let rec = CellRecord {
                    index,
                    sweep: plan.cells[index].sweep.clone(),
                    point: plan.cells[index].point.clone(),
                    outcome: runner(index, &plan.cells[index], 1),
                    attempts: 1,
                };
                j.append(&rec.render()).unwrap();
            }
        }
        let resumed = run_supervised(
            &plan,
            &journal_path,
            &dir.join("resumed.json"),
            true,
            &opts,
            |index, cell, attempt| {
                assert!(index != 0 && index != 2, "committed cells must not re-run");
                runner(index, cell, attempt)
            },
        )
        .expect("resumed run");
        assert_eq!(resumed.replayed, 2);
        assert_eq!(resumed.executed, 4);
        assert_eq!(resumed.log, full.log);
        let full_bytes = std::fs::read(dir.join("full.json")).unwrap();
        let resumed_bytes = std::fs::read(dir.join("resumed.json")).unwrap();
        assert_eq!(full_bytes, resumed_bytes);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_append_fault_propagates_and_resume_completes() {
        use dashlat_sim::faultfs::{self, FaultFsPlan};
        let dir = tmpdir("faultfs");
        let plan = tiny_plan();
        let opts = fast_opts();
        let runner = |index: usize, _cell: &SweepCell, _attempt: u32| Ok(500 + index as u64);

        // Uninterrupted reference run for the byte-identity check.
        run_supervised(
            &plan,
            &dir.join("full.journal"),
            &dir.join("full.json"),
            false,
            &opts,
            runner,
        )
        .expect("reference run");

        // Find a seed whose fault schedule lets the header commit but
        // kills a later append: the error must surface from the worker
        // loop (the old code panicked the pool thread here), not from
        // journal creation.
        let mut hit = None;
        for seed in 0..64u64 {
            let jdir = dir.join(format!("s{seed}"));
            std::fs::create_dir_all(&jdir).unwrap();
            faultfs::arm(FaultFsPlan {
                seed,
                eio_prob: 0.4,
                path_filter: Some(jdir.to_string_lossy().into_owned()),
                ..FaultFsPlan::default()
            });
            let result = run_supervised(
                &plan,
                &jdir.join("sweep.journal"),
                &jdir.join("out.json"),
                false,
                &opts,
                runner,
            );
            faultfs::disarm();
            match result {
                Ok(_) => {} // every draw passed; try the next seed
                Err(SweepError::Io(e)) => {
                    assert!(
                        e.to_string().contains("injected fault"),
                        "unexpected io error: {e}"
                    );
                    assert!(
                        !jdir.join("out.json").exists(),
                        "no log may be published by a failed sweep"
                    );
                    let committed = Journal::read_committed_lines(&jdir.join("sweep.journal"))
                        .map_or(0, |l| l.len());
                    if committed >= 2 {
                        hit = Some(jdir);
                        break;
                    }
                }
                Err(other) => panic!("expected an Io error, got {other:?}"),
            }
        }
        let jdir = hit.expect("no seed in 0..64 faulted a worker append");

        // Disk recovered: resume re-runs exactly the uncommitted cells
        // and publishes a log byte-identical to the clean run.
        let resumed = run_supervised(
            &plan,
            &jdir.join("sweep.journal"),
            &jdir.join("out.json"),
            true,
            &opts,
            runner,
        )
        .expect("resume after the fault cleared");
        assert_eq!(resumed.skipped, 0);
        assert!(resumed.replayed >= 1, "committed prefix must be replayed");
        assert_eq!(
            std::fs::read(jdir.join("out.json")).unwrap(),
            std::fs::read(dir.join("full.json")).unwrap(),
            "recovered log must be byte-identical"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_refuses_mismatched_fingerprint_and_missing_resume_flag() {
        let dir = tmpdir("mismatch");
        let plan = tiny_plan();
        let opts = fast_opts();
        let journal_path = dir.join("sweep.journal");
        let runner = |_: usize, _: &SweepCell, _: u32| Ok(1u64);
        run_supervised(
            &plan,
            &journal_path,
            &dir.join("a.json"),
            false,
            &opts,
            runner,
        )
        .expect("first run");

        // Same journal, no --resume: refused.
        let err = run_supervised(
            &plan,
            &journal_path,
            &dir.join("b.json"),
            false,
            &opts,
            runner,
        )
        .expect_err("existing journal without resume must fail");
        assert!(matches!(err, SweepError::JournalMismatch(_)));

        // Different config, --resume: fingerprint mismatch.
        let mut other = plan.clone();
        other.cells[0].config = other.cells[0].config.clone().with_rc();
        let err = run_supervised(
            &other,
            &journal_path,
            &dir.join("c.json"),
            true,
            &opts,
            runner,
        )
        .expect_err("fingerprint mismatch must fail");
        match err {
            SweepError::JournalMismatch(m) => assert!(m.contains("fingerprint"), "{m}"),
            other => panic!("wrong error: {other}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn permanent_failures_emit_repro_bundles_and_diagnostics_name_the_journal() {
        let dir = tmpdir("bundle");
        let plan = tiny_plan();
        let mut opts = fast_opts();
        opts.bundle_dir = Some(dir.join("bundles"));
        let journal_path = dir.join("sweep.journal");
        let report = run_supervised(
            &plan,
            &journal_path,
            &dir.join("out.json"),
            false,
            &opts,
            |index, _cell, _attempt| {
                if index == 3 {
                    Err(CellFailure {
                        error: "invariant: wb fifo".into(),
                        code: 4,
                        class: FailureClass::Permanent,
                    })
                } else {
                    Ok(7)
                }
            },
        )
        .expect("run");
        assert_eq!(report.bundles.len(), 1);
        let bundle =
            ReproBundle::from_json(&std::fs::read_to_string(&report.bundles[0]).unwrap()).unwrap();
        assert_eq!(bundle.app, "lu");
        assert_eq!(bundle.expect_code, 4);
        assert!(bundle.origin.contains("cell #3"));
        assert!(bundle.machine_args.contains(&"--test-scale".to_string()));
        let diags = report.diagnostics();
        assert_eq!(diags.len(), 1);
        assert!(diags[0].contains("cell #3"), "{}", diags[0]);
        assert!(
            diags[0].contains(&journal_path.display().to_string()),
            "diagnostics must name the journal: {}",
            diags[0]
        );
        assert!(
            diags[0].contains("last committed cell #5"),
            "diagnostics must name the last committed cell: {}",
            diags[0]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn repro_bundle_round_trips() {
        let b = ReproBundle {
            app: "mp3d".into(),
            machine_args: vec![
                "--processors".into(),
                "8".into(),
                "--faults".into(),
                "seed=42,nack=0.2,retries=4,backoff=8,cap=64,delay=0.1,maxdelay=32,full=0.05"
                    .into(),
            ],
            expect_code: 4,
            expect_error: "invariant \"wb\"\nbroken".into(),
            origin: "chaos trial #7".into(),
        };
        assert_eq!(ReproBundle::from_json(&b.to_json()).unwrap(), b);
    }

    #[test]
    fn exit_code_ranks_most_severe_first() {
        let mk = |codes: &[u8]| SweepReport {
            log: SweepLog::new(),
            replayed: 0,
            executed: 0,
            retries: 0,
            failures: codes
                .iter()
                .map(|&c| {
                    (
                        0,
                        "s".to_string(),
                        "p".to_string(),
                        CellFailure {
                            error: "e".into(),
                            code: c,
                            class: FailureClass::Permanent,
                        },
                    )
                })
                .collect(),
            bundles: Vec::new(),
            journal_path: PathBuf::from("j"),
            last_committed: None,
            skipped: 0,
            interrupted: None,
        };
        assert_eq!(mk(&[]).exit_code(), 0);
        assert_eq!(mk(&[1, 3, 2]).exit_code(), 2);
        assert_eq!(mk(&[1, 6]).exit_code(), 6);
        assert_eq!(mk(&[2, 4, 6]).exit_code(), 4);
    }

    #[test]
    fn backoff_jitter_is_deterministic_capped_and_spread() {
        // Deterministic: same (salt, attempt) → same delay.
        assert_eq!(
            retry_backoff_ms(50, 2000, 3, 0xdead),
            retry_backoff_ms(50, 2000, 3, 0xdead)
        );
        // Bounded: attempt 3 of base 50 is exp=200; jitter keeps the
        // delay in [100, 200], and the cap clamps deep attempts.
        for salt in 0..256u64 {
            let d = retry_backoff_ms(50, 2000, 3, salt);
            assert!((100..=200).contains(&d), "attempt 3 delay {d} out of range");
            let capped = retry_backoff_ms(50, 2000, 30, salt);
            assert!(
                (1000..=2000).contains(&capped),
                "capped delay {capped} out of range"
            );
        }
        // Spread: across 64 cells failing at the same attempt, the
        // delays must not collapse to lockstep — that is the retry
        // storm this exists to break.
        let delays: std::collections::HashSet<u64> = (0..64u64)
            .map(|salt| retry_backoff_ms(50, 2000, 3, salt))
            .collect();
        assert!(
            delays.len() >= 24,
            "only {} distinct delays across 64 salts — retries are in lockstep",
            delays.len()
        );
        // Degenerate bases stay degenerate (no panic, no jitter).
        assert_eq!(retry_backoff_ms(0, 0, 1, 7), 0);
        assert_eq!(retry_backoff_ms(1, 1, 1, 7), 1);
    }

    #[test]
    fn cancelled_run_checkpoints_and_resume_matches_uninterrupted_log() {
        let dir = tmpdir("cancel");
        let plan = tiny_plan();
        let opts = fast_opts();
        let runner = |index: usize, _cell: &SweepCell, _attempt: u32| Ok(500 + index as u64);

        // Reference: uninterrupted run.
        run_supervised(
            &plan,
            &dir.join("full.journal"),
            &dir.join("full.json"),
            false,
            &opts,
            runner,
        )
        .expect("full run");

        // Cancel after the third cell completes (serial execution, so
        // cells 0..=2 commit and 3..=5 are skipped).
        let token = Arc::new(AtomicBool::new(false));
        let control = SweepControl::new().with_cancel(Arc::clone(&token));
        let out_path = dir.join("cancelled.json");
        let report = run_supervised_controlled(
            &plan,
            &dir.join("cancelled.journal"),
            &out_path,
            false,
            &opts,
            &control,
            |index, cell, attempt| {
                if index == 2 {
                    token.store(true, Ordering::SeqCst);
                }
                runner(index, cell, attempt)
            },
        )
        .expect("cancelled run");
        assert_eq!(report.executed, 3);
        assert_eq!(report.skipped, 3);
        assert_eq!(report.interrupted.as_deref(), Some("cancelled"));
        assert!(!report.is_complete());
        assert!(
            !out_path.exists(),
            "an interrupted run must not publish a SweepLog"
        );

        // Resume with a fresh control: replays the committed prefix,
        // runs the remainder, and the published log is byte-identical.
        token.store(false, Ordering::SeqCst);
        let resumed = run_supervised(
            &plan,
            &dir.join("cancelled.journal"),
            &out_path,
            true,
            &opts,
            |index, cell, attempt| {
                assert!(index > 2, "committed cells must not re-run");
                runner(index, cell, attempt)
            },
        )
        .expect("resumed run");
        assert!(resumed.is_complete());
        assert_eq!(resumed.replayed, 3);
        assert_eq!(resumed.executed, 3);
        assert_eq!(
            std::fs::read(&out_path).unwrap(),
            std::fs::read(dir.join("full.json")).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deadline_in_the_past_skips_every_cell() {
        let dir = tmpdir("deadline");
        let plan = tiny_plan();
        let control = SweepControl::new().with_deadline(Instant::now() - Duration::from_millis(1));
        let report = run_supervised_controlled(
            &plan,
            &dir.join("sweep.journal"),
            &dir.join("out.json"),
            false,
            &fast_opts(),
            &control,
            |_, _, _| panic!("no cell may start past the deadline"),
        )
        .expect("run");
        assert_eq!(report.executed, 0);
        assert_eq!(report.skipped, plan.cells.len());
        assert_eq!(report.interrupted.as_deref(), Some("deadline exceeded"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cell_fingerprint_ignores_labels_but_not_work_identity() {
        let plan = tiny_plan();
        let fp = cell_fingerprint(&plan.cells[0]);
        // Same app+config under different labels: same fingerprint —
        // that is the cross-job cache hit.
        let mut relabeled = plan.cells[0].clone();
        relabeled.sweep = "other/LU".into();
        relabeled.point = "different".into();
        assert_eq!(fp, cell_fingerprint(&relabeled));
        // Different config: different fingerprint.
        let mut reconfigured = plan.cells[0].clone();
        reconfigured.config = reconfigured.config.clone().with_rc();
        assert_ne!(fp, cell_fingerprint(&reconfigured));
        // Different app: different fingerprint.
        let mut other_app = plan.cells[0].clone();
        other_app.app = App::Mp3d;
        assert_ne!(fp, cell_fingerprint(&other_app));
    }
}
