//! Sweep result logging: ordered cell outcomes, partial-result JSON,
//! crash-safe publication.
//!
//! [`SweepLog`] collects per-cell outcomes so one failed configuration
//! degrades a sweep to a *partial* JSON record instead of aborting the
//! whole run. It started life in `dashlat-bench` (which still re-exports
//! it for the figure binaries) and moved here so the supervised sweep in
//! [`crate::sweep`] can assemble logs from journal replay + live runs and
//! publish them atomically ([`SweepLog::write_atomic`]) — a kill mid-write
//! can never leave a truncated results file.

use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::process::ExitCode;
use std::sync::Mutex;

use crate::apps::App;
use crate::config::ExperimentConfig;
use crate::runner::{panic_message, run};

type CellFn<'a> = Box<dyn FnOnce() -> Result<u64, String> + Send + 'a>;

/// A batch of independent sweep cells, built up first and then executed
/// together on the worker pool by [`SweepLog::measure_batch`].
///
/// The sweep binaries used to interleave measuring and printing one cell
/// at a time; batching separates the two so the measurements — each an
/// independent single-threaded simulation — can run in parallel while the
/// log still records (and the binary still prints) results in input order.
#[derive(Default)]
pub struct SweepBatch<'a> {
    cells: Vec<(String, String, CellFn<'a>)>,
}

impl<'a> SweepBatch<'a> {
    /// Empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues one cell: `f` will run under panic isolation when the batch
    /// is measured, recorded under `sweep`/`point`.
    pub fn add(
        &mut self,
        sweep: impl Into<String>,
        point: impl Into<String>,
        f: impl FnOnce() -> Result<u64, String> + Send + 'a,
    ) {
        self.cells.push((sweep.into(), point.into(), Box::new(f)));
    }

    /// Queues a standard-runner cell: `app` under `cfg` (cloned).
    pub fn add_run(
        &mut self,
        sweep: impl Into<String>,
        point: impl Into<String>,
        app: App,
        cfg: &ExperimentConfig,
    ) {
        let cfg = cfg.clone();
        self.add(sweep, point, move || {
            run(app, &cfg)
                .map(|e| e.result.elapsed.as_u64())
                .map_err(|e| e.to_string())
        });
    }

    /// Number of queued cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no cell is queued.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// One sweep point: which sweep it belongs to, which setting it measured,
/// and the elapsed cycles or the failure message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepPoint {
    /// Sweep name, e.g. `write-buffer-depth`.
    pub sweep: String,
    /// Point label within the sweep, e.g. `depth=4`.
    pub point: String,
    /// Elapsed pclocks on success, or why the run failed.
    pub outcome: Result<u64, String>,
}

/// Collects sweep results so one failed configuration degrades the run to
/// a *partial* JSON record instead of aborting the whole binary.
///
/// The sweep binaries (`ablations`, `scaling`) route every measurement
/// through [`SweepLog::measure`]/[`SweepLog::measure_with`]: failures
/// (structured [`RunError`](dashlat_cpu::machine::RunError)s and panics
/// alike) are recorded and warned about, the sweep continues, and
/// [`SweepLog::finish`] emits the machine-readable JSON record with a
/// `complete` flag plus the matching process exit code (0 complete,
/// 5 partial — the same convention as the CLI).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SweepLog {
    points: Vec<SweepPoint>,
}

impl SweepLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one already-measured outcome (no isolation, no warning) —
    /// the supervised sweep uses this to assemble a log from journal
    /// replay plus live runs, in plan order.
    pub fn record(
        &mut self,
        sweep: impl Into<String>,
        point: impl Into<String>,
        outcome: Result<u64, String>,
    ) {
        self.points.push(SweepPoint {
            sweep: sweep.into(),
            point: point.into(),
            outcome,
        });
    }

    /// Runs `f` with panic isolation and records the outcome under
    /// `sweep`/`point`. Returns the elapsed cycles on success, `None` on a
    /// failure (which is recorded and warned to stderr).
    pub fn measure_with(
        &mut self,
        sweep: &str,
        point: &str,
        f: impl FnOnce() -> Result<u64, String>,
    ) -> Option<u64> {
        let outcome = match catch_unwind(AssertUnwindSafe(f)) {
            Ok(r) => r,
            Err(payload) => Err(format!("panic: {}", panic_message(payload))),
        };
        if let Err(e) = &outcome {
            eprintln!("warning: {sweep} / {point} failed: {e}");
        }
        let elapsed = outcome.as_ref().ok().copied();
        self.points.push(SweepPoint {
            sweep: sweep.to_owned(),
            point: point.to_owned(),
            outcome,
        });
        elapsed
    }

    /// Runs `app` under `cfg` through the standard runner, recording the
    /// outcome like [`SweepLog::measure_with`].
    pub fn measure(
        &mut self,
        sweep: &str,
        point: &str,
        app: App,
        cfg: &ExperimentConfig,
    ) -> Option<u64> {
        self.measure_with(sweep, point, || {
            run(app, cfg)
                .map(|e| e.result.elapsed.as_u64())
                .map_err(|e| e.to_string())
        })
    }

    /// Runs every cell of `batch` on the sweep worker pool
    /// ([`crate::pool::par_indexed_map`], `jobs = None` → the process-wide
    /// `--jobs` default) and records each outcome exactly as
    /// [`SweepLog::measure_with`] would, **in input order** regardless of
    /// completion order. Returns the elapsed cycles per cell, also in
    /// input order.
    pub fn measure_batch(
        &mut self,
        batch: SweepBatch<'_>,
        jobs: Option<usize>,
    ) -> Vec<Option<u64>> {
        let jobs = crate::pool::effective_jobs(jobs);
        let cells: Vec<(String, String, Mutex<Option<CellFn<'_>>>)> = batch
            .cells
            .into_iter()
            .map(|(s, p, f)| (s, p, Mutex::new(Some(f))))
            .collect();
        let outcomes = crate::pool::par_indexed_map(jobs, &cells, |_, (_, _, cell)| {
            let f = cell
                .lock()
                .expect("cell lock poisoned")
                .take()
                .expect("each cell runs exactly once");
            match catch_unwind(AssertUnwindSafe(f)) {
                Ok(r) => r,
                Err(payload) => Err(format!("panic: {}", panic_message(payload))),
            }
        });
        cells
            .into_iter()
            .zip(outcomes)
            .map(|((sweep, point, _), outcome)| {
                if let Err(e) = &outcome {
                    eprintln!("warning: {sweep} / {point} failed: {e}");
                }
                let elapsed = outcome.as_ref().ok().copied();
                self.points.push(SweepPoint {
                    sweep,
                    point,
                    outcome,
                });
                elapsed
            })
            .collect()
    }

    /// Number of failed points recorded so far.
    pub fn failed(&self) -> usize {
        self.points.iter().filter(|p| p.outcome.is_err()).count()
    }

    /// The recorded points, in record order.
    pub fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    /// Renders the log as a JSON record. `complete` is false when any
    /// point failed; failed points carry an `error` field instead of
    /// `elapsed`, so consumers see exactly which cells are missing.
    pub fn to_json(&self) -> String {
        let esc = |s: &str| dashlat_sim::json::quote(s);
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"complete\": {},\n  \"points\": [\n",
            self.failed() == 0
        ));
        for (i, p) in self.points.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"sweep\": {}, \"point\": {}, ",
                esc(&p.sweep),
                esc(&p.point)
            ));
            match &p.outcome {
                Ok(v) => out.push_str(&format!("\"elapsed\": {v}}}")),
                Err(e) => out.push_str(&format!("\"error\": {}}}", esc(e))),
            }
            if i + 1 < self.points.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}");
        out
    }

    /// Publishes the JSON record to `path` atomically (write-temp +
    /// fsync + rename): readers see the old file or the complete new one,
    /// never a truncated mix — even across `kill -9` mid-write.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; on failure `path` is untouched.
    pub fn write_atomic(&self, path: &Path) -> io::Result<()> {
        let mut contents = self.to_json();
        contents.push('\n');
        dashlat_sim::journal::atomic_write(path, &contents)
    }

    /// Prints the JSON record (partial or complete) and converts the log
    /// into the process exit code: 0 when complete, 5 when partial.
    pub fn finish(self) -> ExitCode {
        println!("\n## JSON record\n\n{}", self.to_json());
        if self.failed() == 0 {
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "warning: {} sweep point(s) failed; the JSON record above is partial",
                self.failed()
            );
            ExitCode::from(5)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_log_survives_failures_and_emits_partial_json() {
        let mut log = SweepLog::new();
        assert_eq!(log.measure_with("s", "ok", || Ok(42)), Some(42));
        assert_eq!(
            log.measure_with("s", "boom", || panic!("poisoned config")),
            None
        );
        assert_eq!(
            log.measure_with("s", "err", || Err("deadlock".into())),
            None
        );
        assert_eq!(log.failed(), 2);
        let json = log.to_json();
        assert!(json.contains("\"complete\": false"));
        assert!(json.contains("\"elapsed\": 42"));
        assert!(json.contains("panic: poisoned config"));
        assert!(json.contains("\"error\": \"deadlock\""));
    }

    #[test]
    fn sweep_log_complete_json() {
        let mut log = SweepLog::new();
        log.measure_with("s", "a", || Ok(1));
        assert_eq!(log.failed(), 0);
        assert!(log.to_json().contains("\"complete\": true"));
    }

    #[test]
    fn batch_records_in_input_order_and_isolates_panics() {
        let mut batch = SweepBatch::new();
        for i in 0u64..20 {
            batch.add("batch", format!("i={i}"), move || {
                if i == 7 {
                    panic!("cell 7 poisoned");
                }
                Ok(i * 10)
            });
        }
        assert_eq!(batch.len(), 20);
        let mut log = SweepLog::new();
        let elapsed = log.measure_batch(batch, Some(4));
        assert_eq!(elapsed.len(), 20);
        for (i, e) in elapsed.iter().enumerate() {
            if i == 7 {
                assert!(e.is_none());
            } else {
                assert_eq!(*e, Some(i as u64 * 10));
            }
        }
        assert_eq!(log.failed(), 1);
        let json = log.to_json();
        assert!(json.contains("cell 7 poisoned"));
        // Points appear in input order in the JSON record.
        let p3 = json.find("\"point\": \"i=3\"").expect("i=3 present");
        let p12 = json.find("\"point\": \"i=12\"").expect("i=12 present");
        assert!(p3 < p12);
    }

    #[test]
    fn batch_serial_and_parallel_agree() {
        let run_with = |jobs: usize| {
            let mut batch = SweepBatch::new();
            for i in 0u64..12 {
                batch.add("s", format!("i={i}"), move || Ok(i * i));
            }
            let mut log = SweepLog::new();
            let elapsed = log.measure_batch(batch, Some(jobs));
            (elapsed, log.to_json())
        };
        assert_eq!(run_with(1), run_with(8));
    }

    #[test]
    fn record_appends_without_side_effects() {
        let mut log = SweepLog::new();
        log.record("s", "a", Ok(5));
        log.record("s", "b", Err("nope".into()));
        assert_eq!(log.points().len(), 2);
        assert_eq!(log.failed(), 1);
    }

    #[test]
    fn json_escapes_error_payloads_fully() {
        let mut log = SweepLog::new();
        log.record("s", "a", Err("line1\nline2 \"quoted\" \\ tab\t".into()));
        let json = log.to_json();
        // The record stays one readable JSON document: the raw newline is
        // escaped, not embedded.
        assert!(json.contains("line1\\nline2 \\\"quoted\\\" \\\\ tab\\t"));
        let parsed = dashlat_sim::json::Value::parse(&json).expect("valid JSON");
        let points = parsed.get("points").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(
            points[0].get("error").and_then(|v| v.as_str()),
            Some("line1\nline2 \"quoted\" \\ tab\t")
        );
    }

    #[test]
    fn write_atomic_round_trips() {
        let dir = std::env::temp_dir().join(format!("dashlat-sweeplog-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("sweep.json");
        let mut log = SweepLog::new();
        log.record("s", "a", Ok(1));
        log.write_atomic(&path).expect("write");
        let on_disk = std::fs::read_to_string(&path).expect("read");
        assert_eq!(on_disk, format!("{}\n", log.to_json()));
        std::fs::remove_dir_all(&dir).ok();
    }
}
