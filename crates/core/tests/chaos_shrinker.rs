//! End-to-end chaos regression against the seeded W→W reordering bug
//! (`verify-mutations` feature): the fuzzer must *find* the bug, the
//! delta-debugger must *shrink* the provoking fault schedule to the
//! documented bound, and the minimized schedule must replay the exact
//! same failure — that is what makes the repro bundle trustworthy.
//!
//! Two distinct paths are covered, because the seeded bug fires
//! differently per workload:
//!
//! * **LU** never queues two data writes back-to-back on a quiet
//!   machine, so its baseline is clean — only a fault schedule (NACK
//!   retries backing up the write buffer) exposes the bug. This is the
//!   full find → shrink → replay loop.
//! * **MP3D** trips the bug within ~100 cycles with no faults at all, so
//!   the fault-free baseline run is itself the finding and the minimal
//!   schedule is the empty one.

#![cfg(feature = "verify-mutations")]

use dashlat::chaos::{active_classes, run_chaos, ChaosOptions, INACTIVE_PLAN};
use dashlat::runner::{run_isolated, RunFailure};
use dashlat::{App, ExperimentConfig};

/// The machine that arms the seeded bug: release consistency (so writes
/// buffer), the W→W mutation, and the FIFO-retirement invariant that
/// detects it.
fn armed_base() -> ExperimentConfig {
    ExperimentConfig::base_test()
        .with_rc()
        .with_ww_mutation()
        .with_wb_fifo_enforcement()
}

/// LU: clean baseline, bug only under faults. The campaign must find a
/// failing schedule, shrink it to at most **one active fault class**
/// (the documented bound — NACK-induced retry backlog alone provokes
/// the reorder), and the minimized schedule must replay the identical
/// invariant violation.
#[test]
fn chaos_finds_and_shrinks_the_seeded_ww_bug() {
    let mut opts = ChaosOptions::new(App::Lu, armed_base());
    opts.trials = 8;
    opts.seed = 1;
    opts.max_shrink_runs = 48;

    let report = run_chaos(&opts);
    assert!(
        report.clean_elapsed.is_some(),
        "LU baseline must be clean — the bug needs faults to fire"
    );
    let failure = report
        .failure
        .expect("a fault schedule must provoke the seeded bug within 8 trials");
    assert_eq!(failure.oracle, "failure", "the invariant oracle trips");
    assert_eq!(failure.code, 4, "invariant violations exit 4");
    assert!(
        failure.error.contains("W->W program order"),
        "the finding is the seeded reorder, got: {}",
        failure.error
    );
    assert!(
        active_classes(&failure.minimized) <= 1,
        "documented shrink bound: at most one active fault class, got {} ({:?})",
        active_classes(&failure.minimized),
        failure.minimized
    );
    assert!(
        active_classes(&failure.minimized) <= active_classes(&failure.original),
        "shrinking never grows the schedule"
    );
    assert_eq!(failure.minimized.seed, 0, "schedule seed canonicalized");
    assert!(failure.shrink_runs <= opts.max_shrink_runs);

    // The repro contract: replaying the minimized schedule reproduces the
    // exact failure, twice (deterministically).
    let cfg = armed_base()
        .with_invariant_checks(true)
        .with_faults(failure.minimized);
    for round in 0..2 {
        match run_isolated(App::Lu, &cfg) {
            Err(RunFailure::Error(e)) => assert_eq!(
                e.to_string(),
                failure.error,
                "replay round {round} diverged from the recorded failure"
            ),
            other => panic!("replay round {round} did not fail as recorded: {other:?}"),
        }
    }
}

/// MP3D: the bug fires with zero faults, so the baseline run *is* the
/// finding — the campaign reports oracle `baseline` with the empty
/// schedule (trivially minimal), having spent no trials and no shrink
/// runs. Two campaigns agree bit-for-bit.
#[test]
fn baseline_failure_short_circuits_with_the_empty_schedule() {
    let opts = ChaosOptions::new(App::Mp3d, armed_base());
    let report = run_chaos(&opts);
    assert_eq!(report.trials_run, 0);
    assert_eq!(report.clean_elapsed, None);
    let failure = report.failure.clone().expect("baseline must fail");
    assert_eq!(failure.oracle, "baseline");
    assert_eq!(failure.code, 4);
    assert_eq!(failure.minimized, INACTIVE_PLAN);
    assert_eq!(active_classes(&failure.minimized), 0);
    assert_eq!(failure.shrink_runs, 0);
    assert!(
        failure.error.contains("W->W program order"),
        "{}",
        failure.error
    );

    assert_eq!(run_chaos(&opts), report, "campaigns are deterministic");
}
