//! Regression tests for the parallel sweep engine: a matrix run on the
//! worker pool must be **bit-identical** to the serial run, cell for cell.
//!
//! Each cell is an independent single-threaded simulation, so parallelism
//! may only change wall-clock time — never a label, an ordering, a
//! measurement, or a failure message. The fingerprint below is the full
//! `Debug` rendering of the report, which covers every field of every
//! `RunResult` (elapsed cycles, per-class stall breakdowns, memory-system
//! counters, fault records) and every failure variant.

use dashlat::experiments::figure_configs;
use dashlat::{run_matrix_jobs, App, ExperimentConfig, MatrixReport};
use dashlat_sim::fault::FaultPlan;

fn fingerprint(report: &MatrixReport) -> String {
    format!("{report:?}")
}

/// Every figure-2..6 preset matrix, spread across the three applications,
/// produces the same report under `jobs = 1` and `jobs = 8`.
#[test]
fn figure_presets_parallel_matches_serial() {
    let base = ExperimentConfig::base_test();
    let apps = [App::Mp3d, App::Lu, App::Pthor, App::Mp3d, App::Lu];
    for (figure, app) in (2u8..=6).zip(apps) {
        let configs = figure_configs(figure, &base);
        let serial = run_matrix_jobs(app, &configs, Some(1));
        let parallel = run_matrix_jobs(app, &configs, Some(8));
        assert_eq!(
            fingerprint(&serial),
            fingerprint(&parallel),
            "figure {figure} on {app}: parallel report diverged from serial"
        );
    }
}

/// A mixed SC/RC/prefetch/multi-context matrix — including a fault-injected
/// cell and a poisoned (panicking) cell — fingerprints identically under
/// serial and parallel execution: failures land in the same cells with the
/// same messages.
#[test]
fn mixed_matrix_with_failures_parallel_matches_serial() {
    let base = ExperimentConfig::base_test();
    let mut poisoned = base.clone();
    poisoned.contexts = 0;
    let configs = vec![
        base.clone(),
        base.clone().with_rc(),
        base.clone().with_prefetching(),
        base.clone().with_rc().with_prefetching(),
        base.clone().with_contexts(2, dashlat_sim::Cycle(4)),
        base.clone().with_faults(FaultPlan::light(0xDA5)),
        poisoned,
    ];
    for app in App::ALL {
        let serial = run_matrix_jobs(app, &configs, Some(1));
        let parallel = run_matrix_jobs(app, &configs, Some(8));
        assert_eq!(serial.cells.len(), configs.len());
        assert_eq!(
            fingerprint(&serial),
            fingerprint(&parallel),
            "{app}: parallel report diverged from serial"
        );
        // The poisoned cell failed, the rest succeeded — in both modes.
        assert_eq!(serial.successes().len(), configs.len() - 1);
        assert_eq!(parallel.failures().len(), 1);
    }
}
