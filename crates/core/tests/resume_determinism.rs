//! Property test for the crash-safe sweep supervisor: a run killed after
//! committing an *arbitrary* journal prefix and then resumed must publish
//! a `SweepLog` **byte-identical** to the uninterrupted run — serial or
//! parallel, with or without a torn half-record at the journal tail.
//!
//! The test simulates the crash exactly the way a real crash manifests:
//! the journal file on disk holds the header plus the first `k` committed
//! cell records (optionally followed by a torn, newline-less tail, which
//! is what an append interrupted mid-`write` leaves behind). The
//! supervisor replays those `k` cells from the journal and re-runs the
//! rest; determinism of the simulator guarantees the re-run cells produce
//! the same measurements, so the assembled log must match to the byte.

use std::fs;
use std::path::PathBuf;
use std::sync::OnceLock;

use dashlat::sweep::{run_cell_in_process, run_supervised, SweepCell, SweepOptions, SweepPlan};
use dashlat::{App, ExperimentConfig};
use proptest::prelude::*;

/// A compact plan that still exercises every record shape: three apps,
/// mixed consistency/prefetch/context points, and one poisoned cell
/// (zero contexts panics the runner) so failure records replay too.
fn small_plan() -> SweepPlan {
    let base = ExperimentConfig::base_test();
    let mut poisoned = base.clone();
    poisoned.contexts = 0;
    let points = [
        (App::Lu, base.clone(), "SC"),
        (App::Lu, base.clone().with_rc(), "RC"),
        (App::Mp3d, base.clone().with_prefetching(), "SC+PF"),
        (App::Mp3d, poisoned, "poisoned"),
        (App::Pthor, base.clone().with_rc(), "RC"),
        (
            App::Pthor,
            base.with_contexts(2, dashlat_sim::Cycle(4)),
            "MC2",
        ),
    ];
    SweepPlan {
        name: "resume-prop".into(),
        cells: points
            .into_iter()
            .map(|(app, config, point)| SweepCell {
                sweep: format!("resume/{}", app.name()),
                point: point.into(),
                app,
                config,
            })
            .collect(),
    }
}

struct Scratch {
    dir: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("dashlat-resume-prop-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch { dir }
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.dir);
    }
}

/// Runs the plan uninterrupted (once per process — every proptest case
/// compares against the same reference) and returns the published log
/// bytes plus the journal header and cell-record lines (in commit order).
fn uninterrupted(plan: &SweepPlan) -> &'static (Vec<u8>, String, Vec<String>) {
    static REFERENCE: OnceLock<(Vec<u8>, String, Vec<String>)> = OnceLock::new();
    REFERENCE.get_or_init(|| run_uninterrupted(plan))
}

fn run_uninterrupted(plan: &SweepPlan) -> (Vec<u8>, String, Vec<String>) {
    let scratch = Scratch::new("reference");
    let journal = scratch.path("full.journal");
    let out = scratch.path("full.json");
    let opts = SweepOptions {
        jobs: Some(1),
        max_retries: 0,
        ..SweepOptions::default()
    };
    let report = run_supervised(plan, &journal, &out, false, &opts, |_, cell, _| {
        run_cell_in_process(cell)
    })
    .expect("uninterrupted run");
    assert_eq!(report.executed, plan.cells.len());
    let bytes = fs::read(&out).expect("read uninterrupted log");
    let text = fs::read_to_string(&journal).expect("read journal");
    let mut lines = text.lines().map(str::to_owned);
    let header = lines.next().expect("journal header");
    (bytes, header, lines.collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Kill after an arbitrary committed prefix, resume (serially or in
    /// parallel, with or without a torn tail): the published `SweepLog`
    /// is byte-identical to the uninterrupted run's.
    #[test]
    fn resume_after_any_prefix_is_bit_identical(
        prefix_raw in 0u64..1_000,
        parallel in any::<bool>(),
        torn_tail in any::<bool>(),
    ) {
        let scratch = Scratch::new("cases");
        let plan = small_plan();
        let (expect, header, records) = uninterrupted(&plan);
        let k = (prefix_raw as usize) % (records.len() + 1);

        // Reconstruct the exact on-disk state a crash leaves: header,
        // the first k committed records, and optionally the torn start
        // of the record the crash interrupted (no trailing newline).
        let journal = scratch.path("crashed.journal");
        let mut contents = format!("{header}\n");
        for rec in &records[..k] {
            contents.push_str(rec);
            contents.push('\n');
        }
        if torn_tail {
            contents.push_str("{\"kind\":\"cell\",\"index\":9");
        }
        fs::write(&journal, contents).expect("write crashed journal");

        let out = scratch.path("resumed.json");
        let opts = SweepOptions {
            jobs: Some(if parallel { 3 } else { 1 }),
            max_retries: 0,
            ..SweepOptions::default()
        };
        let report = run_supervised(&plan, &journal, &out, true, &opts, |_, cell, _| {
            run_cell_in_process(cell)
        })
        .expect("resumed run");

        prop_assert_eq!(report.replayed, k, "replayed exactly the committed prefix");
        prop_assert_eq!(report.executed, plan.cells.len() - k);
        let resumed = fs::read(&out).expect("read resumed log");
        prop_assert_eq!(
            resumed,
            expect.clone(),
            "resumed log diverged from the uninterrupted run (prefix {}, jobs {}, torn {})",
            k,
            if parallel { 3 } else { 1 },
            torn_tail
        );
    }
}
