//! Warm-state snapshot determinism: pausing a machine, forking its state
//! and resuming must be invisible in the results.
//!
//! Three executions of the same cell are compared field-for-field (via the
//! exhaustive `Debug` rendering, the same fingerprint the bench harness
//! uses for its serial/parallel identity check):
//!
//! 1. one straight `run()` to completion;
//! 2. a chain of bounded `run_segment` calls (pause at every batch
//!    boundary the budget lands on), resuming until done;
//! 3. a `snapshot()` fork taken at the first pause, run to completion.
//!
//! Bit-identical results across all three is what makes warm-state
//! checkpoints safe to substitute for re-simulating a shared sweep prefix.

use dashlat::apps::App;
use dashlat::config::ExperimentConfig;
use dashlat_cpu::machine::{Machine, RunPhase, RunResult};
use dashlat_cpu::ops::Workload;
use dashlat_mem::layout::AddressSpaceBuilder;
use dashlat_mem::system::MemorySystem;

/// Builds the machine for one cell exactly the way the runner wires it.
fn build_machine(app: App, config: &ExperimentConfig) -> Machine<Box<dyn Workload>> {
    let topo = config.topology();
    let mut space = AddressSpaceBuilder::new(config.processors);
    let workload = app.build(config.scale, topo, &mut space, config.prefetching);
    let mem = MemorySystem::new(config.mem_config(), space.build());
    Machine::new(config.proc_config(), topo, mem, workload)
}

/// The exhaustive result fingerprint (every public field participates).
fn fingerprint(r: &RunResult) -> String {
    format!("{r:?}")
}

fn straight_run(app: App, config: &ExperimentConfig) -> RunResult {
    build_machine(app, config).run().expect("straight run")
}

#[test]
fn segmented_run_matches_straight_run() {
    let config = ExperimentConfig::base_test();
    for app in [App::Mp3d, App::Lu] {
        let straight = fingerprint(&straight_run(app, &config));

        // Resume in small segments so many pause points are exercised.
        let mut machine = build_machine(app, &config);
        let mut segments = 0u32;
        let segmented = loop {
            match machine.run_segment(50_000).expect("segment") {
                RunPhase::Done(result) => break *result,
                RunPhase::Paused(parked) => {
                    machine = *parked;
                    segments += 1;
                }
            }
        };
        assert!(segments > 1, "{app}: budget too large to exercise pauses");
        assert_eq!(
            fingerprint(&segmented),
            straight,
            "{app}: segmented run diverged from straight run"
        );
    }
}

#[test]
fn snapshot_fork_matches_straight_run() {
    let config = ExperimentConfig::base_test();
    let app = App::Mp3d;
    let straight = fingerprint(&straight_run(app, &config));

    // Pause once mid-run, fork the warm state, and finish both machines.
    let paused = match build_machine(app, &config)
        .run_segment(200_000)
        .expect("first segment")
    {
        RunPhase::Paused(parked) => *parked,
        RunPhase::Done(_) => panic!("budget too large: run finished before the pause"),
    };
    let fork = paused.snapshot().expect("workload supports forking");

    let original = run_to_completion(paused);
    let forked = run_to_completion(fork);

    assert_eq!(
        fingerprint(&original),
        straight,
        "resumed original diverged from straight run"
    );
    assert_eq!(
        fingerprint(&forked),
        straight,
        "snapshot fork diverged from straight run"
    );
}

fn run_to_completion(machine: Machine<Box<dyn Workload>>) -> RunResult {
    match machine.run_segment(u64::MAX).expect("completion segment") {
        RunPhase::Done(result) => *result,
        RunPhase::Paused(_) => unreachable!("unbounded budget cannot pause"),
    }
}

#[test]
fn snapshot_is_independent_of_the_original() {
    // Running the fork first must not perturb the original (deep clone).
    let config = ExperimentConfig::base_test();
    let app = App::Lu;
    let straight = fingerprint(&straight_run(app, &config));

    let paused = match build_machine(app, &config)
        .run_segment(100_000)
        .expect("first segment")
    {
        RunPhase::Paused(parked) => *parked,
        RunPhase::Done(_) => panic!("budget too large: run finished before the pause"),
    };
    let fork = paused.snapshot().expect("workload supports forking");
    let forked = fingerprint(&run_to_completion(fork));
    let original = fingerprint(&run_to_completion(paused));
    assert_eq!(forked, straight);
    assert_eq!(original, straight);
}
