//! Execution-time decomposition.
//!
//! Every figure in the paper is a stack of normalized execution-time
//! components. [`TimeBreakdown`] accumulates those components per processor;
//! the experiment runner aggregates them machine-wide and normalizes
//! against a baseline run.

use std::fmt;
use std::ops::{Add, AddAssign};

use dashlat_sim::Cycle;

/// Per-processor decomposition of where cycles went.
///
/// Which sections a paper figure shows depends on the experiment:
/// Figures 2–4 use busy/read/write/sync (+ prefetch overhead); Figures 5–6
/// use busy/switching/all-idle/no-switch (+ prefetch overhead). All
/// components are tracked simultaneously.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimeBreakdown {
    /// Useful cycles (compute, issue slots, primary-cache read hits, and
    /// any busy-wait spinning the application performs).
    pub busy: Cycle,
    /// Stall waiting for reads (single-context attribution).
    pub read_stall: Cycle,
    /// Stall waiting for writes, including write-buffer-full stalls.
    pub write_stall: Cycle,
    /// Stall on locks and barriers.
    pub sync_stall: Cycle,
    /// Prefetch overhead: issue instructions, buffer-full stalls and
    /// primary-cache fill lockouts.
    pub prefetch_overhead: Cycle,
    /// Context-switch overhead cycles (multiple-context processors).
    pub switching: Cycle,
    /// Idle cycles with every context blocked (multiple-context
    /// processors).
    pub all_idle: Cycle,
    /// Short stalls that do not trigger a context switch (secondary-cache
    /// write hits under SC, fill interference).
    pub no_switch: Cycle,
}

impl TimeBreakdown {
    /// Sum of all components — the processor's total execution time.
    pub fn total(&self) -> Cycle {
        self.busy
            + self.read_stall
            + self.write_stall
            + self.sync_stall
            + self.prefetch_overhead
            + self.switching
            + self.all_idle
            + self.no_switch
    }

    /// Processor utilization: busy / total.
    pub fn utilization(&self) -> f64 {
        let t = self.total().as_u64();
        if t == 0 {
            0.0
        } else {
            self.busy.as_u64() as f64 / t as f64
        }
    }

    /// Scales every component by `per_mille / 1000` (used for normalized
    /// report rendering without floating-point accumulation).
    pub fn scaled_percent(&self, baseline_total: Cycle) -> ScaledBreakdown {
        let base = baseline_total.as_u64().max(1) as f64;
        let pct = |c: Cycle| c.as_u64() as f64 * 100.0 / base;
        ScaledBreakdown {
            busy: pct(self.busy),
            read_stall: pct(self.read_stall),
            write_stall: pct(self.write_stall),
            sync_stall: pct(self.sync_stall),
            prefetch_overhead: pct(self.prefetch_overhead),
            switching: pct(self.switching),
            all_idle: pct(self.all_idle),
            no_switch: pct(self.no_switch),
        }
    }
}

impl Add for TimeBreakdown {
    type Output = TimeBreakdown;
    fn add(self, rhs: TimeBreakdown) -> TimeBreakdown {
        TimeBreakdown {
            busy: self.busy + rhs.busy,
            read_stall: self.read_stall + rhs.read_stall,
            write_stall: self.write_stall + rhs.write_stall,
            sync_stall: self.sync_stall + rhs.sync_stall,
            prefetch_overhead: self.prefetch_overhead + rhs.prefetch_overhead,
            switching: self.switching + rhs.switching,
            all_idle: self.all_idle + rhs.all_idle,
            no_switch: self.no_switch + rhs.no_switch,
        }
    }
}

impl AddAssign for TimeBreakdown {
    fn add_assign(&mut self, rhs: TimeBreakdown) {
        *self = *self + rhs;
    }
}

impl fmt::Display for TimeBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "busy={} read={} write={} sync={} pf={} switch={} idle={} noswitch={}",
            self.busy,
            self.read_stall,
            self.write_stall,
            self.sync_stall,
            self.prefetch_overhead,
            self.switching,
            self.all_idle,
            self.no_switch
        )
    }
}

/// A breakdown expressed as percentages of a baseline total (figure bars).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ScaledBreakdown {
    /// Busy percentage of baseline.
    pub busy: f64,
    /// Read-stall percentage.
    pub read_stall: f64,
    /// Write-stall percentage.
    pub write_stall: f64,
    /// Synchronization percentage.
    pub sync_stall: f64,
    /// Prefetch-overhead percentage.
    pub prefetch_overhead: f64,
    /// Context-switching percentage.
    pub switching: f64,
    /// All-idle percentage.
    pub all_idle: f64,
    /// No-switch idle percentage.
    pub no_switch: f64,
}

impl ScaledBreakdown {
    /// Height of the whole bar.
    pub fn total(&self) -> f64 {
        self.busy
            + self.read_stall
            + self.write_stall
            + self.sync_stall
            + self.prefetch_overhead
            + self.switching
            + self.all_idle
            + self.no_switch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TimeBreakdown {
        TimeBreakdown {
            busy: Cycle(100),
            read_stall: Cycle(50),
            write_stall: Cycle(30),
            sync_stall: Cycle(20),
            prefetch_overhead: Cycle(0),
            switching: Cycle(0),
            all_idle: Cycle(0),
            no_switch: Cycle(0),
        }
    }

    #[test]
    fn total_sums_components() {
        assert_eq!(sample().total(), Cycle(200));
    }

    #[test]
    fn utilization() {
        assert!((sample().utilization() - 0.5).abs() < 1e-12);
        assert_eq!(TimeBreakdown::default().utilization(), 0.0);
    }

    #[test]
    fn addition() {
        let s = sample() + sample();
        assert_eq!(s.busy, Cycle(200));
        assert_eq!(s.total(), Cycle(400));
        let mut t = sample();
        t += sample();
        assert_eq!(t, s);
    }

    #[test]
    fn scaling_to_baseline() {
        let b = sample();
        let scaled = b.scaled_percent(Cycle(200));
        assert!((scaled.busy - 50.0).abs() < 1e-9);
        assert!((scaled.total() - 100.0).abs() < 1e-9);
        // Against a larger baseline the bar shrinks.
        let scaled2 = b.scaled_percent(Cycle(400));
        assert!((scaled2.total() - 50.0).abs() < 1e-9);
    }
}
