//! Processor-side configuration: consistency model, contexts, buffers.

use dashlat_sim::fault::FaultPlan;
use dashlat_sim::Cycle;

/// Memory consistency model (paper §4).
///
/// The paper evaluates the two ends of the spectrum (SC and RC) and notes
/// that processor consistency and weak consistency "fall between
/// sequential and release consistency models in terms of flexibility".
/// Both intermediates are implemented here as extensions so the whole
/// spectrum can be swept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Consistency {
    /// Sequential consistency: every access is delayed until the previous
    /// one completes; the processor stalls on every read *and* write.
    Sc,
    /// Processor consistency (Goodman): writes from one processor are seen
    /// in issue order, but reads may bypass buffered writes. Modelled as
    /// the RC write path with *every* write treated like a release is not
    /// needed — only FIFO retirement, which the write buffer already
    /// guarantees; unlike RC, a release gets no special treatment (it
    /// retires in FIFO order without waiting for invalidation acks).
    Pc,
    /// Weak consistency (Dubois et al.): ordinary accesses are buffered
    /// and pipelined, but *every* synchronization access (acquire and
    /// release alike) waits until all previously issued accesses complete,
    /// including invalidation acknowledgements.
    Wc,
    /// Release consistency: writes retire through the write buffer, reads
    /// bypass buffered writes, and only a *release* is delayed until all
    /// previous writes (including invalidation acks) complete.
    Rc,
}

impl Consistency {
    /// True for the models that buffer writes (everything except SC).
    pub fn buffers_writes(self) -> bool {
        !matches!(self, Consistency::Sc)
    }

    /// True if a release access must wait for all prior writes' acks.
    pub fn release_waits(self) -> bool {
        matches!(self, Consistency::Wc | Consistency::Rc)
    }

    /// True if an acquire access must wait for all prior writes' acks
    /// (weak consistency fences on every synchronization operation).
    pub fn acquire_waits(self) -> bool {
        matches!(self, Consistency::Wc)
    }
}

impl std::fmt::Display for Consistency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Consistency::Sc => write!(f, "SC"),
            Consistency::Pc => write!(f, "PC"),
            Consistency::Wc => write!(f, "WC"),
            Consistency::Rc => write!(f, "RC"),
        }
    }
}

impl std::str::FromStr for Consistency {
    type Err = String;

    /// Parses the lowercase or uppercase model name (`sc`, `pc`, `wc`,
    /// `rc`) — the inverse of [`Display`](std::fmt::Display), shared by
    /// the CLI flag parser and the job-submission API.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "sc" => Ok(Consistency::Sc),
            "pc" => Ok(Consistency::Pc),
            "wc" => Ok(Consistency::Wc),
            "rc" => Ok(Consistency::Rc),
            other => Err(format!(
                "unknown consistency model {other:?} (expected sc, pc, wc or rc)"
            )),
        }
    }
}

/// Configuration of each processor's environment.
#[derive(Debug, Clone)]
pub struct ProcConfig {
    /// Consistency model.
    pub consistency: Consistency,
    /// Hardware contexts per processor (1, 2 or 4 in the paper).
    pub contexts: usize,
    /// Cycles to switch between contexts (4 or 16 in the paper).
    pub switch_overhead: Cycle,
    /// Stalls at or below this many cycles do not trigger a context switch
    /// (the 2-cycle secondary write hit stays "no switch" idle; bus-level
    /// misses switch).
    pub no_switch_threshold: Cycle,
    /// Whether software prefetch operations are honoured; when false,
    /// `Op::Prefetch` is a free no-op (the "without prefetching" bars).
    pub prefetching: bool,
    /// Instruction overhead charged per issued prefetch (address
    /// computation, the conditional, and the prefetch instruction itself).
    pub prefetch_issue_overhead: Cycle,
    /// Write buffer depth (16 in the paper).
    pub write_buffer_entries: usize,
    /// Prefetch buffer depth (16 in the paper).
    pub prefetch_buffer_entries: usize,
    /// Minimum spacing between successive prefetch issues onto the bus
    /// (the bus transfer occupancy; prefetches behind it pipeline).
    pub prefetch_issue_spacing: Cycle,
    /// Minimum spacing between successive write-buffer issues onto the bus
    /// (RC pipelines writes at this rate).
    pub write_issue_spacing: Cycle,
    /// When set, the machine records busy cycles and long-latency misses
    /// into fixed-width time buckets, returned as `RunResult::timeline` —
    /// the utilization-over-time view (LU's poor-early / good-late cache
    /// behaviour is directly visible there).
    pub timeline_bucket: Option<Cycle>,
    /// Perfect-lookahead window for reads, in cycles. The paper's
    /// processors stall on every read; it notes that "processors that
    /// allow multiple outstanding reads and out-of-order execution" were an
    /// open research question (§4.1). This knob answers the what-if as an
    /// optimistic bound: up to this many cycles of every read miss are
    /// assumed to overlap with independent work, so the charged stall is
    /// `max(0, miss latency − window)`. Zero (the default) reproduces the
    /// paper's blocking-read processors.
    pub read_lookahead: Cycle,
    /// Fault-injection plan shared by the memory system and the
    /// processor-side buffers; `None` (or an inactive plan) runs clean.
    pub faults: Option<FaultPlan>,
    /// Check the coherence invariants of every touched line after every
    /// memory access, failing the run with
    /// [`RunError::InvariantViolation`](crate::machine::RunError) on the
    /// first violation. Defaults to on in debug builds, off in release.
    pub check_invariants: bool,
    /// Enforce the write buffer's W→W FIFO retirement order as an online
    /// invariant, failing the run with
    /// [`RunError::InvariantViolation`](crate::machine::RunError) when an
    /// older buffered write is serviced after a newer one. Off by
    /// default and deliberately *separate* from [`check_invariants`]: the
    /// memory-model verifier runs seeded-mutation litmus tests (which
    /// reorder on purpose) with coherence checking on, expecting them to
    /// *complete* with reordered outcomes. Chaos testing and sweep
    /// supervision turn this on to catch reordering bugs as first-class
    /// failures.
    ///
    /// [`check_invariants`]: ProcConfig::check_invariants
    pub enforce_wb_fifo: bool,
    /// **Deliberately seeded relaxation bug** (compiled only with the
    /// `verify-mutations` feature; defaults to `false` so a
    /// feature-unified workspace build behaves identically). When set, the
    /// write buffer services its *second* entry ahead of its head whenever
    /// two or more data writes are queued — breaking the W→W FIFO order
    /// every buffering model in this machine guarantees. Exists purely so
    /// the memory-model verifier's regression tests can prove the checker
    /// catches a real reordering bug with a rendered counterexample.
    #[cfg(feature = "verify-mutations")]
    pub relaxation_bug: bool,
}

impl ProcConfig {
    /// The paper's baseline: single-context SC machine, prefetching off.
    pub fn sc_baseline() -> Self {
        ProcConfig {
            consistency: Consistency::Sc,
            contexts: 1,
            switch_overhead: Cycle(4),
            no_switch_threshold: Cycle(6),
            prefetching: false,
            prefetch_issue_overhead: Cycle(3),
            write_buffer_entries: 16,
            prefetch_buffer_entries: 16,
            prefetch_issue_spacing: Cycle(4),
            write_issue_spacing: Cycle(4),
            read_lookahead: Cycle(0),
            timeline_bucket: None,
            faults: None,
            check_invariants: cfg!(debug_assertions),
            enforce_wb_fifo: false,
            #[cfg(feature = "verify-mutations")]
            relaxation_bug: false,
        }
    }

    /// Release-consistency variant of the baseline.
    pub fn rc_baseline() -> Self {
        ProcConfig {
            consistency: Consistency::Rc,
            ..Self::sc_baseline()
        }
    }

    /// Processor-consistency variant (extension; see [`Consistency::Pc`]).
    pub fn pc_baseline() -> Self {
        ProcConfig {
            consistency: Consistency::Pc,
            ..Self::sc_baseline()
        }
    }

    /// Weak-consistency variant (extension; see [`Consistency::Wc`]).
    pub fn wc_baseline() -> Self {
        ProcConfig {
            consistency: Consistency::Wc,
            ..Self::sc_baseline()
        }
    }

    /// Returns a copy with prefetching enabled.
    pub fn with_prefetching(mut self) -> Self {
        self.prefetching = true;
        self
    }

    /// Returns a copy with `contexts` hardware contexts and the given
    /// switch overhead.
    pub fn with_contexts(mut self, contexts: usize, switch_overhead: Cycle) -> Self {
        assert!(contexts > 0, "need at least one context");
        self.contexts = contexts;
        self.switch_overhead = switch_overhead;
        self
    }

    /// Returns a copy that runs under the given fault plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Returns a copy with online invariant checking forced on or off.
    pub fn with_invariant_checks(mut self, on: bool) -> Self {
        self.check_invariants = on;
        self
    }

    /// Returns a copy with the write-buffer W→W FIFO-order invariant
    /// enforced (see [`ProcConfig::enforce_wb_fifo`]).
    pub fn with_wb_fifo_enforcement(mut self) -> Self {
        self.enforce_wb_fifo = true;
        self
    }

    /// Returns a copy with the seeded write-buffer reordering bug armed
    /// (see [`ProcConfig::relaxation_bug`]).
    #[cfg(feature = "verify-mutations")]
    pub fn with_relaxation_bug(mut self) -> Self {
        self.relaxation_bug = true;
        self
    }
}

impl Default for ProcConfig {
    fn default() -> Self {
        Self::sc_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baselines() {
        let sc = ProcConfig::sc_baseline();
        assert_eq!(sc.consistency, Consistency::Sc);
        assert_eq!(sc.contexts, 1);
        assert!(!sc.prefetching);
        assert_eq!(sc.write_buffer_entries, 16);
        let rc = ProcConfig::rc_baseline();
        assert_eq!(rc.consistency, Consistency::Rc);
    }

    #[test]
    fn builder_helpers() {
        let c = ProcConfig::rc_baseline()
            .with_prefetching()
            .with_contexts(4, Cycle(16));
        assert!(c.prefetching);
        assert_eq!(c.contexts, 4);
        assert_eq!(c.switch_overhead, Cycle(16));
    }

    #[test]
    fn consistency_display() {
        assert_eq!(Consistency::Sc.to_string(), "SC");
        assert_eq!(Consistency::Rc.to_string(), "RC");
    }

    #[test]
    #[should_panic(expected = "at least one context")]
    fn zero_contexts_rejected() {
        let _ = ProcConfig::sc_baseline().with_contexts(0, Cycle(4));
    }
}
