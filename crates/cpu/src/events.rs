//! Analysis events: the stream the race detector and its sibling passes
//! consume.
//!
//! Two producers emit the same event vocabulary:
//!
//! * the live [`crate::machine::Machine`], when built with
//!   `with_event_log()` — every shared access and sync operation is
//!   recorded at its *commit point* (writes when they enter the write
//!   buffer, acquires when the lock is actually granted), so the event
//!   order is exactly the order the memory system observed;
//! * [`events_from_trace`], a fault-tolerant logical replayer that turns a
//!   serialized [`Trace`] into the same stream without simulating timing.
//!   It is deliberately forgiving: a trace with a *dropped Release* (the
//!   labeling bug the analyzer exists to find) would deadlock a strict
//!   replayer, so stuck locks are force-granted and diverged barriers
//!   force-released — with the crucial property that forced transitions
//!   contribute **no happens-before edge**, letting the detector report the
//!   race instead of hanging.

use std::collections::VecDeque;

use dashlat_mem::addr::Addr;
use dashlat_sim::Cycle;

use crate::ops::{BarrierId, LockId, Op, ProcId, SyncConfig};
use crate::trace::Trace;

/// What happened, from the analysis passes' point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Shared read committed.
    Read(Addr),
    /// Shared write committed (entered the write buffer / gained
    /// ownership).
    Write(Addr),
    /// Non-binding prefetch issued.
    Prefetch {
        /// Prefetched address.
        addr: Addr,
        /// Read-exclusive prefetch.
        exclusive: bool,
    },
    /// Lock granted to the process (an acquire access).
    Acquire(LockId),
    /// Lock release committed (a release access).
    Release(LockId),
    /// Process arrived at a barrier.
    BarrierArrive(BarrierId),
    /// A stuck barrier episode was force-released by the replayer without
    /// completing: analysis passes must discard the pending episode and
    /// create **no** ordering edges from it.
    BarrierForced(BarrierId),
    /// Process finished.
    Done,
}

/// One analysis event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisEvent {
    /// Issuing process.
    pub pid: ProcId,
    /// Index of the originating operation within `pid`'s stream (0-based).
    pub op_index: u64,
    /// Commit time: simulated cycles for machine-produced logs, a global
    /// logical sequence number for replayed traces. Monotone across the
    /// whole log either way.
    pub cycle: Cycle,
    /// What happened.
    pub kind: EventKind,
}

/// Diagnostics the fault-tolerant replayer records when a trace does not
/// replay cleanly. A well-formed trace produces none.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayNote {
    /// A process was stuck acquiring a lock nobody was going to release;
    /// the replayer granted it anyway (with no ordering edge).
    ForcedGrant {
        /// The lock involved.
        lock: LockId,
        /// The process that received the forced grant.
        pid: ProcId,
        /// Who held the lock at that point, if anyone.
        holder: Option<ProcId>,
    },
    /// A barrier episode could never complete (some process was stuck or
    /// finished); the arrived processes were released without an episode.
    ForcedBarrier {
        /// The barrier involved.
        barrier: BarrierId,
        /// How many processes had arrived.
        arrived: usize,
        /// How many were expected.
        expected: usize,
    },
    /// A process released a lock it did not hold.
    BadRelease {
        /// The lock involved.
        lock: LockId,
        /// The releasing process.
        pid: ProcId,
        /// The actual holder, if any.
        holder: Option<ProcId>,
    },
}

impl std::fmt::Display for ReplayNote {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayNote::ForcedGrant { lock, pid, holder } => match holder {
                Some(h) => write!(
                    f,
                    "lock {} force-granted to {pid} while held by {h} (missing Release?)",
                    lock.0
                ),
                None => write!(f, "lock {} force-granted to {pid}", lock.0),
            },
            ReplayNote::ForcedBarrier {
                barrier,
                arrived,
                expected,
            } => write!(
                f,
                "barrier {} force-released with {arrived}/{expected} arrivals",
                barrier.0
            ),
            ReplayNote::BadRelease { lock, pid, holder } => match holder {
                Some(h) => write!(f, "{pid} released lock {} held by {h}", lock.0),
                None => write!(f, "{pid} released lock {} that nobody held", lock.0),
            },
        }
    }
}

/// An ordered stream of analysis events plus the context the passes need.
#[derive(Debug, Clone)]
pub struct EventLog {
    /// Number of processes.
    pub nprocs: usize,
    /// Sync declarations (lock/barrier addresses, labeled ranges).
    pub sync: SyncConfig,
    /// The events, in commit order.
    pub events: Vec<AnalysisEvent>,
    /// Replay diagnostics (always empty for machine-produced logs).
    pub notes: Vec<ReplayNote>,
}

impl EventLog {
    /// An empty log for `nprocs` processes with the given declarations.
    pub fn new(nprocs: usize, sync: SyncConfig) -> Self {
        EventLog {
            nprocs,
            sync,
            events: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Per-process replay cursor.
struct ReplayProc {
    ops: VecDeque<Op>,
    /// Index of the *next* op within the original stream.
    next_index: u64,
    blocked: Option<Blocked>,
    finished: bool,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Blocked {
    OnLock(LockId),
    OnBarrier(BarrierId),
}

/// Replays a [`Trace`] logically (no timing model) into an [`EventLog`].
///
/// Scheduling is deterministic round-robin, one operation per runnable
/// process per round; event `cycle` stamps are a global sequence number.
/// Lock grants are FIFO. When no process can make progress the replayer
/// resolves the stall instead of hanging:
///
/// 1. the barrier with the most arrivals is force-released
///    ([`EventKind::BarrierForced`], [`ReplayNote::ForcedBarrier`]) — its
///    episode produces no ordering edges; otherwise
/// 2. the lowest-numbered process stuck on a lock is force-granted it
///    ([`ReplayNote::ForcedGrant`]); the grant joins whatever clock the
///    lock last published, which for a dropped Release is *stale* — so the
///    detector still sees the missing edge.
///
/// Releases of unheld locks are recorded ([`ReplayNote::BadRelease`]) and
/// otherwise ignored. A clean trace replays with an empty `notes` list.
pub fn events_from_trace(trace: &Trace) -> EventLog {
    let nprocs = trace.streams.len();
    let mut log = EventLog::new(nprocs, trace.sync.clone());
    let mut procs: Vec<ReplayProc> = trace
        .streams
        .iter()
        .map(|s| ReplayProc {
            ops: s.iter().copied().collect(),
            next_index: 0,
            blocked: None,
            finished: s.is_empty(),
        })
        .collect();
    let mut holder: Vec<Option<ProcId>> = vec![None; trace.sync.lock_addrs.len().max(64)];
    let mut waiters: Vec<VecDeque<ProcId>> = vec![VecDeque::new(); holder.len()];
    let mut arrived: Vec<Vec<ProcId>> = vec![Vec::new(); trace.sync.barrier_addrs.len().max(64)];
    let mut seq: u64 = 0;

    // Grows the per-lock/per-barrier tables on demand (traces may use ids
    // beyond their declared addresses).
    fn ensure<T: Default + Clone>(v: &mut Vec<T>, i: usize) {
        if i >= v.len() {
            v.resize(i + 1, T::default());
        }
    }

    loop {
        let mut progressed = false;
        for p in 0..nprocs {
            if procs[p].finished || procs[p].blocked.is_some() {
                continue;
            }
            let Some(op) = procs[p].ops.front().copied() else {
                procs[p].finished = true;
                continue;
            };
            let op_index = procs[p].next_index;
            let pid = ProcId(p);
            let emit = |log: &mut EventLog, seq: &mut u64, kind: EventKind| {
                log.events.push(AnalysisEvent {
                    pid,
                    op_index,
                    cycle: Cycle(*seq),
                    kind,
                });
                *seq += 1;
            };
            match op {
                Op::Compute(_) => {}
                Op::Read(a) => emit(&mut log, &mut seq, EventKind::Read(a)),
                Op::Write(a) => emit(&mut log, &mut seq, EventKind::Write(a)),
                // An RMW reads and writes the location atomically; for
                // happens-before purposes the write side dominates.
                Op::Rmw(a) => emit(&mut log, &mut seq, EventKind::Write(a)),
                Op::Prefetch { addr, exclusive } => {
                    emit(&mut log, &mut seq, EventKind::Prefetch { addr, exclusive });
                }
                Op::Acquire(l) => {
                    ensure(&mut holder, l.0);
                    ensure(&mut waiters, l.0);
                    if holder[l.0].is_none() && waiters[l.0].is_empty() {
                        holder[l.0] = Some(pid);
                        emit(&mut log, &mut seq, EventKind::Acquire(l));
                    } else {
                        // Block; the grant (and its event) happens at the
                        // matching Release, FIFO.
                        waiters[l.0].push_back(pid);
                        procs[p].blocked = Some(Blocked::OnLock(l));
                        // The op itself is consumed when the grant fires.
                        progressed = true;
                        continue;
                    }
                }
                Op::Release(l) => {
                    ensure(&mut holder, l.0);
                    ensure(&mut waiters, l.0);
                    emit(&mut log, &mut seq, EventKind::Release(l));
                    if holder[l.0] == Some(pid) {
                        holder[l.0] = None;
                        if let Some(next) = waiters[l.0].pop_front() {
                            holder[l.0] = Some(next);
                            let grant_index = procs[next.0].next_index;
                            log.events.push(AnalysisEvent {
                                pid: next,
                                op_index: grant_index,
                                cycle: Cycle(seq),
                                kind: EventKind::Acquire(l),
                            });
                            seq += 1;
                            procs[next.0].blocked = None;
                            procs[next.0].ops.pop_front();
                            procs[next.0].next_index += 1;
                        }
                    } else {
                        log.notes.push(ReplayNote::BadRelease {
                            lock: l,
                            pid,
                            holder: holder[l.0],
                        });
                    }
                }
                Op::Barrier(b) => {
                    ensure(&mut arrived, b.0);
                    arrived[b.0].push(pid);
                    emit(&mut log, &mut seq, EventKind::BarrierArrive(b));
                    procs[p].ops.pop_front();
                    procs[p].next_index += 1;
                    progressed = true;
                    if arrived[b.0].len() == nprocs {
                        for q in arrived[b.0].drain(..) {
                            procs[q.0].blocked = None;
                        }
                    } else {
                        procs[p].blocked = Some(Blocked::OnBarrier(b));
                    }
                    continue;
                }
                Op::Done => {
                    emit(&mut log, &mut seq, EventKind::Done);
                    procs[p].finished = true;
                }
            }
            procs[p].ops.pop_front();
            procs[p].next_index += 1;
            progressed = true;
        }
        if procs.iter().all(|pr| pr.finished) {
            break;
        }
        if progressed {
            continue;
        }
        // Global stall: every unfinished process is blocked. Resolve
        // deterministically, never adding a happens-before edge.
        let best_barrier = arrived
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .max_by_key(|(i, v)| (v.len(), usize::MAX - i));
        if let Some((b, _)) = best_barrier {
            let b = BarrierId(b);
            let stuck: Vec<ProcId> = arrived[b.0].drain(..).collect();
            log.notes.push(ReplayNote::ForcedBarrier {
                barrier: b,
                arrived: stuck.len(),
                expected: nprocs,
            });
            log.events.push(AnalysisEvent {
                pid: stuck[0],
                op_index: procs[stuck[0].0].next_index,
                cycle: Cycle(seq),
                kind: EventKind::BarrierForced(b),
            });
            seq += 1;
            for q in stuck {
                if procs[q.0].blocked == Some(Blocked::OnBarrier(b)) {
                    procs[q.0].blocked = None;
                }
            }
            continue;
        }
        let stuck_on_lock = (0..nprocs).find_map(|p| match procs[p].blocked {
            Some(Blocked::OnLock(l)) if !procs[p].finished => Some((p, l)),
            _ => None,
        });
        if let Some((p, l)) = stuck_on_lock {
            let pid = ProcId(p);
            log.notes.push(ReplayNote::ForcedGrant {
                lock: l,
                pid,
                holder: holder[l.0],
            });
            holder[l.0] = Some(pid);
            waiters[l.0].retain(|&w| w != pid);
            log.events.push(AnalysisEvent {
                pid,
                op_index: procs[p].next_index,
                cycle: Cycle(seq),
                kind: EventKind::Acquire(l),
            });
            seq += 1;
            procs[p].blocked = None;
            procs[p].ops.pop_front();
            procs[p].next_index += 1;
            continue;
        }
        // Nothing left to force (cannot happen for non-empty streams, but
        // never hang).
        break;
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::SyncConfig;

    fn trace(streams: Vec<Vec<Op>>) -> Trace {
        Trace {
            streams,
            sync: SyncConfig {
                lock_addrs: vec![Addr(0x1000), Addr(0x1010)],
                barrier_addrs: vec![Addr(0x2000)],
                labeled_ranges: Vec::new(),
            },
            page_homes: None,
        }
    }

    fn kinds(log: &EventLog, pid: usize) -> Vec<EventKind> {
        log.events
            .iter()
            .filter(|e| e.pid.0 == pid)
            .map(|e| e.kind)
            .collect()
    }

    #[test]
    fn clean_trace_replays_without_notes() {
        let t = trace(vec![
            vec![
                Op::Acquire(LockId(0)),
                Op::Write(Addr(0x40)),
                Op::Release(LockId(0)),
                Op::Done,
            ],
            vec![
                Op::Acquire(LockId(0)),
                Op::Read(Addr(0x40)),
                Op::Release(LockId(0)),
                Op::Done,
            ],
        ]);
        let log = events_from_trace(&t);
        assert!(log.notes.is_empty(), "unexpected notes: {:?}", log.notes);
        assert_eq!(
            kinds(&log, 0),
            vec![
                EventKind::Acquire(LockId(0)),
                EventKind::Write(Addr(0x40)),
                EventKind::Release(LockId(0)),
                EventKind::Done,
            ]
        );
        // Monotone stamps.
        for w in log.events.windows(2) {
            assert!(w[0].cycle < w[1].cycle);
        }
    }

    #[test]
    fn contended_lock_grants_fifo_at_release() {
        let t = trace(vec![
            vec![
                Op::Acquire(LockId(0)),
                Op::Compute(5),
                Op::Release(LockId(0)),
                Op::Done,
            ],
            vec![Op::Acquire(LockId(0)), Op::Release(LockId(0)), Op::Done],
        ]);
        let log = events_from_trace(&t);
        assert!(log.notes.is_empty());
        // P1's grant must come after P0's release in the stream.
        let rel0 = log
            .events
            .iter()
            .position(|e| e.pid.0 == 0 && e.kind == EventKind::Release(LockId(0)))
            .unwrap();
        let acq1 = log
            .events
            .iter()
            .position(|e| e.pid.0 == 1 && e.kind == EventKind::Acquire(LockId(0)))
            .unwrap();
        assert!(acq1 > rel0);
    }

    #[test]
    fn dropped_release_forces_grant_with_note() {
        // P0 never releases; P1 would deadlock under strict replay.
        let t = trace(vec![
            vec![Op::Acquire(LockId(0)), Op::Write(Addr(0x40)), Op::Done],
            vec![
                Op::Acquire(LockId(0)),
                Op::Write(Addr(0x40)),
                Op::Release(LockId(0)),
                Op::Done,
            ],
        ]);
        let log = events_from_trace(&t);
        assert!(log.notes.iter().any(|n| matches!(
            n,
            ReplayNote::ForcedGrant {
                lock: LockId(0),
                pid: ProcId(1),
                ..
            }
        )));
        // P1 still completed its whole stream.
        assert_eq!(kinds(&log, 1).last(), Some(&EventKind::Done));
    }

    #[test]
    fn diverged_barrier_is_forced() {
        let t = trace(vec![
            vec![Op::Barrier(BarrierId(0)), Op::Read(Addr(0x40)), Op::Done],
            vec![Op::Done], // never arrives
        ]);
        let log = events_from_trace(&t);
        assert!(log.notes.iter().any(|n| matches!(
            n,
            ReplayNote::ForcedBarrier {
                barrier: BarrierId(0),
                arrived: 1,
                expected: 2,
            }
        )));
        assert!(log
            .events
            .iter()
            .any(|e| e.kind == EventKind::BarrierForced(BarrierId(0))));
        assert_eq!(kinds(&log, 0).last(), Some(&EventKind::Done));
    }

    #[test]
    fn bad_release_is_noted_not_fatal() {
        let t = trace(vec![vec![Op::Release(LockId(1)), Op::Done]]);
        let log = events_from_trace(&t);
        assert!(log.notes.iter().any(|n| matches!(
            n,
            ReplayNote::BadRelease {
                lock: LockId(1),
                pid: ProcId(0),
                holder: None,
            }
        )));
    }

    #[test]
    fn replay_is_deterministic() {
        let t = trace(vec![
            vec![
                Op::Acquire(LockId(0)),
                Op::Write(Addr(0x40)),
                Op::Release(LockId(0)),
                Op::Barrier(BarrierId(0)),
                Op::Done,
            ],
            vec![
                Op::Acquire(LockId(0)),
                Op::Read(Addr(0x40)),
                Op::Release(LockId(0)),
                Op::Barrier(BarrierId(0)),
                Op::Done,
            ],
        ]);
        let a = events_from_trace(&t);
        let b = events_from_trace(&t);
        assert_eq!(a.events, b.events);
        assert_eq!(a.notes, b.notes);
    }
}
