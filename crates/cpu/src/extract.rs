//! Static program extraction: turning a live [`Workload`] into a
//! [`Trace`] without simulating a single machine cycle.
//!
//! The workloads are execution-driven op *generators* (§2.3): they produce
//! operations only as the machine unblocks each process. To analyze a
//! workload's program statically we drive the generator ourselves with a
//! sync-respecting logical scheduler — deterministic round-robin, one
//! operation per runnable process per round, honouring lock mutual
//! exclusion (FIFO grants) and barrier rendezvous but charging **no
//! timing**. For statically scheduled programs (LU, MP3D, the litmus
//! corpus) the extracted streams are exactly the streams any real
//! execution issues; for timing-dependent programs (PTHOR's task
//! stealing and spin loops) they are one representative fair schedule,
//! which is what a whole-program lint needs.
//!
//! Like [`crate::events::events_from_trace`], the extractor is
//! fault-tolerant rather than strict: a workload whose sync skeleton
//! cannot make progress (a dropped `Release`, a diverged barrier) is
//! force-resolved so extraction always terminates, and every forced
//! transition is recorded as an [`ExtractNote`] — the static passes turn
//! those into findings instead of hanging.

use std::collections::VecDeque;

use crate::ops::{BarrierId, LockId, Op, ProcId, Workload};
use crate::trace::Trace;

/// Knobs for [`extract_program`].
#[derive(Debug, Clone, Copy)]
pub struct ExtractOptions {
    /// Total operation budget across all processes. Extraction stops and
    /// reports truncation when the budget is exhausted (a backstop against
    /// non-terminating generators, far above any test-scale program).
    pub max_total_ops: usize,
}

impl Default for ExtractOptions {
    fn default() -> Self {
        ExtractOptions {
            max_total_ops: 8_000_000,
        }
    }
}

/// A forced transition the logical scheduler had to make because the
/// workload's own sync skeleton could not progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtractNote {
    /// A process was stuck acquiring a lock nobody was going to release;
    /// the scheduler granted it anyway.
    ForcedGrant {
        /// The lock involved.
        lock: LockId,
        /// The process that received the forced grant.
        pid: ProcId,
        /// Who held the lock at that point, if anyone.
        holder: Option<ProcId>,
    },
    /// A barrier episode could never complete (some process finished
    /// without arriving); the arrived processes were released.
    ForcedBarrier {
        /// The barrier involved.
        barrier: BarrierId,
        /// How many processes had arrived.
        arrived: usize,
        /// How many were expected.
        expected: usize,
    },
    /// A process released a lock it did not hold.
    BadRelease {
        /// The lock involved.
        lock: LockId,
        /// The releasing process.
        pid: ProcId,
    },
}

impl std::fmt::Display for ExtractNote {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtractNote::ForcedGrant { lock, pid, holder } => match holder {
                Some(h) => write!(
                    f,
                    "lock {} force-granted to {pid} while held by {h} (missing Release?)",
                    lock.0
                ),
                None => write!(f, "lock {} force-granted to {pid}", lock.0),
            },
            ExtractNote::ForcedBarrier {
                barrier,
                arrived,
                expected,
            } => write!(
                f,
                "barrier {} force-released with {arrived}/{expected} arrivals",
                barrier.0
            ),
            ExtractNote::BadRelease { lock, pid } => {
                write!(f, "{pid} released lock {} it did not hold", lock.0)
            }
        }
    }
}

/// The result of extracting a workload's program.
#[derive(Debug, Clone)]
pub struct Extraction {
    /// The extracted program: per-process op streams (each ending in
    /// `Done` unless truncated) plus the workload's sync declarations.
    pub trace: Trace,
    /// Forced scheduler transitions (empty for a well-synchronized
    /// workload).
    pub notes: Vec<ExtractNote>,
    /// Processes whose streams were cut short by the op budget.
    pub truncated: Vec<ProcId>,
}

impl Extraction {
    /// True when extraction completed every stream without forcing any
    /// sync transition.
    pub fn is_clean(&self) -> bool {
        self.notes.is_empty() && self.truncated.is_empty()
    }
}

/// Extraction failure: the workload cannot be driven statically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractError(pub String);

impl std::fmt::Display for ExtractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "program extraction failed: {}", self.0)
    }
}

impl std::error::Error for ExtractError {}

/// Per-process extraction cursor.
struct ExtProc {
    blocked: Option<Blocked>,
    finished: bool,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Blocked {
    OnLock(LockId),
    OnBarrier(BarrierId),
}

/// Drives a forked copy of `workload` to completion under the logical
/// scheduler and returns its per-process op streams as a [`Trace`].
///
/// The workload itself is not consumed: extraction runs on
/// [`Workload::fork`]'s independent copy, so the same workload instance
/// can afterwards be simulated normally.
///
/// # Errors
///
/// Returns [`ExtractError`] when the workload cannot be forked
/// (`fork()` returns `None`).
pub fn extract_program<W: Workload + ?Sized>(
    workload: &W,
    opts: ExtractOptions,
) -> Result<Extraction, ExtractError> {
    let mut w = workload
        .fork()
        .ok_or_else(|| ExtractError(format!("workload {:?} cannot fork", workload.name())))?;
    let nprocs = w.processes();
    if nprocs == 0 {
        return Err(ExtractError("workload declares zero processes".into()));
    }
    let sync = w.sync_config();
    let mut streams: Vec<Vec<Op>> = vec![Vec::new(); nprocs];
    let mut procs: Vec<ExtProc> = (0..nprocs)
        .map(|_| ExtProc {
            blocked: None,
            finished: false,
        })
        .collect();
    let mut holder: Vec<Option<ProcId>> = vec![None; sync.lock_addrs.len().max(64)];
    let mut waiters: Vec<VecDeque<ProcId>> = vec![VecDeque::new(); holder.len()];
    let mut arrived: Vec<Vec<ProcId>> = vec![Vec::new(); sync.barrier_addrs.len().max(64)];
    let mut notes = Vec::new();
    let mut total = 0usize;
    let mut truncated = Vec::new();

    fn ensure<T: Default + Clone>(v: &mut Vec<T>, i: usize) {
        if i >= v.len() {
            v.resize(i + 1, T::default());
        }
    }

    'outer: loop {
        let mut progressed = false;
        for p in 0..nprocs {
            if procs[p].finished || procs[p].blocked.is_some() {
                continue;
            }
            if total >= opts.max_total_ops {
                truncated = (0..nprocs)
                    .filter(|&q| !procs[q].finished)
                    .map(ProcId)
                    .collect();
                break 'outer;
            }
            let pid = ProcId(p);
            let op = w.next_op(pid);
            streams[p].push(op);
            total += 1;
            progressed = true;
            match op {
                Op::Compute(_) | Op::Read(_) | Op::Write(_) | Op::Rmw(_) | Op::Prefetch { .. } => {}
                Op::Acquire(l) => {
                    ensure(&mut holder, l.0);
                    ensure(&mut waiters, l.0);
                    if holder[l.0].is_none() && waiters[l.0].is_empty() {
                        holder[l.0] = Some(pid);
                    } else {
                        waiters[l.0].push_back(pid);
                        procs[p].blocked = Some(Blocked::OnLock(l));
                    }
                }
                Op::Release(l) => {
                    ensure(&mut holder, l.0);
                    ensure(&mut waiters, l.0);
                    if holder[l.0] == Some(pid) {
                        holder[l.0] = None;
                        if let Some(next) = waiters[l.0].pop_front() {
                            holder[l.0] = Some(next);
                            procs[next.0].blocked = None;
                        }
                    } else {
                        notes.push(ExtractNote::BadRelease { lock: l, pid });
                    }
                }
                Op::Barrier(b) => {
                    ensure(&mut arrived, b.0);
                    arrived[b.0].push(pid);
                    if arrived[b.0].len() == nprocs {
                        for q in arrived[b.0].drain(..) {
                            procs[q.0].blocked = None;
                        }
                    } else {
                        procs[p].blocked = Some(Blocked::OnBarrier(b));
                    }
                }
                Op::Done => procs[p].finished = true,
            }
        }
        if procs.iter().all(|pr| pr.finished) {
            break;
        }
        if progressed {
            continue;
        }
        // Global stall: every unfinished process is blocked. Force the
        // barrier with the most arrivals first, then the lowest stuck
        // lock waiter — the same deterministic order as the trace
        // replayer, so a buggy workload extracts the same program a
        // recorded buggy trace replays.
        let best_barrier = arrived
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .max_by_key(|(i, v)| (v.len(), usize::MAX - i));
        if let Some((b, _)) = best_barrier {
            let b = BarrierId(b);
            let stuck: Vec<ProcId> = arrived[b.0].drain(..).collect();
            notes.push(ExtractNote::ForcedBarrier {
                barrier: b,
                arrived: stuck.len(),
                expected: nprocs,
            });
            for q in stuck {
                if procs[q.0].blocked == Some(Blocked::OnBarrier(b)) {
                    procs[q.0].blocked = None;
                }
            }
            continue;
        }
        let stuck_on_lock = (0..nprocs).find_map(|p| match procs[p].blocked {
            Some(Blocked::OnLock(l)) => Some((p, l)),
            _ => None,
        });
        if let Some((p, l)) = stuck_on_lock {
            let pid = ProcId(p);
            notes.push(ExtractNote::ForcedGrant {
                lock: l,
                pid,
                holder: holder[l.0],
            });
            holder[l.0] = Some(pid);
            waiters[l.0].retain(|&q| q != pid);
            procs[p].blocked = None;
            continue;
        }
        break; // nothing to force (unreachable for non-empty programs)
    }
    Ok(Extraction {
        trace: Trace {
            streams,
            sync,
            page_homes: None,
        },
        notes,
        truncated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::ScriptWorkload;
    use dashlat_mem::addr::Addr;

    fn script(streams: Vec<Vec<Op>>) -> ScriptWorkload {
        ScriptWorkload::new(streams)
            .with_locks(vec![Addr(0x1000), Addr(0x1010)])
            .with_barriers(vec![Addr(0x2000)])
    }

    #[test]
    fn extracts_scripted_streams_verbatim() {
        let s0 = vec![
            Op::Acquire(LockId(0)),
            Op::Write(Addr(0x40)),
            Op::Release(LockId(0)),
            Op::Barrier(BarrierId(0)),
            Op::Done,
        ];
        let s1 = vec![
            Op::Acquire(LockId(0)),
            Op::Read(Addr(0x40)),
            Op::Release(LockId(0)),
            Op::Barrier(BarrierId(0)),
            Op::Done,
        ];
        let ext = extract_program(
            &script(vec![s0.clone(), s1.clone()]),
            ExtractOptions::default(),
        )
        .expect("extracts");
        assert!(ext.is_clean(), "notes: {:?}", ext.notes);
        assert_eq!(ext.trace.streams, vec![s0, s1]);
        assert_eq!(ext.trace.sync.lock_addrs.len(), 2);
    }

    #[test]
    fn extraction_does_not_consume_the_workload() {
        let mut w = script(vec![vec![Op::Read(Addr(0x40)), Op::Done]]);
        let _ = extract_program(&w, ExtractOptions::default()).expect("extracts");
        // The original cursor is untouched.
        assert_eq!(w.next_op(ProcId(0)), Op::Read(Addr(0x40)));
    }

    #[test]
    fn contended_lock_blocks_until_release() {
        // P1's post-acquire write must not be emitted before P0 releases —
        // verified indirectly: extraction completes with no forced notes,
        // which requires the blocking bookkeeping to grant FIFO.
        let ext = extract_program(
            &script(vec![
                vec![
                    Op::Acquire(LockId(0)),
                    Op::Compute(5),
                    Op::Release(LockId(0)),
                    Op::Done,
                ],
                vec![Op::Acquire(LockId(0)), Op::Release(LockId(0)), Op::Done],
            ]),
            ExtractOptions::default(),
        )
        .expect("extracts");
        assert!(ext.is_clean());
    }

    #[test]
    fn dropped_release_is_forced_and_noted() {
        let ext = extract_program(
            &script(vec![
                vec![Op::Acquire(LockId(0)), Op::Done],
                vec![Op::Acquire(LockId(0)), Op::Release(LockId(0)), Op::Done],
            ]),
            ExtractOptions::default(),
        )
        .expect("extracts");
        assert!(ext.notes.iter().any(|n| matches!(
            n,
            ExtractNote::ForcedGrant {
                lock: LockId(0),
                pid: ProcId(1),
                holder: Some(ProcId(0)),
            }
        )));
        // Both streams still complete.
        assert_eq!(ext.trace.streams[1].last(), Some(&Op::Done));
    }

    #[test]
    fn diverged_barrier_is_forced_and_noted() {
        let ext = extract_program(
            &script(vec![
                vec![Op::Barrier(BarrierId(0)), Op::Done],
                vec![Op::Done],
            ]),
            ExtractOptions::default(),
        )
        .expect("extracts");
        assert!(ext.notes.iter().any(|n| matches!(
            n,
            ExtractNote::ForcedBarrier {
                barrier: BarrierId(0),
                arrived: 1,
                expected: 2,
            }
        )));
    }

    #[test]
    fn op_budget_truncates_instead_of_hanging() {
        struct Spinner;
        impl Workload for Spinner {
            fn processes(&self) -> usize {
                1
            }
            fn next_op(&mut self, _pid: ProcId) -> Op {
                Op::Read(Addr(0x40))
            }
            fn sync_config(&self) -> crate::ops::SyncConfig {
                crate::ops::SyncConfig::default()
            }
            fn fork(&self) -> Option<Box<dyn Workload>> {
                Some(Box::new(Spinner))
            }
        }
        let ext = extract_program(&Spinner, ExtractOptions { max_total_ops: 100 }).expect("runs");
        assert_eq!(ext.truncated, vec![ProcId(0)]);
        assert_eq!(ext.trace.streams[0].len(), 100);
    }

    #[test]
    fn unforkable_workload_is_an_error() {
        struct NoFork;
        impl Workload for NoFork {
            fn processes(&self) -> usize {
                1
            }
            fn next_op(&mut self, _pid: ProcId) -> Op {
                Op::Done
            }
            fn sync_config(&self) -> crate::ops::SyncConfig {
                crate::ops::SyncConfig::default()
            }
        }
        assert!(extract_program(&NoFork, ExtractOptions::default()).is_err());
    }
}
