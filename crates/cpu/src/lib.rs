#![deny(missing_docs)]

//! Processor model for the `dash-latency` simulator.
//!
//! This crate provides the processor side of the paper's machine:
//!
//! * [`ops`] — the operation vocabulary ([`ops::Op`]) and the
//!   [`ops::Workload`] trait that execution-driven reference generators
//!   implement, plus the machine [`ops::Topology`].
//! * [`config`] — [`config::ProcConfig`]: consistency model (SC / RC),
//!   hardware context count, switch overhead, buffer depths, prefetch cost.
//! * [`sync`] — logical lock and barrier state (the traffic they generate
//!   goes through the memory system like any other shared line).
//! * [`breakdown`] — the execution-time decomposition the paper's figures
//!   are built from.
//! * [`machine`] — the event-driven executor tying it all together.
//! * [`events`] — the analysis-event stream the `dashlat-analyze` passes
//!   consume, produced live by the machine (`with_event_log`) or by
//!   fault-tolerant logical replay of a serialized trace.
//! * [`extract`] — static program extraction: drive a forked workload
//!   under a sync-respecting logical scheduler (no timing) to obtain its
//!   per-process op streams for whole-program lint passes.
//!
//! # Example
//!
//! Run a tiny scripted workload on a 2-processor machine:
//!
//! ```
//! use dashlat_cpu::config::ProcConfig;
//! use dashlat_cpu::machine::Machine;
//! use dashlat_cpu::ops::{Op, ProcId, SyncConfig, Topology, Workload};
//! use dashlat_mem::layout::{AddressSpaceBuilder, Placement};
//! use dashlat_mem::system::{MemConfig, MemorySystem};
//!
//! struct TwoReaders { ops: Vec<Vec<Op>>, at: Vec<usize> }
//! impl Workload for TwoReaders {
//!     fn processes(&self) -> usize { 2 }
//!     fn next_op(&mut self, pid: ProcId) -> Op {
//!         let i = self.at[pid.0];
//!         self.at[pid.0] += 1;
//!         self.ops[pid.0].get(i).copied().unwrap_or(Op::Done)
//!     }
//!     fn sync_config(&self) -> SyncConfig { SyncConfig::default() }
//! }
//!
//! let mut space = AddressSpaceBuilder::new(2);
//! let data = space.alloc("data", 4096, Placement::RoundRobin);
//! let mem = MemorySystem::new(MemConfig::dash_scaled(2), space.build());
//! let workload = TwoReaders {
//!     ops: vec![
//!         vec![Op::Compute(10), Op::Read(data.base())],
//!         vec![Op::Compute(5), Op::Read(data.at(64))],
//!     ],
//!     at: vec![0, 0],
//! };
//! let result = Machine::new(ProcConfig::sc_baseline(), Topology::new(2, 1), mem, workload)
//!     .run()
//!     .expect("tiny workload terminates");
//! assert!(result.elapsed.as_u64() > 0);
//! assert_eq!(result.shared_reads, 2);
//! ```

pub mod breakdown;
pub mod config;
pub mod events;
pub mod extract;
pub mod machine;
pub mod ops;
pub mod script;
pub mod sync;
pub mod trace;

pub use breakdown::{ScaledBreakdown, TimeBreakdown};
pub use config::{Consistency, ProcConfig};
pub use events::{events_from_trace, AnalysisEvent, EventKind, EventLog, ReplayNote};
pub use extract::{extract_program, ExtractError, ExtractNote, ExtractOptions, Extraction};
pub use machine::{BlockedOn, BlockedOp, Machine, RunError, RunPhase, RunResult, StuckProcess};
pub use ops::{BarrierId, LabeledRange, LockId, Op, ProcId, SyncConfig, Topology, Workload};
pub use sync::SyncState;
pub use trace::{Trace, TraceRecorder};
