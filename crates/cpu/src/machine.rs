//! The machine: processors, contexts and the event loop.
//!
//! [`Machine::run`] executes a [`Workload`] on the simulated
//! multiprocessor: every processor runs one or more hardware contexts, each
//! bound to one workload process. The executor is event-driven — each
//! operation of each process is issued at its exact simulated time, so the
//! interleaving of shared-memory references across processors is globally
//! consistent (the Tango property, §2.3).
//!
//! ## Scheduling model
//!
//! * A context issues operations until it hits a *long-latency* operation
//!   (a stall longer than [`ProcConfig::no_switch_threshold`]): a cache miss
//!   going to the bus, an SC write miss, or a synchronization wait.
//! * On a long-latency operation the context blocks. A multiple-context
//!   processor then switches to another ready context, paying
//!   [`ProcConfig::switch_overhead`] cycles; if none is ready the processor
//!   idles ("all idle").
//! * Short stalls (the 2-cycle secondary-cache write hit under SC, the
//!   4-cycle primary-cache fill lockout) do not switch ("no switch" idle).
//!
//! ## Consistency models
//!
//! * **SC** — the processor stalls on every read and write until it
//!   completes; no write buffering.
//! * **PC** (extension) — writes retire through the write buffer in FIFO
//!   order; reads bypass; releases get no special treatment.
//! * **WC** (extension) — like RC, but *every* synchronization access
//!   (acquire and release) fences on the completion of all prior writes.
//! * **RC** — writes (and releases) retire through the 16-entry write
//!   buffer with pipelined issue; reads bypass buffered writes; a release
//!   does not begin service until all previously issued writes have
//!   completed, including their invalidation acknowledgements.
//!
//! ## Prefetching
//!
//! Prefetch operations are issued to the 16-entry prefetch buffer, which
//! checks the secondary cache before going to the bus and pipelines
//! back-to-back prefetches. In-flight lines (demand or prefetch) are
//! tracked per processor so that a demand reference to an in-flight line is
//! *combined* with it rather than re-requested (§5.1).

use std::collections::VecDeque;

use dashlat_mem::addr::{Addr, LineAddr};
use dashlat_mem::buffers::{PendingPrefetch, PendingWrite, PrefetchBuffer, WriteBuffer, WriteKind};
use dashlat_mem::system::{
    AccessKind, AccessRecord, AccessResult, MemStats, MemorySystem, ServiceClass,
};
use dashlat_sim::fault::FaultInjector;
use dashlat_sim::sched::{Footprint, SchedAlt, Scheduler};
use dashlat_sim::stats::{Distribution, RunLengthTracker, TimeSeries};
use dashlat_sim::{Cycle, EventQueue, QueueHints};

/// MSHR-table length beyond which completed entries are pruned (and the
/// pre-sized capacity of the table, so steady state never reallocates).
const OUTSTANDING_PRUNE_LEN: usize = 128;

/// One processor's in-flight (missed) lines, struct-of-arrays.
///
/// Real MSHR occupancy is a handful of entries (one demand miss per
/// context plus the prefetch pipeline), so two parallel dense arrays with
/// linear scans beat a hash map on the dispatch path: no hashing, no
/// probing, and both arrays share a cache line at typical depths. Entry
/// order is irrelevant to semantics (lookups are by line), so removal can
/// `swap_remove`.
#[derive(Debug, Clone, Default)]
struct MshrTable {
    lines: Vec<LineAddr>,
    done: Vec<Cycle>,
}

impl MshrTable {
    fn with_capacity(cap: usize) -> Self {
        MshrTable {
            lines: Vec::with_capacity(cap),
            done: Vec::with_capacity(cap),
        }
    }

    /// Completion time of the in-flight request for `line`, if any.
    #[inline]
    fn get(&self, line: LineAddr) -> Option<Cycle> {
        self.lines
            .iter()
            .position(|&l| l == line)
            .map(|i| self.done[i])
    }

    /// Inserts or updates the entry for `line`.
    #[inline]
    fn insert(&mut self, line: LineAddr, done: Cycle) {
        match self.lines.iter().position(|&l| l == line) {
            Some(i) => self.done[i] = done,
            None => {
                self.lines.push(line);
                self.done.push(done);
            }
        }
    }

    /// Removes the entry for `line` iff its completion time is exactly
    /// `done` (a stale entry for a reissued line must survive).
    #[inline]
    fn remove_exact(&mut self, line: LineAddr, done: Cycle) {
        if let Some(i) = self
            .lines
            .iter()
            .position(|&l| l == line)
            .filter(|&i| self.done[i] == done)
        {
            self.lines.swap_remove(i);
            self.done.swap_remove(i);
        }
    }

    fn len(&self) -> usize {
        self.lines.len()
    }

    /// Drops entries long since completed (keeps the linear scans short).
    fn prune(&mut self, now: Cycle) {
        let mut i = 0;
        while i < self.lines.len() {
            if self.done[i] + Cycle(1024) > now {
                i += 1;
            } else {
                self.lines.swap_remove(i);
                self.done.swap_remove(i);
            }
        }
    }
}

use crate::breakdown::TimeBreakdown;
use crate::config::ProcConfig;
use crate::events::{AnalysisEvent, EventKind, EventLog};
use crate::ops::{LockId, Op, ProcId, Topology, Workload};
use crate::sync::{AcquireOutcome, BarrierOutcome, SyncState};

/// Why a context is blocked (drives idle-time attribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reason {
    Read,
    Write,
    Sync,
    PrefetchFull,
    WriteBufFull,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CtxState {
    Ready,
    Running,
    Blocked,
    Finished,
}

#[derive(Debug, Clone)]
struct Context {
    state: CtxState,
    reason: Reason,
    pending_op: Option<Op>,
    finished_at: Option<Cycle>,
    /// Last simulated time this context issued an op or woke (watchdog).
    last_advance: Cycle,
    /// What the context is currently blocked on (watchdog diagnostics).
    blocked_on: Option<BlockedOn>,
}

#[derive(Clone)]
struct Proc {
    /// Process ids of this processor's contexts.
    ctxs: Vec<usize>,
    /// Context currently occupying the pipeline (its registers are loaded).
    loaded: usize,
    idle_since: Option<(Cycle, Reason)>,
    finished_at: Option<Cycle>,
    breakdown: TimeBreakdown,
    run_lengths: RunLengthTracker,
    // RC write path.
    wbuf: WriteBuffer,
    wb_meta: VecDeque<Option<(LockId, usize)>>,
    wb_active: bool,
    wb_next_issue: Cycle,
    writes_done_horizon: Cycle,
    acks_horizon: Cycle,
    wb_full_waiters: VecDeque<usize>,
    /// Contexts fenced on write-buffer drain (weak consistency acquires).
    fence_waiters: VecDeque<usize>,
    // Prefetch path.
    pbuf: PrefetchBuffer,
    pb_active: bool,
    pb_next_issue: Cycle,
    pf_full_waiters: VecDeque<usize>,
    /// In-flight lines → completion time (MSHR-style combining).
    outstanding: MshrTable,
    /// Primary-cache lockout cycles to charge at the next busy period.
    pending_lockout_pf: u64,
    pending_lockout_fill: u64,
    /// Processor-side fault decisions (transient buffer-full events).
    faults: Option<FaultInjector>,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// Process `pid` issues its next operation.
    Step(usize),
    /// Process `pid` unblocks.
    Wake(usize),
    /// Processor `p` tries to service its write-buffer head.
    WbService(usize),
    /// Processor `p` tries to issue its prefetch-buffer head.
    PbService(usize),
    /// A fill for `line` arrived at processor `p`.
    Fill(usize, LineAddr, bool),
    /// The release write for lock `l` by process `pid` completed.
    Unlock(LockId, usize),
    /// Barrier `b` released: `pid` re-fetches the flag and resumes.
    BarrierWake(usize, usize),
}

/// The kind of operation a blocked context was waiting on (watchdog
/// diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockedOp {
    /// Waiting for a read fill.
    Read,
    /// Waiting for a write to complete.
    Write,
    /// Waiting to acquire a lock.
    Acquire,
    /// Waiting at a barrier.
    Barrier,
    /// Waiting for a full write/prefetch buffer to drain a slot.
    BufferDrain,
}

/// What a blocked context was waiting on when the watchdog fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockedOn {
    /// The kind of operation that blocked.
    pub op: BlockedOp,
    /// The address involved, when the wait is on a specific line.
    pub addr: Option<Addr>,
    /// For lock waits, the process currently holding the lock.
    pub holder: Option<ProcId>,
}

impl BlockedOn {
    fn on(op: BlockedOp, addr: Addr) -> Self {
        BlockedOn {
            op,
            addr: Some(addr),
            holder: None,
        }
    }
}

impl std::fmt::Display for BlockedOn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.op {
            BlockedOp::Read => write!(f, "read")?,
            BlockedOp::Write => write!(f, "write")?,
            BlockedOp::Acquire => write!(f, "acquire")?,
            BlockedOp::Barrier => write!(f, "barrier")?,
            BlockedOp::BufferDrain => write!(f, "buffer drain")?,
        }
        if let Some(a) = self.addr {
            write!(f, " of {:#x}", a.0)?;
        }
        if let Some(h) = self.holder {
            write!(f, " held by {h}")?;
        }
        Ok(())
    }
}

/// One stuck process in a deadlock or livelock report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StuckProcess {
    /// The process that is stuck.
    pub pid: ProcId,
    /// Last simulated time it made progress (issued an operation or woke).
    pub last_advance: Cycle,
    /// What it was blocked on; `None` if it was runnable but starved.
    pub blocked: Option<BlockedOn>,
}

impl std::fmt::Display for StuckProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ", self.pid)?;
        match &self.blocked {
            Some(b) => write!(f, "blocked on {b}")?,
            None => write!(f, "runnable but starved")?,
        }
        write!(
            f,
            " (last progress at cycle {})",
            self.last_advance.as_u64()
        )
    }
}

/// Why a run failed.
#[derive(Debug, Clone)]
pub enum RunError {
    /// The simulation exceeded the configured cycle budget — usually a
    /// workload that spins forever while simulated time keeps advancing.
    CycleBudgetExceeded {
        /// The configured limit.
        limit: Cycle,
    },
    /// The event queue drained while some processes were still blocked —
    /// a deadlock in the workload's synchronization.
    Deadlock {
        /// Processes that never finished, with what each was waiting on.
        stuck: Vec<StuckProcess>,
    },
    /// The machine processed an enormous number of events without simulated
    /// time advancing — a zero-time event loop the cycle budget can never
    /// catch.
    Livelock {
        /// Events processed at the stuck timestamp.
        events: u64,
        /// The simulated time the machine is stuck at.
        at: Cycle,
        /// Processes that had not finished, with what each was waiting on.
        stuck: Vec<StuckProcess>,
    },
    /// Online invariant checking found the coherence protocol in an
    /// inconsistent state.
    InvariantViolation {
        /// When the violation was detected.
        at: Cycle,
        /// Human-readable description of the violated invariant.
        detail: String,
    },
}

fn write_stuck(f: &mut std::fmt::Formatter<'_>, stuck: &[StuckProcess]) -> std::fmt::Result {
    for (i, s) in stuck.iter().enumerate() {
        let sep = if i == 0 { ": " } else { "; " };
        write!(f, "{sep}{s}")?;
    }
    Ok(())
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::CycleBudgetExceeded { limit } => {
                write!(f, "simulation exceeded the cycle budget of {limit}")
            }
            RunError::Deadlock { stuck } => {
                write!(f, "deadlock: {} processes never finished", stuck.len())?;
                write_stuck(f, stuck)
            }
            RunError::Livelock { events, at, stuck } => {
                write!(
                    f,
                    "livelock: {events} events processed with simulated time stuck at cycle {}",
                    at.as_u64()
                )?;
                write_stuck(f, stuck)
            }
            RunError::InvariantViolation { at, detail } => {
                write!(
                    f,
                    "coherence invariant violated at cycle {}: {detail}",
                    at.as_u64()
                )
            }
        }
    }
}

impl std::error::Error for RunError {}

impl RunError {
    /// Failure-classification hook for sweep supervisors: is this error
    /// plausibly a *transient* consequence of an active fault-injection
    /// plan (worth retrying), rather than a permanent bug?
    ///
    /// Under injected faults, NACK storms and delay pile-ups legitimately
    /// slow a run until it blows its cycle budget or trips the livelock
    /// watchdog, so those two classes are transient when (and only when)
    /// `faults_active`. A deadlock or an invariant violation always
    /// indicts the protocol or the workload — injected faults are bounded
    /// by design (retries converge, delays are finite) and must never
    /// corrupt coherence state or strand a process.
    pub fn is_transient_under_faults(&self, faults_active: bool) -> bool {
        faults_active
            && matches!(
                self,
                RunError::CycleBudgetExceeded { .. } | RunError::Livelock { .. }
            )
    }
}

/// Everything measured in one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Wall-clock of the run: when the last process finished.
    pub elapsed: Cycle,
    /// Per-processor execution-time decomposition.
    pub breakdowns: Vec<TimeBreakdown>,
    /// Machine-wide sum of the decompositions.
    pub aggregate: TimeBreakdown,
    /// Memory-system statistics (hit rates, invalidations, ...).
    pub mem: MemStats,
    /// Distribution of busy run lengths between long-latency operations.
    pub run_lengths: Distribution,
    /// Demand shared reads issued (Table 2).
    pub shared_reads: u64,
    /// Demand shared writes issued (Table 2).
    pub shared_writes: u64,
    /// Lock acquisitions performed (Table 2's "Locks").
    pub lock_acquires: u64,
    /// Per-process barrier arrivals (Table 2's "Barriers").
    pub barrier_arrivals: u64,
    /// Prefetch operations issued by the program.
    pub prefetches_issued: u64,
    /// Context switches performed.
    pub context_switches: u64,
    /// Simulation events processed (the event queue's lifetime schedule
    /// count) — the simulator's unit of work, used by the bench harness
    /// for its events/second throughput metric.
    pub sim_events: u64,
    /// Utilization-over-time view, when
    /// [`ProcConfig::timeline_bucket`](crate::config::ProcConfig::timeline_bucket)
    /// was set.
    pub timeline: Option<RunTimeline>,
    /// Analysis-event stream, when the machine was built with
    /// [`Machine::with_event_log`]. Events are recorded at each
    /// operation's commit point, in global simulated-time order, ready for
    /// the `dashlat-analyze` passes.
    pub events: Option<EventLog>,
    /// Memory-system access trace in coherence order, when the machine was
    /// built with [`Machine::with_access_trace`]. The verifier layers
    /// value semantics over the (timing-only) simulator from this.
    pub accesses: Option<Vec<AccessRecord>>,
    /// Scheduler decision trace — one `(chosen index, slate)` entry per
    /// decision point — when the machine was built with
    /// [`Machine::with_scheduler`]. The stateless model checker's
    /// backtracking state.
    pub decisions: Option<Vec<(usize, Vec<SchedAlt>)>>,
}

/// Machine-wide per-interval measurements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunTimeline {
    /// Busy cycles executed per bucket (all processors summed).
    pub busy: TimeSeries,
    /// Long-latency misses (context blocks) started per bucket.
    pub misses: TimeSeries,
}

impl RunResult {
    /// Average processor utilization (busy / total across processors).
    pub fn utilization(&self) -> f64 {
        self.aggregate.utilization()
    }

    /// Speedup of this run over `other`: how many times faster this run
    /// was (`other.elapsed / self.elapsed`; > 1 means this run won).
    pub fn speedup_over(&self, other: &RunResult) -> f64 {
        other.elapsed.as_u64().max(1) as f64 / self.elapsed.as_u64().max(1) as f64
    }
}

/// The machine executor. Construct with [`Machine::new`] and call
/// [`Machine::run`].
pub struct Machine<W: Workload> {
    cfg: ProcConfig,
    topo: Topology,
    mem: MemorySystem,
    sync: SyncState,
    workload: W,
    queue: EventQueue<Event>,
    procs: Vec<Proc>,
    ctxs: Vec<Context>,
    max_cycles: Cycle,
    // Counters.
    shared_reads: u64,
    shared_writes: u64,
    lock_acquires: u64,
    barrier_arrivals: u64,
    prefetches_issued: u64,
    context_switches: u64,
    timeline: Option<RunTimeline>,
    /// First coherence-invariant violation observed (when checking is on).
    invariant_failure: Option<(Cycle, String)>,
    /// Analysis-event capture (see [`Machine::with_event_log`]).
    events: Option<EventLog>,
    /// Per-process analysis-event sequence numbers (site identifiers).
    event_seq: Vec<u64>,
    /// Same-cycle tie-break policy (see [`Machine::with_scheduler`]);
    /// `None` keeps the plain deterministic `pop()` path.
    sched: Option<Box<dyn Scheduler>>,
    /// Decision trace recorded while a scheduler is attached.
    decisions: Vec<(usize, Vec<SchedAlt>)>,
    /// Whether the memory system records its access trace (see
    /// [`Machine::with_access_trace`]).
    record_accesses: bool,
    /// Whether the kick-off events have been scheduled (set by the first
    /// [`Machine::run_segment`], so a resumed machine does not restart).
    started: bool,
    /// Watchdog state carried across paused segments: the timestamp of the
    /// last dispatched batch and the events dispatched at it. Persisting
    /// these keeps budget/monotonicity/livelock detection bit-identical
    /// between a straight run and a paused-and-resumed one.
    watch_last_t: Cycle,
    watch_events_at_t: u64,
}

/// Outcome of one bounded run segment (see [`Machine::run_segment`]).
pub enum RunPhase<W: Workload> {
    /// The workload ran to completion.
    Done(Box<RunResult>),
    /// The event budget elapsed. The machine is parked at a batch boundary
    /// (every event of the in-flight simulated cycle dispatched); call
    /// [`Machine::run_segment`] again to continue, or
    /// [`Machine::snapshot`] to fork its warm state.
    Paused(Box<Machine<W>>),
}

impl<W: Workload> Machine<W> {
    /// Default cycle budget: generous enough for paper-scale runs, small
    /// enough to catch livelock in tests.
    pub const DEFAULT_MAX_CYCLES: Cycle = Cycle(20_000_000_000);

    /// Builds a machine.
    ///
    /// # Panics
    ///
    /// Panics if the workload's process count does not match
    /// `topo.processes()`, or the memory system was built for a different
    /// node count.
    pub fn new(cfg: ProcConfig, topo: Topology, mem: MemorySystem, workload: W) -> Self {
        assert_eq!(
            workload.processes(),
            topo.processes(),
            "workload process count does not match topology"
        );
        assert_eq!(
            mem.config().nodes,
            topo.processors,
            "memory system node count does not match topology"
        );
        assert_eq!(
            cfg.contexts, topo.contexts,
            "processor context count does not match topology"
        );
        let sync = SyncState::new(&workload.sync_config(), workload.processes());
        let procs = (0..topo.processors)
            .map(|p| Proc {
                ctxs: (0..topo.contexts).map(|c| p * topo.contexts + c).collect(),
                loaded: p * topo.contexts,
                idle_since: None,
                finished_at: None,
                breakdown: TimeBreakdown::default(),
                run_lengths: RunLengthTracker::new(),
                wbuf: WriteBuffer::new(cfg.write_buffer_entries),
                wb_meta: VecDeque::new(),
                wb_active: false,
                wb_next_issue: Cycle::ZERO,
                writes_done_horizon: Cycle::ZERO,
                acks_horizon: Cycle::ZERO,
                wb_full_waiters: VecDeque::new(),
                fence_waiters: VecDeque::new(),
                pbuf: PrefetchBuffer::new(cfg.prefetch_buffer_entries),
                pb_active: false,
                pb_next_issue: Cycle::ZERO,
                pf_full_waiters: VecDeque::new(),
                // Pre-sized to the MSHR prune threshold or the layout's
                // shared-line count, whichever is smaller: the table never
                // reallocates in steady state.
                outstanding: MshrTable::with_capacity(
                    mem.shared_lines().min(OUTSTANDING_PRUNE_LEN),
                ),
                pending_lockout_pf: 0,
                pending_lockout_fill: 0,
                // Per-processor streams, distinct from the memory system's
                // stream 0, so cpu-side draws never perturb mem-side ones.
                faults: cfg
                    .faults
                    .filter(dashlat_sim::FaultPlan::is_active)
                    .map(|f| FaultInjector::new(f, 0x1000 + p as u64)),
            })
            .collect();
        let timeline = cfg.timeline_bucket.map(|w| RunTimeline {
            busy: TimeSeries::new(w),
            misses: TimeSeries::new(w),
        });
        let ctxs = (0..topo.processes())
            .map(|_| Context {
                state: CtxState::Ready,
                reason: Reason::Read,
                pending_op: None,
                finished_at: None,
                last_advance: Cycle::ZERO,
                blocked_on: None,
            })
            .collect();
        Machine {
            cfg,
            topo,
            mem,
            sync,
            workload,
            // Same-cycle fan-in is bounded by one event per process plus
            // the per-processor buffer-service pipelines; far-future
            // events (beyond the 1024-cycle wheel window) are rare. Sizing
            // from the topology keeps steady-state dispatch allocation-free.
            queue: EventQueue::with_hints(QueueHints {
                bucket_capacity: (topo.processes() + 2 * topo.processors).next_power_of_two(),
                overflow_capacity: 64,
            }),
            procs,
            ctxs,
            max_cycles: Self::DEFAULT_MAX_CYCLES,
            shared_reads: 0,
            shared_writes: 0,
            lock_acquires: 0,
            barrier_arrivals: 0,
            prefetches_issued: 0,
            context_switches: 0,
            timeline,
            invariant_failure: None,
            events: None,
            event_seq: Vec::new(),
            sched: None,
            decisions: Vec::new(),
            record_accesses: false,
            started: false,
            watch_last_t: Cycle::ZERO,
            watch_events_at_t: 0,
        }
    }

    /// Overrides the livelock cycle budget.
    pub fn with_max_cycles(mut self, limit: Cycle) -> Self {
        self.max_cycles = limit;
        self
    }

    /// Records an analysis-event stream during the run (shared accesses,
    /// sync operations, prefetches — each at its commit point). The log
    /// comes back in [`RunResult::events`] for the `dashlat-analyze`
    /// passes. Costs memory proportional to the reference count; leave off
    /// for plain performance runs.
    pub fn with_event_log(mut self) -> Self {
        self.events = Some(EventLog::new(
            self.topo.processes(),
            self.workload.sync_config(),
        ));
        self.event_seq = vec![0; self.topo.processes()];
        self
    }

    /// Records the memory system's access trace (coherence order) during
    /// the run, returned as [`RunResult::accesses`]. The memory-model
    /// verifier reads values off this trace; leave off for plain
    /// performance runs.
    pub fn with_access_trace(mut self) -> Self {
        self.mem.record_accesses();
        self.record_accesses = true;
        self
    }

    /// Attaches a same-cycle tie-break scheduler.
    ///
    /// Without one, the event queue's deterministic insertion-order
    /// tie-break applies (the plain `pop()` path — zero overhead). With
    /// one, every time the machine is about to process an event it drains
    /// *all* events sharing the minimum timestamp, describes each as a
    /// [`SchedAlt`], and lets the scheduler pick which runs next; the rest
    /// are re-enqueued in their original relative order. The decision
    /// trace comes back as [`RunResult::decisions`].
    ///
    /// [`dashlat_sim::sched::FifoScheduler`] reproduces the default order
    /// choice-for-choice; [`dashlat_sim::sched::ReplayScheduler`] is the
    /// stateless model checker's replay vehicle.
    pub fn with_scheduler(mut self, sched: Box<dyn Scheduler>) -> Self {
        self.sched = Some(sched);
        self
    }

    /// Appends one analysis event (no-op unless event logging is on).
    ///
    /// `op_index` is the per-process event sequence number — for
    /// machine-produced logs it identifies the access site as "the n-th
    /// committed operation of this process".
    fn emit(&mut self, t: Cycle, pid: usize, kind: EventKind) {
        if let Some(log) = &mut self.events {
            let op_index = self.event_seq[pid];
            self.event_seq[pid] += 1;
            log.events.push(AnalysisEvent {
                pid: ProcId(pid),
                op_index,
                cycle: t,
                kind,
            });
        }
    }

    /// Events the machine may process at a single timestamp before the
    /// watchdog declares livelock. Legitimate same-cycle bursts (barrier
    /// releases, buffer drains) are bounded by the process count, orders of
    /// magnitude below this.
    const LIVELOCK_EVENT_THRESHOLD: u64 = 2_000_000;

    /// Runs the workload to completion.
    ///
    /// # Errors
    ///
    /// [`RunError::CycleBudgetExceeded`] if simulated time passes the
    /// budget, [`RunError::Deadlock`] if the event queue drains with
    /// processes still blocked, [`RunError::Livelock`] if millions of
    /// events are processed without simulated time advancing, and
    /// [`RunError::InvariantViolation`] if online checking (see
    /// [`ProcConfig::check_invariants`]) finds the coherence protocol in an
    /// inconsistent state.
    pub fn run(self) -> Result<RunResult, RunError> {
        match self.run_segment(u64::MAX)? {
            RunPhase::Done(result) => Ok(*result),
            RunPhase::Paused(_) => unreachable!("a u64::MAX event budget cannot pause"),
        }
    }

    /// Runs until the workload completes or at least `max_events` more
    /// events have been dispatched, whichever comes first.
    ///
    /// A paused machine stops at a *batch boundary*: the in-flight
    /// simulated cycle has been fully dispatched and nothing is half-done,
    /// so its state is exactly the state of an uninterrupted run at that
    /// point. That makes pause points safe places to [`Machine::snapshot`]
    /// warm state, and guarantees `run_segment(k)` chained any number of
    /// times produces the same [`RunResult`] as one `run()` call.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Machine::run`]. The watchdog bookkeeping
    /// (cycle budget, time monotonicity, livelock counting) is carried
    /// across segments, so detection is unaffected by where pauses land.
    pub fn run_segment(mut self, max_events: u64) -> Result<RunPhase<W>, RunError> {
        if !self.started {
            // Kick off: each processor starts its first context; the rest
            // are ready.
            self.started = true;
            for p in 0..self.topo.processors {
                let pid = self.procs[p].ctxs[0];
                self.ctxs[pid].state = CtxState::Running;
                self.queue.schedule(Cycle::ZERO, Event::Step(pid));
            }
        }

        let mut dispatched = 0u64;
        if self.sched.is_some() {
            // The scheduler-attached path collects the whole same-cycle
            // slate and asks the policy one event at a time.
            while dispatched < max_events {
                let Some((t, ev)) = self.pop_scheduled() else {
                    break;
                };
                self.check_progress(t, 1)?;
                self.dispatch(t, ev);
                dispatched += 1;
                if let Some((at, detail)) = self.invariant_failure.take() {
                    return Err(RunError::InvariantViolation { at, detail });
                }
            }
        } else {
            // Batched deterministic dispatch: drain one whole wheel bucket
            // (one simulated cycle) at a time and consume it in an inner
            // loop, so the budget / monotonicity / livelock bookkeeping is
            // paid once per cycle instead of once per event. Events a
            // handler schedules back into the in-flight cycle land in the
            // (now empty, still allocated) bucket and are picked up by the
            // next drain, which is exactly per-event pop order — see the
            // `batch_drain_matches_per_event_pops` proof in `dashlat-sim`.
            let mut batch: Vec<Event> = Vec::new();
            while dispatched < max_events {
                let Some(t) = self.queue.drain_next_into(&mut batch) else {
                    break;
                };
                self.check_progress(t, batch.len() as u64)?;
                dispatched += batch.len() as u64;
                for ev in batch.drain(..) {
                    self.dispatch(t, ev);
                    if let Some((at, detail)) = self.invariant_failure.take() {
                        return Err(RunError::InvariantViolation { at, detail });
                    }
                }
            }
        }

        if self.queue.peek_time().is_some() {
            // Event budget elapsed with work left: park at this batch
            // boundary.
            return Ok(RunPhase::Paused(Box::new(self)));
        }

        let stuck = self.stuck_processes();
        if !stuck.is_empty() {
            return Err(RunError::Deadlock { stuck });
        }

        Ok(RunPhase::Done(Box::new(self.finish())))
    }

    /// Forks the machine's complete warm state into an independent machine
    /// that will produce bit-identical results from this point on.
    ///
    /// This is the warm-state checkpoint primitive: run the shared prefix
    /// of a sweep once with [`Machine::run_segment`], snapshot at the
    /// pause, and hand each divergent cell its own fork instead of
    /// re-simulating the prefix. Everything observable is cloned — memory
    /// system, sync state, event queue (with in-flight events), per-
    /// processor buffers and MSHRs, counters, watchdog state — and the
    /// workload is forked through [`Workload::fork`].
    ///
    /// Returns `None` when the workload does not support forking or when a
    /// tie-break scheduler is attached (scheduler policies are stateful
    /// boxed trait objects and are not clonable; the model checker replays
    /// from the start instead).
    pub fn snapshot(&self) -> Option<Machine<Box<dyn Workload>>> {
        if self.sched.is_some() {
            return None;
        }
        let workload = self.workload.fork()?;
        Some(Machine {
            cfg: self.cfg.clone(),
            topo: self.topo,
            mem: self.mem.clone(),
            sync: self.sync.clone(),
            workload,
            queue: self.queue.clone(),
            procs: self.procs.clone(),
            ctxs: self.ctxs.clone(),
            max_cycles: self.max_cycles,
            shared_reads: self.shared_reads,
            shared_writes: self.shared_writes,
            lock_acquires: self.lock_acquires,
            barrier_arrivals: self.barrier_arrivals,
            prefetches_issued: self.prefetches_issued,
            context_switches: self.context_switches,
            timeline: self.timeline.clone(),
            invariant_failure: self.invariant_failure.clone(),
            events: self.events.clone(),
            event_seq: self.event_seq.clone(),
            sched: None,
            decisions: self.decisions.clone(),
            record_accesses: self.record_accesses,
            started: self.started,
            watch_last_t: self.watch_last_t,
            watch_events_at_t: self.watch_events_at_t,
        })
    }

    /// Routes one event to its handler.
    #[inline]
    fn dispatch(&mut self, t: Cycle, ev: Event) {
        match ev {
            Event::Step(pid) => self.step(t, pid),
            Event::Wake(pid) => self.wake(t, pid),
            Event::WbService(p) => self.wb_service(t, p),
            Event::PbService(p) => self.pb_service(t, p),
            Event::Fill(p, line, from_prefetch) => self.fill_arrived(t, p, line, from_prefetch),
            Event::Unlock(lid, pid) => self.unlock(t, lid, pid),
            Event::BarrierWake(pid, b) => self.barrier_wake(t, pid, b),
        }
    }

    /// Cycle-budget, time-monotonicity and livelock bookkeeping, charged
    /// once per dispatched batch of `count` same-cycle events. The state
    /// lives on the machine (not the run loop) so paused segments and
    /// snapshots resume detection exactly where it left off.
    #[inline]
    fn check_progress(&mut self, t: Cycle, count: u64) -> Result<(), RunError> {
        if t > self.max_cycles {
            return Err(RunError::CycleBudgetExceeded {
                limit: self.max_cycles,
            });
        }
        // Simulated time must be monotone: the event queue pops in
        // nondecreasing order by construction, so a regression means
        // the machine scheduled an event in the past.
        if t < self.watch_last_t {
            return Err(RunError::InvariantViolation {
                at: self.watch_last_t,
                detail: format!(
                    "simulated time ran backwards: event at cycle {} after cycle {}",
                    t.as_u64(),
                    self.watch_last_t.as_u64()
                ),
            });
        }
        // Livelock watchdog: a zero-time event loop never trips the
        // cycle budget; count events processed at a stuck timestamp.
        if t == self.watch_last_t {
            self.watch_events_at_t += count;
            if self.watch_events_at_t > Self::LIVELOCK_EVENT_THRESHOLD {
                return Err(RunError::Livelock {
                    events: self.watch_events_at_t,
                    at: t,
                    stuck: self.stuck_processes(),
                });
            }
        } else {
            self.watch_last_t = t;
            self.watch_events_at_t = count;
        }
        Ok(())
    }

    /// Scheduler-attached event selection: drains every event at the
    /// minimum timestamp, asks the scheduler which executes next, and
    /// re-enqueues the rest in their original relative order. Called for
    /// singleton slates too, so replay prefixes see a stable decision
    /// numbering.
    fn pop_scheduled(&mut self) -> Option<(Cycle, Event)> {
        let t = self.queue.peek_time()?;
        let mut slate: Vec<Event> = Vec::new();
        while self.queue.peek_time() == Some(t) {
            slate.push(self.queue.pop().expect("peeked event exists").1);
        }
        let alts: Vec<SchedAlt> = slate.iter().map(|ev| self.describe_event(ev)).collect();
        let sched = self.sched.as_mut().expect("caller checked");
        let choice = sched.choose(t, &alts);
        assert!(
            choice < slate.len(),
            "scheduler chose alternative {choice} of a {}-wide slate",
            slate.len()
        );
        self.decisions.push((choice, alts));
        let ev = slate.remove(choice);
        for rest in slate {
            self.queue.schedule(t, rest);
        }
        Some((t, ev))
    }

    /// Describes one pending event for the scheduler: which processor it
    /// belongs to and what memory it will touch. Anything that cannot be
    /// bounded precisely is `Unknown`/`Sync` (dependent with everything) —
    /// conservative for partial-order reduction, never unsound.
    fn describe_event(&self, ev: &Event) -> SchedAlt {
        match *ev {
            Event::Step(pid) => {
                let op = match self.ctxs[pid].pending_op {
                    Some(op) => Some(op),
                    None => self.workload.peek_op(ProcId(pid)),
                };
                let footprint = match op {
                    Some(Op::Compute(_) | Op::Done) => Footprint::None,
                    Some(
                        Op::Read(a) | Op::Write(a) | Op::Rmw(a) | Op::Prefetch { addr: a, .. },
                    ) => Footprint::Line(a.line().index()),
                    Some(Op::Acquire(_) | Op::Release(_) | Op::Barrier(_)) => Footprint::Sync,
                    None => Footprint::Unknown,
                };
                SchedAlt {
                    pid: self.proc_of(pid),
                    footprint,
                    tag: "step",
                }
            }
            Event::Wake(pid) => SchedAlt {
                pid: self.proc_of(pid),
                footprint: Footprint::None,
                tag: "wake",
            },
            Event::WbService(p) => {
                let footprint = match self.procs[p].wbuf.head() {
                    Some(w) if w.kind == WriteKind::Release => Footprint::Sync,
                    Some(w) => Footprint::Line(w.addr.line().index()),
                    None => Footprint::None,
                };
                SchedAlt {
                    pid: p,
                    footprint,
                    tag: "wb",
                }
            }
            Event::PbService(p) => {
                let footprint = match self.procs[p].pbuf.head() {
                    Some(pf) => Footprint::Line(pf.addr.line().index()),
                    None => Footprint::None,
                };
                SchedAlt {
                    pid: p,
                    footprint,
                    tag: "pb",
                }
            }
            Event::Fill(p, line, _) => SchedAlt {
                pid: p,
                footprint: Footprint::Line(line.index()),
                tag: "fill",
            },
            Event::Unlock(_, pid) => SchedAlt {
                pid: self.proc_of(pid),
                footprint: Footprint::Sync,
                tag: "unlock",
            },
            Event::BarrierWake(pid, _) => SchedAlt {
                pid: self.proc_of(pid),
                footprint: Footprint::Sync,
                tag: "barrier-wake",
            },
        }
    }

    /// Snapshot of every unfinished process for a watchdog report.
    fn stuck_processes(&self) -> Vec<StuckProcess> {
        self.ctxs
            .iter()
            .enumerate()
            .filter(|(_, c)| c.state != CtxState::Finished)
            .map(|(i, c)| StuckProcess {
                pid: ProcId(i),
                last_advance: c.last_advance,
                blocked: c.blocked_on,
            })
            .collect()
    }

    fn finish(mut self) -> RunResult {
        let elapsed = self
            .ctxs
            .iter()
            .filter_map(|c| c.finished_at)
            .max()
            .unwrap_or(Cycle::ZERO);
        // Charge each processor's tail idle (after its last context
        // finished, while others were still running) so that every
        // processor's decomposition spans the same wall clock.
        let multi = self.cfg.contexts > 1;
        for p in &mut self.procs {
            p.run_lengths.finish();
            let stopped = p.finished_at.unwrap_or(elapsed);
            let tail = elapsed.saturating_sub(stopped);
            if multi {
                p.breakdown.all_idle += tail;
            } else {
                p.breakdown.sync_stall += tail;
            }
        }
        let mut aggregate = TimeBreakdown::default();
        let mut run_lengths = Distribution::new();
        let mut breakdowns = Vec::with_capacity(self.procs.len());
        let mut mem = self.mem.snapshot_stats();
        for p in &self.procs {
            aggregate += p.breakdown;
            run_lengths.merge(p.run_lengths.distribution());
            breakdowns.push(p.breakdown);
            if let Some(inj) = &p.faults {
                mem.faults.merge(&inj.stats());
            }
        }
        RunResult {
            elapsed,
            breakdowns,
            aggregate,
            mem,
            run_lengths,
            shared_reads: self.shared_reads,
            shared_writes: self.shared_writes,
            lock_acquires: self.lock_acquires,
            barrier_arrivals: self.barrier_arrivals,
            prefetches_issued: self.prefetches_issued,
            context_switches: self.context_switches,
            sim_events: self.queue.scheduled(),
            timeline: self.timeline,
            events: self.events,
            accesses: self.record_accesses.then(|| self.mem.take_access_trace()),
            decisions: self
                .sched
                .is_some()
                .then(|| std::mem::take(&mut self.decisions)),
        }
    }

    // ---- helpers ---------------------------------------------------------

    fn proc_of(&self, pid: usize) -> usize {
        self.topo.processor_of(ProcId(pid))
    }

    fn node_of(&self, pid: usize) -> dashlat_mem::addr::NodeId {
        self.topo.node_of(ProcId(pid))
    }

    /// Every memory access goes through here so online invariant checking
    /// covers the whole machine. Only the first failure is kept; the run
    /// loop converts it into [`RunError::InvariantViolation`].
    fn access_mem(
        &mut self,
        t: Cycle,
        node: dashlat_mem::addr::NodeId,
        addr: Addr,
        kind: AccessKind,
    ) -> AccessResult {
        let r = self.mem.access(t, node, addr, kind);
        if self.cfg.check_invariants && self.invariant_failure.is_none() {
            if let Err(detail) = self.mem.check_line_invariants(addr.line()) {
                self.invariant_failure = Some((t, detail));
            }
        }
        r
    }

    /// Injected fault: the write buffer transiently reports full. Only
    /// honoured while the buffer is non-empty and draining, so a
    /// retirement event is guaranteed to wake the stalled context.
    fn transient_wb_full(&mut self, p: usize) -> bool {
        let proc = &mut self.procs[p];
        if proc.wbuf.is_empty() || !proc.wb_active {
            return false;
        }
        proc.faults
            .as_mut()
            .is_some_and(dashlat_sim::FaultInjector::transient_buffer_full)
    }

    /// Injected fault: the prefetch buffer transiently reports full (same
    /// non-empty-and-draining guard as [`Machine::transient_wb_full`]).
    fn transient_pf_full(&mut self, p: usize) -> bool {
        let proc = &mut self.procs[p];
        if proc.pbuf.is_empty() || !proc.pb_active {
            return false;
        }
        proc.faults
            .as_mut()
            .is_some_and(dashlat_sim::FaultInjector::transient_buffer_full)
    }

    /// Charges a short (non-switching) stall.
    fn charge_short_stall(&mut self, p: usize, stall: Cycle, reason: Reason) {
        let multi = self.cfg.contexts > 1;
        let b = &mut self.procs[p].breakdown;
        if multi {
            match reason {
                Reason::PrefetchFull => b.prefetch_overhead += stall,
                _ => b.no_switch += stall,
            }
        } else {
            match reason {
                Reason::Read => b.read_stall += stall,
                Reason::Write | Reason::WriteBufFull => b.write_stall += stall,
                Reason::Sync => b.sync_stall += stall,
                Reason::PrefetchFull => b.prefetch_overhead += stall,
            }
        }
    }

    /// Blocks `pid` for `reason`; if `wake_at` is known the wake event is
    /// scheduled. The processor switches to another context or idles.
    /// `on` records what the context waits for, for watchdog reports.
    fn block(
        &mut self,
        t: Cycle,
        pid: usize,
        reason: Reason,
        wake_at: Option<Cycle>,
        on: BlockedOn,
    ) {
        let ctx = &mut self.ctxs[pid];
        debug_assert_eq!(ctx.state, CtxState::Running);
        ctx.state = CtxState::Blocked;
        ctx.reason = reason;
        ctx.blocked_on = Some(on);
        if let Some(w) = wake_at {
            self.queue.schedule(w.max(t), Event::Wake(pid));
        }
        let p = self.proc_of(pid);
        self.procs[p].run_lengths.miss();
        if let Some(tl) = &mut self.timeline {
            tl.misses.add(t, 1);
        }
        self.reschedule(t, p, reason);
    }

    /// Picks the next context for processor `p` after the running one
    /// stopped (blocked or finished).
    fn reschedule(&mut self, t: Cycle, p: usize, reason: Reason) {
        let next = self.procs[p]
            .ctxs
            .iter()
            .copied()
            .find(|&pid| self.ctxs[pid].state == CtxState::Ready);
        match next {
            Some(pid) => {
                self.start_context(t, p, pid);
            }
            None => {
                if self.procs[p]
                    .ctxs
                    .iter()
                    .all(|&c| self.ctxs[c].state == CtxState::Finished)
                {
                    self.procs[p].finished_at = Some(t);
                } else {
                    self.procs[p].idle_since = Some((t, reason));
                }
            }
        }
    }

    /// Loads and starts `pid` on processor `p`, charging switch overhead if
    /// a different context was loaded.
    fn start_context(&mut self, t: Cycle, p: usize, pid: usize) {
        self.ctxs[pid].state = CtxState::Running;
        let overhead = if self.procs[p].loaded == pid {
            Cycle::ZERO
        } else {
            self.procs[p].loaded = pid;
            self.context_switches += 1;
            self.procs[p].breakdown.switching += self.cfg.switch_overhead;
            self.cfg.switch_overhead
        };
        self.queue.schedule(t + overhead, Event::Step(pid));
    }

    /// A blocked context becomes ready.
    fn wake(&mut self, t: Cycle, pid: usize) {
        debug_assert_eq!(self.ctxs[pid].state, CtxState::Blocked);
        self.ctxs[pid].state = CtxState::Ready;
        self.ctxs[pid].blocked_on = None;
        self.ctxs[pid].last_advance = t;
        let p = self.proc_of(pid);
        if let Some((since, reason)) = self.procs[p].idle_since.take() {
            // The processor was idle: attribute the idle span and resume.
            let span = t.saturating_sub(since);
            let multi = self.cfg.contexts > 1;
            let b = &mut self.procs[p].breakdown;
            if multi {
                b.all_idle += span;
            } else {
                match reason {
                    Reason::Read => b.read_stall += span,
                    Reason::Write | Reason::WriteBufFull => b.write_stall += span,
                    Reason::Sync => b.sync_stall += span,
                    Reason::PrefetchFull => b.prefetch_overhead += span,
                }
            }
            self.start_context(t, p, pid);
        }
        // Otherwise another context is running; `pid` waits as Ready.
    }

    // ---- the op interpreter ----------------------------------------------

    fn step(&mut self, t: Cycle, pid: usize) {
        debug_assert_eq!(
            self.ctxs[pid].state,
            CtxState::Running,
            "step of non-running {pid}"
        );
        self.ctxs[pid].last_advance = t;
        let op = match self.ctxs[pid].pending_op.take() {
            Some(op) => op,
            None => self.workload.next_op(ProcId(pid)),
        };
        match op {
            Op::Compute(n) => self.do_compute(t, pid, n),
            Op::Read(a) => self.do_read(t, pid, a),
            Op::Write(a) => self.do_write(t, pid, a),
            Op::Rmw(a) => self.do_rmw(t, pid, a),
            Op::Prefetch { addr, exclusive } => self.do_prefetch(t, pid, addr, exclusive),
            Op::Acquire(l) => self.do_acquire(t, pid, l),
            Op::Release(l) => self.do_release(t, pid, l),
            Op::Barrier(b) => self.do_barrier(t, pid, b),
            Op::Done => self.do_done(t, pid),
        }
    }

    fn do_compute(&mut self, t: Cycle, pid: usize, n: u64) {
        let p = self.proc_of(pid);
        let proc = &mut self.procs[p];
        let lock_pf = std::mem::take(&mut proc.pending_lockout_pf);
        let lock_fill = std::mem::take(&mut proc.pending_lockout_fill);
        proc.breakdown.prefetch_overhead += Cycle(lock_pf);
        proc.breakdown.no_switch += Cycle(lock_fill);
        proc.breakdown.busy += Cycle(n);
        proc.run_lengths.busy(Cycle(n));
        if let Some(tl) = &mut self.timeline {
            tl.busy.add(t, n);
        }
        self.queue
            .schedule(t + Cycle(n + lock_pf + lock_fill), Event::Step(pid));
    }

    /// Looks up an in-flight line; stale entries (already completed) count
    /// as absent.
    fn in_flight(&self, p: usize, line: LineAddr, t: Cycle) -> Option<Cycle> {
        self.procs[p].outstanding.get(line).filter(|&d| d > t)
    }

    fn note_in_flight(&mut self, p: usize, line: LineAddr, done: Cycle, from_prefetch: bool) {
        let proc = &mut self.procs[p];
        proc.outstanding.insert(line, done);
        if proc.outstanding.len() > OUTSTANDING_PRUNE_LEN {
            proc.outstanding.prune(done); // prune anything long complete
        }
        self.queue
            .schedule(done, Event::Fill(p, line, from_prefetch));
    }

    fn do_read(&mut self, t: Cycle, pid: usize, a: Addr) {
        self.shared_reads += 1;
        // Reads never re-execute (in-flight combining resumes past the
        // op), so issue is the commit point.
        self.emit(t, pid, EventKind::Read(a));
        let p = self.proc_of(pid);
        // Optimistic out-of-order bound (see ProcConfig::read_lookahead):
        // up to `lookahead` cycles of the miss overlap independent work,
        // so the context resumes that much earlier.
        let lookahead = self.cfg.read_lookahead;
        // Combine with an in-flight request for the same line.
        if let Some(done) = self.in_flight(p, a.line(), t) {
            let resume = done
                .saturating_sub(lookahead)
                .max(t + Cycle(1))
                .min(done.max(t));
            let stall = resume.saturating_sub(t);
            if stall <= self.cfg.no_switch_threshold {
                self.charge_short_stall(p, stall, Reason::Read);
                self.queue.schedule(resume, Event::Step(pid));
            } else {
                self.block(
                    t,
                    pid,
                    Reason::Read,
                    Some(resume),
                    BlockedOn::on(BlockedOp::Read, a),
                );
            }
            return;
        }
        let node = self.node_of(pid);
        let r = self.access_mem(t, node, a, AccessKind::Read);
        if r.class == ServiceClass::PrimaryHit {
            // The load issues and completes in the pipeline: busy time.
            let cycles = r.done_at.saturating_sub(t);
            self.procs[p].breakdown.busy += cycles;
            self.procs[p].run_lengths.busy(cycles);
            self.queue.schedule(r.done_at, Event::Step(pid));
            return;
        }
        let resume = r
            .done_at
            .saturating_sub(lookahead)
            .max(t + Cycle(1))
            .min(r.done_at);
        let eff_stall = resume.saturating_sub(t);
        if eff_stall <= self.cfg.no_switch_threshold {
            self.charge_short_stall(p, eff_stall, Reason::Read);
            self.queue.schedule(resume, Event::Step(pid));
        } else {
            if !matches!(r.class, ServiceClass::SecondaryHit) {
                self.note_in_flight(p, a.line(), r.done_at, false);
            }
            self.block(
                t,
                pid,
                Reason::Read,
                Some(resume),
                BlockedOn::on(BlockedOp::Read, a),
            );
        }
    }

    fn do_write(&mut self, t: Cycle, pid: usize, a: Addr) {
        self.shared_writes += 1;
        if self.cfg.consistency.buffers_writes() {
            self.rc_write(t, pid, a, WriteKind::Data, None);
        } else {
            self.sc_write(t, pid, a, None);
        }
    }

    /// Atomic read-modify-write: a full fence (drain the write buffer,
    /// wait for acknowledgements) followed by a blocking exclusive access,
    /// under *every* consistency model — atomicity needs the read and
    /// write halves to be one indivisible coherence action, so the RMW
    /// cannot retire through the write buffer the way an RC data write
    /// does. The fence reuses the acquire path's machinery: a non-empty
    /// buffer parks the op and joins `fence_waiters` (woken by
    /// `wb_service` when the buffer empties); a pending ack horizon
    /// re-issues the op at the horizon.
    fn do_rmw(&mut self, t: Cycle, pid: usize, a: Addr) {
        let p = self.proc_of(pid);
        if !self.procs[p].wbuf.is_empty() {
            self.ctxs[pid].pending_op = Some(Op::Rmw(a));
            self.procs[p].fence_waiters.push_back(pid);
            self.block(
                t,
                pid,
                Reason::Write,
                None,
                BlockedOn::on(BlockedOp::Write, a),
            );
            return;
        }
        let horizon = self.procs[p].acks_horizon;
        if horizon > t {
            self.ctxs[pid].pending_op = Some(Op::Rmw(a));
            self.block(
                t,
                pid,
                Reason::Write,
                Some(horizon),
                BlockedOn::on(BlockedOp::Write, a),
            );
            return;
        }
        // Wait out any in-flight fetch of the line (mirrors `sc_write`).
        if let Some(done) = self.in_flight(p, a.line(), t) {
            self.ctxs[pid].pending_op = Some(Op::Rmw(a));
            self.block(
                t,
                pid,
                Reason::Write,
                Some(done),
                BlockedOn::on(BlockedOp::Write, a),
            );
            return;
        }
        // Fence satisfied: the RMW commits here as one exclusive access.
        self.shared_writes += 1;
        self.emit(t, pid, EventKind::Write(a));
        let node = self.node_of(pid);
        let r = self.access_mem(t, node, a, AccessKind::Write);
        let stall = r.done_at.saturating_sub(t);
        if stall <= self.cfg.no_switch_threshold {
            self.charge_short_stall(p, stall, Reason::Write);
            self.queue.schedule(r.done_at, Event::Step(pid));
        } else {
            self.block(
                t,
                pid,
                Reason::Write,
                Some(r.done_at),
                BlockedOn::on(BlockedOp::Write, a),
            );
        }
    }

    /// SC write: the processor stalls until the write completes. Shared by
    /// data writes and lock/unlock writes (`unlock` carries the lock to
    /// release when ownership arrives).
    fn sc_write(&mut self, t: Cycle, pid: usize, a: Addr, unlock: Option<LockId>) {
        let p = self.proc_of(pid);
        let reason = if unlock.is_some() {
            Reason::Sync
        } else {
            Reason::Write
        };
        // Wait for any in-flight fetch of this line first (e.g. an
        // exclusive prefetch that has not returned yet).
        if let Some(done) = self.in_flight(p, a.line(), t) {
            self.ctxs[pid].pending_op = Some(match unlock {
                Some(l) => Op::Release(l),
                None => Op::Write(a),
            });
            // Re-issuing a demand write counts only once.
            self.shared_writes -= u64::from(unlock.is_none());
            self.block(
                t,
                pid,
                reason,
                Some(done),
                BlockedOn::on(BlockedOp::Write, a),
            );
            return;
        }
        // Past the in-flight re-issue: the write commits now. Releases
        // are sync accesses, not data writes, in the event vocabulary.
        match unlock {
            Some(l) => self.emit(t, pid, EventKind::Release(l)),
            None => self.emit(t, pid, EventKind::Write(a)),
        }
        let node = self.node_of(pid);
        let r = self.access_mem(t, node, a, AccessKind::Write);
        if let Some(lid) = unlock {
            self.queue.schedule(r.done_at, Event::Unlock(lid, pid));
        }
        let stall = r.done_at.saturating_sub(t);
        if stall <= self.cfg.no_switch_threshold {
            self.charge_short_stall(p, stall, reason);
            self.queue.schedule(r.done_at, Event::Step(pid));
        } else {
            self.block(
                t,
                pid,
                reason,
                Some(r.done_at),
                BlockedOn::on(BlockedOp::Write, a),
            );
        }
    }

    /// RC write: enqueue into the write buffer (stalling only when full).
    fn rc_write(&mut self, t: Cycle, pid: usize, a: Addr, kind: WriteKind, unlock: Option<LockId>) {
        let p = self.proc_of(pid);
        if self.procs[p].wbuf.is_full() || self.transient_wb_full(p) {
            self.ctxs[pid].pending_op = Some(match unlock {
                Some(l) => Op::Release(l),
                None => Op::Write(a),
            });
            self.shared_writes -= u64::from(unlock.is_none());
            self.procs[p].wb_full_waiters.push_back(pid);
            let reason = if unlock.is_some() {
                Reason::Sync
            } else {
                Reason::WriteBufFull
            };
            self.block(
                t,
                pid,
                reason,
                None,
                BlockedOn::on(BlockedOp::BufferDrain, a),
            );
            return;
        }
        // Past the buffer-full re-issue: entering the write buffer is the
        // RC commit point (the release's clock snapshot must not include
        // program-order-later writes, so it is taken at issue).
        match unlock {
            Some(l) => self.emit(t, pid, EventKind::Release(l)),
            None => self.emit(t, pid, EventKind::Write(a)),
        }
        let pushed = self.procs[p].wbuf.try_push(PendingWrite {
            addr: a,
            enqueued_at: t,
            kind,
        });
        debug_assert!(pushed);
        self.procs[p].wb_meta.push_back(unlock.map(|l| (l, pid)));
        if !self.procs[p].wb_active {
            self.procs[p].wb_active = true;
            self.queue.schedule(t + Cycle(1), Event::WbService(p));
        }
        // The store itself is a single issue cycle.
        self.procs[p].breakdown.busy += Cycle(1);
        self.procs[p].run_lengths.busy(Cycle(1));
        self.queue.schedule(t + Cycle(1), Event::Step(pid));
    }

    /// Write-buffer head service: issues the head write (pipelined; the
    /// next write can issue a bus-occupancy later), holding releases until
    /// all previously issued writes have completed with acks.
    fn wb_service(&mut self, t: Cycle, p: usize) {
        let Some(head) = self.procs[p].wbuf.head().copied() else {
            self.procs[p].wb_active = false;
            return;
        };
        // The bus accepts at most one buffered write per occupancy window.
        if t < self.procs[p].wb_next_issue {
            let at = self.procs[p].wb_next_issue;
            self.queue.schedule(at, Event::WbService(p));
            return;
        }
        if head.kind == WriteKind::Release && t < self.procs[p].acks_horizon {
            let at = self.procs[p].acks_horizon;
            self.queue.schedule(at, Event::WbService(p));
            return;
        }
        self.procs[p].wb_next_issue = t + self.cfg.write_issue_spacing;
        // Seeded relaxation bug (`verify-mutations` + runtime flag): when
        // two or more data writes are queued, service the *second* one
        // ahead of the head — a W→W FIFO violation every buffering model
        // here forbids. Exists so the model checker's regression tests can
        // prove they catch a real reordering bug.
        #[cfg(feature = "verify-mutations")]
        let (entry, meta) = {
            let swap = self.cfg.relaxation_bug
                && head.kind == WriteKind::Data
                && self.procs[p]
                    .wbuf
                    .peek_at(1)
                    .is_some_and(|w| w.kind == WriteKind::Data);
            if swap {
                let entry = self.procs[p].wbuf.remove_at(1).expect("second entry");
                let meta = self.procs[p].wb_meta.remove(1).expect("meta in lockstep");
                (entry, meta)
            } else {
                let entry = self.procs[p].wbuf.pop().expect("head exists");
                let meta = self.procs[p].wb_meta.pop_front().expect("meta in lockstep");
                (entry, meta)
            }
        };
        #[cfg(not(feature = "verify-mutations"))]
        let (entry, meta) = {
            let entry = self.procs[p].wbuf.pop().expect("head exists");
            let meta = self.procs[p].wb_meta.pop_front().expect("meta in lockstep");
            (entry, meta)
        };
        // Opt-in W→W FIFO invariant: the buffer tracks enqueue order and
        // flags any out-of-order service (only the seeded-bug path above
        // can produce one); the main loop converts the pending failure
        // into `RunError::InvariantViolation` after this event.
        if self.cfg.enforce_wb_fifo && self.invariant_failure.is_none() {
            if let Some(detail) = self.procs[p].wbuf.take_fifo_violation() {
                self.invariant_failure = Some((t, detail));
            }
        }
        let node = dashlat_mem::addr::NodeId(p);
        let r = self.access_mem(t, node, entry.addr, AccessKind::Write);
        self.procs[p].writes_done_horizon = self.procs[p].writes_done_horizon.max(r.done_at);
        self.procs[p].acks_horizon = self.procs[p].acks_horizon.max(r.acks_done_at);
        if let Some((lid, pid)) = meta {
            self.queue.schedule(r.done_at, Event::Unlock(lid, pid));
        }
        // A slot is free: wake one context stalled on the full buffer.
        if let Some(waiter) = self.procs[p].wb_full_waiters.pop_front() {
            self.queue.schedule(t, Event::Wake(waiter));
        }
        if self.procs[p].wbuf.is_empty() {
            self.procs[p].wb_active = false;
            // Wake contexts fenced on the drain (WC acquires); they will
            // re-check the ack horizon when they re-execute.
            while let Some(waiter) = self.procs[p].fence_waiters.pop_front() {
                self.queue.schedule(t, Event::Wake(waiter));
            }
        } else {
            self.queue
                .schedule(self.procs[p].wb_next_issue, Event::WbService(p));
        }
    }

    fn do_prefetch(&mut self, t: Cycle, pid: usize, addr: Addr, exclusive: bool) {
        if !self.cfg.prefetching {
            // Compiled out: no overhead at all.
            self.queue.schedule(t, Event::Step(pid));
            return;
        }
        self.prefetches_issued += 1;
        let p = self.proc_of(pid);
        if self.procs[p].pbuf.is_full() || self.transient_pf_full(p) {
            self.ctxs[pid].pending_op = Some(Op::Prefetch { addr, exclusive });
            self.prefetches_issued -= 1;
            self.procs[p].pf_full_waiters.push_back(pid);
            self.block(
                t,
                pid,
                Reason::PrefetchFull,
                None,
                BlockedOn::on(BlockedOp::BufferDrain, addr),
            );
            return;
        }
        // Past the buffer-full re-issue: the prefetch is committed to the
        // buffer now.
        self.emit(t, pid, EventKind::Prefetch { addr, exclusive });
        let overhead = self.cfg.prefetch_issue_overhead;
        self.procs[p].breakdown.prefetch_overhead += overhead;
        let pushed = self.procs[p].pbuf.try_push(PendingPrefetch {
            addr,
            exclusive,
            enqueued_at: t,
        });
        debug_assert!(pushed);
        if !self.procs[p].pb_active {
            self.procs[p].pb_active = true;
            self.queue.schedule(t + overhead, Event::PbService(p));
        }
        self.queue.schedule(t + overhead, Event::Step(pid));
    }

    /// Prefetch-buffer head issue: check the secondary cache, discard if
    /// resident or already in flight, otherwise send to the memory system.
    fn pb_service(&mut self, t: Cycle, p: usize) {
        if self.procs[p].pbuf.is_empty() {
            self.procs[p].pb_active = false;
            return;
        }
        // Enforce the bus-occupancy spacing between prefetch issues.
        if t < self.procs[p].pb_next_issue {
            let at = self.procs[p].pb_next_issue;
            self.queue.schedule(at, Event::PbService(p));
            return;
        }
        let head = self.procs[p].pbuf.pop().expect("non-empty");
        // A slot frees as soon as the head issues (the buffer pipelines).
        if let Some(waiter) = self.procs[p].pf_full_waiters.pop_front() {
            self.queue.schedule(t, Event::Wake(waiter));
        }
        let node = dashlat_mem::addr::NodeId(p);
        let line = head.addr.line();
        let kind = if head.exclusive {
            AccessKind::ReadExPrefetch
        } else {
            AccessKind::ReadPrefetch
        };
        let already_in_flight = self.in_flight(p, line, t).is_some();
        if already_in_flight {
            // Combined with the outstanding request; nothing to issue.
            self.queue.schedule(t + Cycle(1), Event::PbService(p));
            return;
        }
        let r = self.access_mem(t, node, head.addr, kind);
        if r.class == ServiceClass::PrefetchDiscard {
            self.queue.schedule(t + Cycle(1), Event::PbService(p));
            return;
        }
        self.procs[p].pb_next_issue = t + self.cfg.prefetch_issue_spacing;
        self.note_in_flight(p, line, r.done_at, true);
        self.queue
            .schedule(self.procs[p].pb_next_issue, Event::PbService(p));
    }

    /// A fill arrived: clear the in-flight entry and model the primary
    /// cache lockout if the processor is executing (§5.1 / §6.1).
    fn fill_arrived(&mut self, t: Cycle, p: usize, line: LineAddr, from_prefetch: bool) {
        let lockout = self.mem.config().latencies.primary_fill_lockout.as_u64();
        let multi = self.cfg.contexts > 1;
        let proc = &mut self.procs[p];
        proc.outstanding.remove_exact(line, t);
        // If a context is executing while the line is written into the
        // primary cache, it is locked out for the fill duration.
        let executing = proc.idle_since.is_none() && proc.finished_at.is_none();
        if executing {
            if from_prefetch {
                proc.pending_lockout_pf += lockout;
            } else if multi {
                // Another context's demand fill interferes (no-switch idle).
                proc.pending_lockout_fill += lockout;
            }
        }
    }

    fn do_acquire(&mut self, t: Cycle, pid: usize, l: LockId) {
        // Weak consistency fences on *every* synchronization access: the
        // acquire may not issue until all previously issued writes have
        // completed with acknowledgements.
        let lock_wait = BlockedOn {
            op: BlockedOp::Acquire,
            addr: Some(self.sync.lock_addr(l)),
            holder: self.sync.lock_holder(l),
        };
        if self.cfg.consistency.acquire_waits() {
            let p = self.proc_of(pid);
            if !self.procs[p].wbuf.is_empty() {
                self.ctxs[pid].pending_op = Some(Op::Acquire(l));
                self.procs[p].fence_waiters.push_back(pid);
                self.block(t, pid, Reason::Sync, None, lock_wait);
                return;
            }
            let horizon = self.procs[p].acks_horizon;
            if horizon > t {
                self.ctxs[pid].pending_op = Some(Op::Acquire(l));
                self.block(t, pid, Reason::Sync, Some(horizon), lock_wait);
                return;
            }
        }
        self.lock_acquires += 1;
        match self.sync.acquire(l, ProcId(pid)) {
            AcquireOutcome::Granted => {
                // The lock is ours: the acquire commits here. (Queued
                // acquires commit in `unlock` when the releaser hands the
                // lock over — the woken context does not re-execute the
                // acquire.)
                self.emit(t, pid, EventKind::Acquire(l));
                // Test&set needs exclusive ownership of the lock line.
                let addr = self.sync.lock_addr(l);
                let node = self.node_of(pid);
                let r = self.access_mem(t, node, addr, AccessKind::Write);
                let stall = r.done_at.saturating_sub(t);
                let p = self.proc_of(pid);
                if stall <= self.cfg.no_switch_threshold {
                    self.charge_short_stall(p, stall, Reason::Sync);
                    self.queue.schedule(r.done_at, Event::Step(pid));
                } else {
                    self.block(
                        t,
                        pid,
                        Reason::Sync,
                        Some(r.done_at),
                        BlockedOn::on(BlockedOp::Acquire, addr),
                    );
                }
            }
            AcquireOutcome::Queued => {
                // Ownership will be handed to us by the releaser; wait.
                let wait = BlockedOn {
                    holder: self.sync.lock_holder(l),
                    ..lock_wait
                };
                self.block(t, pid, Reason::Sync, None, wait);
            }
        }
    }

    fn do_release(&mut self, t: Cycle, pid: usize, l: LockId) {
        let addr = self.sync.lock_addr(l);
        if self.cfg.consistency.buffers_writes() {
            // Under PC a release is an ordinary FIFO write (no ack fence);
            // under WC and RC it may not begin service before all prior
            // writes have completed with acks.
            let kind = if self.cfg.consistency.release_waits() {
                WriteKind::Release
            } else {
                WriteKind::Data
            };
            self.rc_write(t, pid, addr, kind, Some(l));
        } else {
            self.sc_write(t, pid, addr, Some(l));
        }
    }

    /// The release write completed: pass the lock to the first waiter.
    fn unlock(&mut self, t: Cycle, l: LockId, pid: usize) {
        if let Some(next) = self.sync.release(l, ProcId(pid)) {
            // Hand-off is the queued waiter's acquire commit point.
            self.emit(t, next.0, EventKind::Acquire(l));
            // The waiter re-fetches the lock line (it was invalidated by
            // the release) and acquires ownership.
            let addr = self.sync.lock_addr(l);
            let node = self.node_of(next.0);
            let r = self.access_mem(t, node, addr, AccessKind::Write);
            self.queue.schedule(r.done_at, Event::Wake(next.0));
        }
    }

    fn do_barrier(&mut self, t: Cycle, pid: usize, b: crate::ops::BarrierId) {
        self.barrier_arrivals += 1;
        // Arrival always commits (barriers never re-execute).
        self.emit(t, pid, EventKind::BarrierArrive(b));
        let addr = self.sync.barrier_addr(b);
        let node = self.node_of(pid);
        // Arrival: atomic increment of the barrier count (needs ownership;
        // the line ping-pongs between arrivals — the hot spot is real).
        let r = self.access_mem(t, node, addr, AccessKind::Write);
        match self.sync.arrive(b, ProcId(pid)) {
            BarrierOutcome::Wait => {
                self.block(
                    t,
                    pid,
                    Reason::Sync,
                    None,
                    BlockedOn::on(BlockedOp::Barrier, addr),
                );
            }
            BarrierOutcome::ReleaseAll(waiters) => {
                for w in waiters {
                    self.queue.schedule(r.done_at, Event::BarrierWake(w.0, b.0));
                }
                // The last arriver proceeds once its increment completes.
                let stall = r.done_at.saturating_sub(t);
                let p = self.proc_of(pid);
                if stall <= self.cfg.no_switch_threshold {
                    self.charge_short_stall(p, stall, Reason::Sync);
                    self.queue.schedule(r.done_at, Event::Step(pid));
                } else {
                    self.block(
                        t,
                        pid,
                        Reason::Sync,
                        Some(r.done_at),
                        BlockedOn::on(BlockedOp::Barrier, addr),
                    );
                }
            }
        }
    }

    /// A released barrier waiter re-reads the flag line (invalidated by the
    /// arrivals) before resuming; the resulting read storm contends on the
    /// barrier's home node, as on the real machine.
    fn barrier_wake(&mut self, t: Cycle, pid: usize, barrier: usize) {
        let node = self.node_of(pid);
        let addr = self.sync.barrier_addr(crate::ops::BarrierId(barrier));
        let r = self.access_mem(t, node, addr, AccessKind::Read);
        self.queue.schedule(r.done_at, Event::Wake(pid));
    }

    fn do_done(&mut self, t: Cycle, pid: usize) {
        self.emit(t, pid, EventKind::Done);
        self.ctxs[pid].state = CtxState::Finished;
        self.ctxs[pid].finished_at = Some(t);
        let p = self.proc_of(pid);
        self.reschedule(t, p, Reason::Sync);
    }
}
