//! The operation vocabulary connecting workloads to the processor model.
//!
//! Workloads are *execution-driven op generators* in the style of the Tango
//! reference generator (§2.3): each simulated process produces its next
//! shared-memory operation only when the architecture simulator unblocks
//! it, so the interleaving of references is determined by simulated time.
//! Instruction fetches and private-data references are assumed to hit
//! (paper footnote 2) and are folded into [`Op::Compute`] busy cycles.

use dashlat_mem::addr::{Addr, NodeId};

/// Identifier of a simulated process (one per hardware context).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub usize);

impl std::fmt::Display for ProcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifier of a lock declared by the workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LockId(pub usize);

/// Identifier of a barrier declared by the workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BarrierId(pub usize);

/// One operation of a simulated process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Execute `0` or more cycles of private computation (includes
    /// instruction fetch and private-data references, which always hit).
    Compute(u64),
    /// Load from shared memory; the process blocks until the value arrives.
    Read(Addr),
    /// Store to shared memory. Under SC the process stalls until ownership
    /// is acquired; under RC the store retires through the write buffer.
    Write(Addr),
    /// Issue a non-binding software prefetch (read-shared or
    /// read-exclusive). Free when prefetching is disabled in the machine
    /// configuration — workloads may emit these unconditionally.
    Prefetch {
        /// Line to prefetch.
        addr: Addr,
        /// Acquire ownership too (read-exclusive).
        exclusive: bool,
    },
    /// Atomic read-modify-write (test&set, fetch&op) to shared memory.
    /// Orders like a fence followed by an SC write under every consistency
    /// model: the processor first drains its write buffer (waiting for
    /// invalidation acknowledgements), then stalls while it acquires
    /// exclusive ownership of the line — the read and write halves are a
    /// single indivisible coherence action at the directory.
    Rmw(Addr),
    /// Acquire a lock (an acquire access in the RC classification).
    Acquire(LockId),
    /// Release a lock (a release access: under RC it retires through the
    /// write buffer after all previously issued writes complete).
    Release(LockId),
    /// Wait at a global barrier with all other processes.
    Barrier(BarrierId),
    /// The process has finished its work.
    Done,
}

/// Shape of the machine a workload is generated for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Number of processors (= nodes; the paper simulates 16).
    pub processors: usize,
    /// Hardware contexts per processor (1, 2 or 4 in the paper).
    pub contexts: usize,
}

impl Topology {
    /// Creates a topology.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(processors: usize, contexts: usize) -> Self {
        assert!(processors > 0 && contexts > 0);
        Topology {
            processors,
            contexts,
        }
    }

    /// Total process count (`processors × contexts`).
    pub fn processes(&self) -> usize {
        self.processors * self.contexts
    }

    /// Processor that runs `pid` (contexts are assigned in contiguous
    /// blocks: processor 0 runs processes `0..contexts`).
    pub fn processor_of(&self, pid: ProcId) -> usize {
        pid.0 / self.contexts
    }

    /// Node whose local memory is "local" for `pid` — the same as its
    /// processor, since every processor lives on its own node.
    pub fn node_of(&self, pid: ProcId) -> NodeId {
        NodeId(self.processor_of(pid))
    }

    /// Hardware-context slot of `pid` within its processor.
    pub fn context_of(&self, pid: ProcId) -> usize {
        pid.0 % self.contexts
    }
}

/// A contiguous address range the workload declares as holding *labeled
/// competing* accesses (properly-labeled terminology, Gharachorloo et al.):
/// conflicting accesses to these bytes are intentional data races — chaotic
/// accumulations, spin-read flags — that the program semantics tolerate.
/// The happens-before verifier exempts them; everything else must be
/// ordered by Acquire/Release/Barrier edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabeledRange {
    /// First byte of the range.
    pub base: Addr,
    /// Length in bytes.
    pub len: u64,
    /// Why the range competes (shown in analysis reports).
    pub name: String,
}

impl LabeledRange {
    /// Creates a labeled range.
    pub fn new(base: Addr, len: u64, name: impl Into<String>) -> Self {
        LabeledRange {
            base,
            len,
            name: name.into(),
        }
    }

    /// True when `addr` falls inside the range.
    pub fn contains(&self, addr: Addr) -> bool {
        addr.0 >= self.base.0 && addr.0 < self.base.0 + self.len
    }
}

/// Synchronization resources a workload declares up front: the shared-memory
/// addresses backing each lock and barrier (they are ordinary cache lines
/// and generate ordinary coherence traffic), plus any address ranges whose
/// competing accesses are *labeled* as intentionally unordered.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SyncConfig {
    /// One backing address per lock.
    pub lock_addrs: Vec<Addr>,
    /// One backing address per barrier. All processes participate in every
    /// barrier (the paper's applications use global barriers).
    pub barrier_addrs: Vec<Addr>,
    /// Declared labeled-competing ranges (empty for fully ordered
    /// workloads such as LU).
    pub labeled_ranges: Vec<LabeledRange>,
}

impl SyncConfig {
    /// The declared label covering `addr`, if any.
    pub fn label_of(&self, addr: Addr) -> Option<&str> {
        self.labeled_ranges
            .iter()
            .find(|r| r.contains(addr))
            .map(|r| r.name.as_str())
    }
}

/// An execution-driven reference generator.
///
/// The machine calls [`Workload::next_op`] each time process `pid` is ready
/// to issue; the workload advances that process's logical computation and
/// returns the next operation. Logical shared state (particle positions,
/// matrix values, task queues) lives inside the workload; the timing and
/// interleaving come from the simulator.
pub trait Workload {
    /// Number of simulated processes (must equal `topology.processes()`).
    fn processes(&self) -> usize;

    /// Produces the next operation of `pid`. Called again only after the
    /// previous operation completed. Must keep returning [`Op::Done`] once
    /// the process has finished.
    fn next_op(&mut self, pid: ProcId) -> Op;

    /// The operation [`Workload::next_op`] would return for `pid`, without
    /// consuming it — or `None` when the workload cannot look ahead.
    ///
    /// Only consulted when a scheduler
    /// ([`dashlat_sim::sched::Scheduler`]) is attached to the machine: the
    /// footprint of a pending processor step feeds the independence
    /// relation of the partial-order-reduction explorer. Workloads that
    /// cannot cheaply look ahead keep the default (`None`), which is
    /// treated as "may touch anything" — always safe, just less reduced.
    fn peek_op(&self, _pid: ProcId) -> Option<Op> {
        None
    }

    /// The locks and barriers this workload uses.
    fn sync_config(&self) -> SyncConfig;

    /// Bytes of shared data touched (Table 2's "Shared Data Size").
    fn shared_bytes(&self) -> u64 {
        0
    }

    /// Short name for reports.
    fn name(&self) -> &str {
        "workload"
    }

    /// An independent copy of this workload's complete logical state, or
    /// `None` when the workload cannot be duplicated. This is the
    /// workload's half of a machine warm-state snapshot
    /// ([`crate::machine::Machine::snapshot`]): a forked workload must
    /// behave bit-identically to the original under the same operation
    /// sequence. Trait objects cannot require `Clone`, hence the explicit
    /// hook; plain-data workloads implement it as `Some(Box::new(self.clone()))`.
    fn fork(&self) -> Option<Box<dyn Workload>> {
        None
    }
}

impl<W: Workload + ?Sized> Workload for &mut W {
    fn processes(&self) -> usize {
        (**self).processes()
    }
    fn next_op(&mut self, pid: ProcId) -> Op {
        (**self).next_op(pid)
    }
    fn peek_op(&self, pid: ProcId) -> Option<Op> {
        (**self).peek_op(pid)
    }
    fn sync_config(&self) -> SyncConfig {
        (**self).sync_config()
    }
    fn shared_bytes(&self) -> u64 {
        (**self).shared_bytes()
    }
    fn name(&self) -> &str {
        (**self).name()
    }
    fn fork(&self) -> Option<Box<dyn Workload>> {
        (**self).fork()
    }
}

impl<W: Workload + ?Sized> Workload for Box<W> {
    fn processes(&self) -> usize {
        (**self).processes()
    }
    fn next_op(&mut self, pid: ProcId) -> Op {
        (**self).next_op(pid)
    }
    fn peek_op(&self, pid: ProcId) -> Option<Op> {
        (**self).peek_op(pid)
    }
    fn sync_config(&self) -> SyncConfig {
        (**self).sync_config()
    }
    fn shared_bytes(&self) -> u64 {
        (**self).shared_bytes()
    }
    fn name(&self) -> &str {
        (**self).name()
    }
    fn fork(&self) -> Option<Box<dyn Workload>> {
        (**self).fork()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_mapping() {
        let t = Topology::new(4, 2);
        assert_eq!(t.processes(), 8);
        assert_eq!(t.processor_of(ProcId(0)), 0);
        assert_eq!(t.processor_of(ProcId(1)), 0);
        assert_eq!(t.processor_of(ProcId(2)), 1);
        assert_eq!(t.processor_of(ProcId(7)), 3);
        assert_eq!(t.node_of(ProcId(5)), NodeId(2));
        assert_eq!(t.context_of(ProcId(0)), 0);
        assert_eq!(t.context_of(ProcId(1)), 1);
        assert_eq!(t.context_of(ProcId(2)), 0);
    }

    #[test]
    fn single_context_is_identity() {
        let t = Topology::new(16, 1);
        for p in 0..16 {
            assert_eq!(t.processor_of(ProcId(p)), p);
            assert_eq!(t.context_of(ProcId(p)), 0);
        }
    }

    #[test]
    #[should_panic]
    fn zero_dimension_rejected() {
        let _ = Topology::new(0, 1);
    }
}
