//! Scripted (trace-driven) workloads.
//!
//! [`ScriptWorkload`] replays a fixed per-process operation list. It is the
//! simplest possible [`Workload`] — useful for tests, microbenchmarks and
//! for replaying externally captured reference traces.

use dashlat_mem::addr::Addr;

use crate::ops::{LabeledRange, Op, ProcId, SyncConfig, Workload};

/// A workload that replays fixed operation sequences.
///
/// Each process executes its list in order and then reports [`Op::Done`]
/// forever. Locks and barriers referenced by the script must be declared
/// via [`ScriptWorkload::with_locks`] / [`ScriptWorkload::with_barriers`].
///
/// # Example
///
/// ```
/// use dashlat_cpu::ops::{Op, ProcId, Workload};
/// use dashlat_cpu::script::ScriptWorkload;
/// use dashlat_mem::addr::Addr;
///
/// let mut w = ScriptWorkload::new(vec![vec![Op::Compute(3), Op::Read(Addr(0))]]);
/// assert_eq!(w.next_op(ProcId(0)), Op::Compute(3));
/// assert_eq!(w.next_op(ProcId(0)), Op::Read(Addr(0)));
/// assert_eq!(w.next_op(ProcId(0)), Op::Done);
/// assert_eq!(w.next_op(ProcId(0)), Op::Done);
/// ```
#[derive(Debug, Clone)]
pub struct ScriptWorkload {
    scripts: Vec<Vec<Op>>,
    cursor: Vec<usize>,
    sync: SyncConfig,
    shared_bytes: u64,
}

impl ScriptWorkload {
    /// Creates a scripted workload, one op list per process.
    ///
    /// # Panics
    ///
    /// Panics if `scripts` is empty.
    pub fn new(scripts: Vec<Vec<Op>>) -> Self {
        assert!(!scripts.is_empty(), "need at least one process");
        let cursor = vec![0; scripts.len()];
        ScriptWorkload {
            scripts,
            cursor,
            sync: SyncConfig::default(),
            shared_bytes: 0,
        }
    }

    /// Declares the backing addresses of the locks the script uses
    /// (`LockId(i)` maps to `addrs[i]`).
    pub fn with_locks(mut self, addrs: Vec<Addr>) -> Self {
        self.sync.lock_addrs = addrs;
        self
    }

    /// Declares the backing addresses of the barriers the script uses.
    pub fn with_barriers(mut self, addrs: Vec<Addr>) -> Self {
        self.sync.barrier_addrs = addrs;
        self
    }

    /// Declares labeled-competing address ranges (intentional races the
    /// happens-before verifier must exempt).
    pub fn with_labeled_ranges(mut self, ranges: Vec<LabeledRange>) -> Self {
        self.sync.labeled_ranges = ranges;
        self
    }

    /// Sets the reported shared-data size (Table 2 bookkeeping).
    pub fn with_shared_bytes(mut self, bytes: u64) -> Self {
        self.shared_bytes = bytes;
        self
    }
}

impl Workload for ScriptWorkload {
    fn fork(&self) -> Option<Box<dyn Workload>> {
        Some(Box::new(self.clone()))
    }

    fn processes(&self) -> usize {
        self.scripts.len()
    }

    fn next_op(&mut self, pid: ProcId) -> Op {
        let i = self.cursor[pid.0];
        match self.scripts[pid.0].get(i) {
            Some(&op) => {
                self.cursor[pid.0] += 1;
                op
            }
            None => Op::Done,
        }
    }

    fn sync_config(&self) -> SyncConfig {
        self.sync.clone()
    }

    fn shared_bytes(&self) -> u64 {
        self.shared_bytes
    }

    fn name(&self) -> &str {
        "script"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::LockId;

    #[test]
    fn replays_in_order_then_done() {
        let mut w = ScriptWorkload::new(vec![
            vec![Op::Compute(1), Op::Compute(2)],
            vec![Op::Acquire(LockId(0)), Op::Release(LockId(0))],
        ]);
        assert_eq!(w.processes(), 2);
        assert_eq!(w.next_op(ProcId(0)), Op::Compute(1));
        assert_eq!(w.next_op(ProcId(1)), Op::Acquire(LockId(0)));
        assert_eq!(w.next_op(ProcId(0)), Op::Compute(2));
        assert_eq!(w.next_op(ProcId(0)), Op::Done);
        assert_eq!(w.next_op(ProcId(1)), Op::Release(LockId(0)));
        assert_eq!(w.next_op(ProcId(1)), Op::Done);
    }

    #[test]
    fn sync_declarations() {
        let w = ScriptWorkload::new(vec![vec![]])
            .with_locks(vec![Addr(0x100)])
            .with_barriers(vec![Addr(0x200)])
            .with_shared_bytes(42);
        let sc = w.sync_config();
        assert_eq!(sc.lock_addrs, vec![Addr(0x100)]);
        assert_eq!(sc.barrier_addrs, vec![Addr(0x200)]);
        assert_eq!(w.shared_bytes(), 42);
        assert_eq!(w.name(), "script");
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn empty_scripts_rejected() {
        let _ = ScriptWorkload::new(vec![]);
    }
}
