//! Logical lock and barrier state.
//!
//! The paper's applications synchronize with the Argonne macro package:
//! spin locks and global barriers over ordinary shared lines. The machine
//! charges the *memory traffic* of acquiring/releasing through the memory
//! system (the lock/barrier lines are real addresses that bounce between
//! caches); this module tracks the *logical* state — who holds which lock,
//! who is queued, how many processes have arrived at a barrier.
//!
//! Modelling note: waiters are queued and woken in FIFO order, each paying a
//! fresh miss on the lock line at wake-up, instead of simulating every spin
//! iteration. The elapsed wait is identical; only the (cached, hence cheap)
//! intermediate spin reads are elided. RC's earlier-release benefit is
//! preserved because the release propagates through the write buffer before
//! the wake-up happens.

use std::collections::VecDeque;

use dashlat_mem::addr::Addr;

use crate::ops::{BarrierId, LockId, ProcId, SyncConfig};

#[derive(Debug, Clone)]
struct Lock {
    addr: Addr,
    holder: Option<ProcId>,
    waiters: VecDeque<ProcId>,
}

#[derive(Debug, Clone)]
struct Barrier {
    addr: Addr,
    arrived: usize,
    waiting: Vec<ProcId>,
    episodes: u64,
}

/// Result of a lock acquire attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireOutcome {
    /// The lock was free and is now held by the caller.
    Granted,
    /// The lock is held; the caller has been queued.
    Queued,
}

/// Result of arriving at a barrier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BarrierOutcome {
    /// More processes are still missing; the caller waits.
    Wait,
    /// The caller was the last to arrive: everyone listed (the earlier
    /// arrivals) must be woken, and the caller proceeds.
    ReleaseAll(Vec<ProcId>),
}

/// Machine-wide synchronization state.
#[derive(Debug, Clone)]
pub struct SyncState {
    locks: Vec<Lock>,
    barriers: Vec<Barrier>,
    participants: usize,
    lock_ops: u64,
    barrier_ops: u64,
}

impl SyncState {
    /// Builds the lock/barrier tables for a workload.
    pub fn new(cfg: &SyncConfig, participants: usize) -> Self {
        SyncState {
            locks: cfg
                .lock_addrs
                .iter()
                .map(|&addr| Lock {
                    addr,
                    holder: None,
                    waiters: VecDeque::new(),
                })
                .collect(),
            barriers: cfg
                .barrier_addrs
                .iter()
                .map(|&addr| Barrier {
                    addr,
                    arrived: 0,
                    waiting: Vec::new(),
                    episodes: 0,
                })
                .collect(),
            participants,
            lock_ops: 0,
            barrier_ops: 0,
        }
    }

    /// Backing address of a lock (its cache line carries the traffic).
    pub fn lock_addr(&self, lock: LockId) -> Addr {
        self.locks[lock.0].addr
    }

    /// Backing address of a barrier.
    pub fn barrier_addr(&self, barrier: BarrierId) -> Addr {
        self.barriers[barrier.0].addr
    }

    /// Current holder of a lock, if any (watchdog diagnostics).
    pub fn lock_holder(&self, lock: LockId) -> Option<ProcId> {
        self.locks[lock.0].holder
    }

    /// Attempts to acquire `lock` for `pid`.
    ///
    /// Note that `pid` may legitimately queue behind *itself*: under
    /// release consistency the processor runs ahead of its write buffer, so
    /// a process can reach its next acquire of a lock while its own release
    /// of that lock is still buffered. The queued acquire is granted when
    /// the release retires. (A genuine double-acquire without a release is
    /// a workload bug and surfaces as a reported deadlock.)
    pub fn acquire(&mut self, lock: LockId, pid: ProcId) -> AcquireOutcome {
        self.lock_ops += 1;
        let l = &mut self.locks[lock.0];
        match l.holder {
            None => {
                l.holder = Some(pid);
                AcquireOutcome::Granted
            }
            Some(_) => {
                l.waiters.push_back(pid);
                AcquireOutcome::Queued
            }
        }
    }

    /// Releases `lock`; if a waiter was queued, ownership passes to it and
    /// it is returned so the machine can wake it.
    ///
    /// # Panics
    ///
    /// Panics if `pid` does not hold the lock.
    pub fn release(&mut self, lock: LockId, pid: ProcId) -> Option<ProcId> {
        self.lock_ops += 1;
        let l = &mut self.locks[lock.0];
        assert_eq!(
            l.holder,
            Some(pid),
            "{pid} releasing a lock it does not hold"
        );
        match l.waiters.pop_front() {
            Some(next) => {
                l.holder = Some(next);
                Some(next)
            }
            None => {
                l.holder = None;
                None
            }
        }
    }

    /// Records `pid` arriving at `barrier`.
    pub fn arrive(&mut self, barrier: BarrierId, pid: ProcId) -> BarrierOutcome {
        self.barrier_ops += 1;
        let b = &mut self.barriers[barrier.0];
        b.arrived += 1;
        if b.arrived == self.participants {
            b.arrived = 0;
            b.episodes += 1;
            BarrierOutcome::ReleaseAll(std::mem::take(&mut b.waiting))
        } else {
            b.waiting.push(pid);
            BarrierOutcome::Wait
        }
    }

    /// Total lock operations (acquires + releases) — Table 2's "Locks".
    pub fn lock_ops(&self) -> u64 {
        self.lock_ops
    }

    /// Total individual barrier arrivals — Table 2 counts per-process
    /// barrier operations.
    pub fn barrier_ops(&self) -> u64 {
        self.barrier_ops
    }

    /// Completed barrier episodes.
    pub fn barrier_episodes(&self) -> u64 {
        self.barriers.iter().map(|b| b.episodes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(locks: usize, barriers: usize) -> SyncConfig {
        SyncConfig {
            lock_addrs: (0..locks).map(|i| Addr(i as u64 * 16)).collect(),
            barrier_addrs: (0..barriers)
                .map(|i| Addr(0x1000 + i as u64 * 16))
                .collect(),
            labeled_ranges: Vec::new(),
        }
    }

    #[test]
    fn uncontended_lock() {
        let mut s = SyncState::new(&cfg(1, 0), 2);
        assert_eq!(s.acquire(LockId(0), ProcId(0)), AcquireOutcome::Granted);
        assert_eq!(s.release(LockId(0), ProcId(0)), None);
        assert_eq!(s.lock_ops(), 2);
    }

    #[test]
    fn contended_lock_hands_off_fifo() {
        let mut s = SyncState::new(&cfg(1, 0), 4);
        assert_eq!(s.acquire(LockId(0), ProcId(0)), AcquireOutcome::Granted);
        assert_eq!(s.acquire(LockId(0), ProcId(1)), AcquireOutcome::Queued);
        assert_eq!(s.acquire(LockId(0), ProcId(2)), AcquireOutcome::Queued);
        assert_eq!(s.release(LockId(0), ProcId(0)), Some(ProcId(1)));
        assert_eq!(s.release(LockId(0), ProcId(1)), Some(ProcId(2)));
        assert_eq!(s.release(LockId(0), ProcId(2)), None);
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn release_by_non_holder_panics() {
        let mut s = SyncState::new(&cfg(1, 0), 2);
        s.acquire(LockId(0), ProcId(0));
        s.release(LockId(0), ProcId(1));
    }

    #[test]
    fn reacquire_behind_own_buffered_release_queues() {
        // RC lets a process reach its next acquire before its own release
        // retires: the acquire queues and is granted by the release.
        let mut s = SyncState::new(&cfg(1, 0), 2);
        assert_eq!(s.acquire(LockId(0), ProcId(0)), AcquireOutcome::Granted);
        assert_eq!(s.acquire(LockId(0), ProcId(0)), AcquireOutcome::Queued);
        assert_eq!(s.release(LockId(0), ProcId(0)), Some(ProcId(0)));
        assert_eq!(s.release(LockId(0), ProcId(0)), None);
    }

    #[test]
    fn barrier_releases_on_last_arrival() {
        let mut s = SyncState::new(&cfg(0, 1), 3);
        assert_eq!(s.arrive(BarrierId(0), ProcId(0)), BarrierOutcome::Wait);
        assert_eq!(s.arrive(BarrierId(0), ProcId(1)), BarrierOutcome::Wait);
        match s.arrive(BarrierId(0), ProcId(2)) {
            BarrierOutcome::ReleaseAll(w) => assert_eq!(w, vec![ProcId(0), ProcId(1)]),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(s.barrier_episodes(), 1);
        assert_eq!(s.barrier_ops(), 3);
    }

    #[test]
    fn barrier_is_reusable() {
        let mut s = SyncState::new(&cfg(0, 1), 2);
        for _ in 0..3 {
            assert_eq!(s.arrive(BarrierId(0), ProcId(0)), BarrierOutcome::Wait);
            assert!(matches!(
                s.arrive(BarrierId(0), ProcId(1)),
                BarrierOutcome::ReleaseAll(_)
            ));
        }
        assert_eq!(s.barrier_episodes(), 3);
    }

    #[test]
    fn addresses_exposed() {
        let s = SyncState::new(&cfg(2, 1), 2);
        assert_eq!(s.lock_addr(LockId(1)), Addr(16));
        assert_eq!(s.barrier_addr(BarrierId(0)), Addr(0x1000));
    }
}
