//! Reference-trace capture and replay.
//!
//! [`TraceRecorder`] wraps any [`Workload`] and records the operation
//! stream each process actually issued during an execution-driven run;
//! [`Trace`] serializes it to a compact line-based text format and loads it
//! back as a [`ScriptWorkload`] for replay.
//!
//! **Fidelity caveat** (the reason the paper uses Tango-style
//! execution-driven simulation rather than traces, §2.3): a recorded trace
//! embeds the interleaving decisions of the configuration it was captured
//! under. Replaying it on a *different* machine configuration reproduces
//! the reference stream but not the feedback between timing and references
//! (lock order, task stealing, spin iteration counts). Traces are for
//! deterministic replay, debugging and external tooling — use the live
//! workloads for comparative experiments.

use std::collections::VecDeque;
use std::fmt::Write as _;

use dashlat_mem::addr::Addr;

use crate::ops::{BarrierId, LabeledRange, LockId, Op, ProcId, SyncConfig, Workload};
use crate::script::ScriptWorkload;

/// A captured multi-process reference trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Per-process operation streams (including the final `Done`).
    pub streams: Vec<Vec<Op>>,
    /// The lock/barrier declarations of the traced workload.
    pub sync: SyncConfig,
    /// Page placement of the recorded address space:
    /// `(node_count, per-page home node)`. When present, a replay can
    /// reconstruct the exact local/remote classification of every address.
    pub page_homes: Option<(usize, Vec<usize>)>,
}

/// Error from parsing a serialized trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseTraceError {}

impl Trace {
    /// Serializes the trace.
    ///
    /// Format: a header (`procs`, `lock`/`barrier` address declarations,
    /// `atomic <base> <len> <name>` labeled-competing ranges), then one
    /// line per op: `<pid> C <cycles>` / `R <addr>` / `W <addr>` /
    /// `P <addr> <0|1>` / `A <lock>` / `L <lock>` / `B <barrier>` / `D`.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "procs {}", self.streams.len());
        if let Some((nodes, homes)) = &self.page_homes {
            let _ = write!(out, "pagemap {nodes}");
            for h in homes {
                let _ = write!(out, " {h}");
            }
            let _ = writeln!(out);
        }
        for a in &self.sync.lock_addrs {
            let _ = writeln!(out, "lock {:#x}", a.0);
        }
        for a in &self.sync.barrier_addrs {
            let _ = writeln!(out, "barrier {:#x}", a.0);
        }
        for r in &self.sync.labeled_ranges {
            let _ = writeln!(out, "atomic {:#x} {} {}", r.base.0, r.len, r.name);
        }
        for (pid, stream) in self.streams.iter().enumerate() {
            for op in stream {
                let _ = match op {
                    Op::Compute(n) => writeln!(out, "{pid} C {n}"),
                    Op::Read(a) => writeln!(out, "{pid} R {:#x}", a.0),
                    Op::Write(a) => writeln!(out, "{pid} W {:#x}", a.0),
                    Op::Rmw(a) => writeln!(out, "{pid} M {:#x}", a.0),
                    Op::Prefetch { addr, exclusive } => {
                        writeln!(out, "{pid} P {:#x} {}", addr.0, u8::from(*exclusive))
                    }
                    Op::Acquire(l) => writeln!(out, "{pid} A {}", l.0),
                    Op::Release(l) => writeln!(out, "{pid} L {}", l.0),
                    Op::Barrier(b) => writeln!(out, "{pid} B {}", b.0),
                    Op::Done => writeln!(out, "{pid} D"),
                };
            }
        }
        out
    }

    /// Parses a serialized trace.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] for malformed headers, out-of-range
    /// process ids, or unknown op codes.
    pub fn from_text(text: &str) -> Result<Trace, ParseTraceError> {
        let err = |line: usize, message: &str| ParseTraceError {
            line,
            message: message.to_owned(),
        };
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or_else(|| err(1, "empty trace"))?;
        let procs: usize = header
            .strip_prefix("procs ")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| err(1, "expected `procs <n>` header"))?;
        if procs == 0 {
            return Err(err(1, "trace needs at least one process"));
        }
        let mut streams = vec![Vec::new(); procs];
        let mut sync = SyncConfig::default();
        let mut page_homes = None;
        let parse_hex = |s: &str| -> Option<u64> {
            s.strip_prefix("0x")
                .and_then(|h| u64::from_str_radix(h, 16).ok())
        };
        for (i, raw) in lines {
            let lineno = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix("pagemap ") {
                let mut it = rest.split_whitespace();
                let nodes: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or_else(|| err(lineno, "bad pagemap node count"))?;
                let homes: Option<Vec<usize>> = it.map(|v| v.parse().ok()).collect();
                let homes = homes.ok_or_else(|| err(lineno, "bad pagemap home"))?;
                if homes.iter().any(|&h| h >= nodes) {
                    return Err(err(lineno, "pagemap home out of range"));
                }
                page_homes = Some((nodes, homes));
                continue;
            }
            if let Some(rest) = line.strip_prefix("lock ") {
                let a = parse_hex(rest).ok_or_else(|| err(lineno, "bad lock address"))?;
                sync.lock_addrs.push(Addr(a));
                continue;
            }
            if let Some(rest) = line.strip_prefix("barrier ") {
                let a = parse_hex(rest).ok_or_else(|| err(lineno, "bad barrier address"))?;
                sync.barrier_addrs.push(Addr(a));
                continue;
            }
            if let Some(rest) = line.strip_prefix("atomic ") {
                let mut it = rest.splitn(3, ' ');
                let base = it
                    .next()
                    .and_then(parse_hex)
                    .ok_or_else(|| err(lineno, "bad atomic base address"))?;
                let len: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&l| l > 0)
                    .ok_or_else(|| err(lineno, "bad atomic range length"))?;
                let name = it.next().unwrap_or("labeled").to_owned();
                sync.labeled_ranges
                    .push(LabeledRange::new(Addr(base), len, name));
                continue;
            }
            let mut parts = line.split_whitespace();
            let pid: usize = parts
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| err(lineno, "expected process id"))?;
            if pid >= procs {
                return Err(err(lineno, "process id out of range"));
            }
            let code = parts.next().ok_or_else(|| err(lineno, "missing op code"))?;
            let op = match code {
                "C" => Op::Compute(
                    parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err(lineno, "bad compute count"))?,
                ),
                "R" => Op::Read(Addr(
                    parts
                        .next()
                        .and_then(parse_hex)
                        .ok_or_else(|| err(lineno, "bad read address"))?,
                )),
                "W" => Op::Write(Addr(
                    parts
                        .next()
                        .and_then(parse_hex)
                        .ok_or_else(|| err(lineno, "bad write address"))?,
                )),
                "M" => Op::Rmw(Addr(
                    parts
                        .next()
                        .and_then(parse_hex)
                        .ok_or_else(|| err(lineno, "bad rmw address"))?,
                )),
                "P" => {
                    let addr = parts
                        .next()
                        .and_then(parse_hex)
                        .ok_or_else(|| err(lineno, "bad prefetch address"))?;
                    let ex = parts
                        .next()
                        .and_then(|v| v.parse::<u8>().ok())
                        .ok_or_else(|| err(lineno, "bad prefetch kind"))?;
                    Op::Prefetch {
                        addr: Addr(addr),
                        exclusive: ex != 0,
                    }
                }
                "A" => Op::Acquire(LockId(
                    parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err(lineno, "bad lock id"))?,
                )),
                "L" => Op::Release(LockId(
                    parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err(lineno, "bad lock id"))?,
                )),
                "B" => Op::Barrier(BarrierId(
                    parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err(lineno, "bad barrier id"))?,
                )),
                "D" => Op::Done,
                other => return Err(err(lineno, &format!("unknown op code {other:?}"))),
            };
            streams[pid].push(op);
        }
        Ok(Trace {
            streams,
            sync,
            page_homes,
        })
    }

    /// Turns the trace into a replayable workload.
    pub fn into_workload(self) -> ScriptWorkload {
        // Drop trailing Dones: ScriptWorkload appends them implicitly.
        let scripts: Vec<Vec<Op>> = self
            .streams
            .into_iter()
            .map(|mut s| {
                while s.last() == Some(&Op::Done) {
                    s.pop();
                }
                s
            })
            .collect();
        ScriptWorkload::new(scripts)
            .with_locks(self.sync.lock_addrs)
            .with_barriers(self.sync.barrier_addrs)
            .with_labeled_ranges(self.sync.labeled_ranges)
    }

    /// Total recorded operations.
    pub fn len(&self) -> usize {
        self.streams.iter().map(std::vec::Vec::len).sum()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Wraps a workload and records everything it emits.
///
/// # Example
///
/// ```
/// use dashlat_cpu::ops::{Op, ProcId, Workload};
/// use dashlat_cpu::script::ScriptWorkload;
/// use dashlat_cpu::trace::TraceRecorder;
///
/// let inner = ScriptWorkload::new(vec![vec![Op::Compute(5)]]);
/// let mut rec = TraceRecorder::new(inner);
/// let _ = rec.next_op(ProcId(0)); // Compute(5)
/// let _ = rec.next_op(ProcId(0)); // Done
/// let trace = rec.into_trace();
/// assert_eq!(trace.streams[0], vec![Op::Compute(5), Op::Done]);
/// ```
#[derive(Debug)]
pub struct TraceRecorder<W> {
    inner: W,
    streams: Vec<Vec<Op>>,
    /// Avoid recording unbounded runs of trailing `Done`s.
    finished: Vec<bool>,
}

impl<W: Workload> TraceRecorder<W> {
    /// Starts recording `inner`.
    pub fn new(inner: W) -> Self {
        let n = inner.processes();
        TraceRecorder {
            inner,
            streams: vec![Vec::new(); n],
            finished: vec![false; n],
        }
    }

    /// Finishes recording and returns the trace.
    pub fn into_trace(self) -> Trace {
        let sync = self.inner.sync_config();
        Trace {
            streams: self.streams,
            sync,
            page_homes: None,
        }
    }

    /// Finishes recording, attaching the recorded machine's page placement
    /// so replays classify local/remote exactly as the original run did.
    pub fn into_trace_with_pages(self, nodes: usize, homes: Vec<usize>) -> Trace {
        let mut t = self.into_trace();
        t.page_homes = Some((nodes, homes));
        t
    }

    /// Access to the wrapped workload.
    pub fn inner(&self) -> &W {
        &self.inner
    }
}

impl<W: Workload> Workload for TraceRecorder<W> {
    fn processes(&self) -> usize {
        self.inner.processes()
    }

    fn next_op(&mut self, pid: ProcId) -> Op {
        let op = self.inner.next_op(pid);
        if !self.finished[pid.0] {
            self.streams[pid.0].push(op);
            if op == Op::Done {
                self.finished[pid.0] = true;
            }
        }
        op
    }

    fn sync_config(&self) -> SyncConfig {
        self.inner.sync_config()
    }

    fn shared_bytes(&self) -> u64 {
        self.inner.shared_bytes()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// Replayed queue wrapper kept for API symmetry (alias of the script
/// workload's underlying storage type).
pub type ReplayQueue = VecDeque<Op>;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace {
            streams: vec![
                vec![
                    Op::Compute(7),
                    Op::Read(Addr(0x40)),
                    Op::Prefetch {
                        addr: Addr(0x80),
                        exclusive: true,
                    },
                    Op::Acquire(LockId(0)),
                    Op::Write(Addr(0x40)),
                    Op::Release(LockId(0)),
                    Op::Barrier(BarrierId(0)),
                    Op::Done,
                ],
                vec![Op::Barrier(BarrierId(0)), Op::Done],
            ],
            sync: SyncConfig {
                lock_addrs: vec![Addr(0x1000)],
                barrier_addrs: vec![Addr(0x2000)],
                labeled_ranges: vec![LabeledRange::new(Addr(0x3000), 32, "test scratch")],
            },
            page_homes: Some((4, vec![0, 1, 2, 3, 0])),
        }
    }

    #[test]
    fn text_round_trip() {
        let t = sample_trace();
        let text = t.to_text();
        let back = Trace::from_text(&text).expect("parses");
        assert_eq!(t, back);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Trace::from_text("").is_err());
        assert!(Trace::from_text("procs 0").is_err());
        assert!(Trace::from_text("procs 1\n0 Z").is_err());
        assert!(Trace::from_text("procs 1\n5 C 3").is_err());
        assert!(Trace::from_text("procs 1\n0 R nothex").is_err());
        let e = Trace::from_text("procs 1\n0 Q").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let t = Trace::from_text("procs 1\n# comment\n\n0 C 3\n0 D\n").expect("parses");
        assert_eq!(t.streams[0], vec![Op::Compute(3), Op::Done]);
    }

    #[test]
    fn recorder_captures_everything_once() {
        use crate::script::ScriptWorkload;
        let inner = ScriptWorkload::new(vec![vec![Op::Compute(1), Op::Compute(2)]]);
        let mut rec = TraceRecorder::new(inner);
        for _ in 0..10 {
            let _ = rec.next_op(ProcId(0));
        }
        let t = rec.into_trace();
        // Exactly one trailing Done recorded.
        assert_eq!(t.streams[0], vec![Op::Compute(1), Op::Compute(2), Op::Done]);
    }

    #[test]
    fn into_workload_replays() {
        use crate::ops::Workload;
        let mut w = sample_trace().into_workload();
        assert_eq!(w.processes(), 2);
        assert_eq!(w.next_op(ProcId(0)), Op::Compute(7));
        assert_eq!(w.next_op(ProcId(1)), Op::Barrier(BarrierId(0)));
        assert_eq!(w.sync_config().lock_addrs, vec![Addr(0x1000)]);
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(sample_trace().len(), 10);
        assert!(!sample_trace().is_empty());
        let empty = Trace {
            streams: vec![vec![]],
            sync: SyncConfig::default(),
            page_homes: None,
        };
        assert!(empty.is_empty());
    }
}
