//! Semantics of the four consistency models (SC / PC / WC / RC).

use dashlat_cpu::config::{Consistency, ProcConfig};
use dashlat_cpu::machine::{Machine, RunResult};
use dashlat_cpu::ops::{LockId, Op, Topology};
use dashlat_cpu::script::ScriptWorkload;
use dashlat_mem::addr::Addr;
use dashlat_mem::layout::{AddressSpaceBuilder, Placement};
use dashlat_mem::system::{MemConfig, MemorySystem};
use dashlat_sim::Cycle;

fn rig(nodes: usize) -> (Vec<Addr>, Addr, MemorySystem) {
    let mut b = AddressSpaceBuilder::new(nodes);
    let locals: Vec<Addr> = b
        .alloc_per_node("local", 4096)
        .iter()
        .map(dashlat_mem::Segment::base)
        .collect();
    let shared = b
        .alloc("shared", 4096 * nodes as u64, Placement::RoundRobin)
        .base();
    let mut cfg = MemConfig::dash_scaled(nodes);
    cfg.contention = false;
    (locals, shared, MemorySystem::new(cfg, b.build()))
}

fn cfg_for(model: Consistency) -> ProcConfig {
    match model {
        Consistency::Sc => ProcConfig::sc_baseline(),
        Consistency::Pc => ProcConfig::pc_baseline(),
        Consistency::Wc => ProcConfig::wc_baseline(),
        Consistency::Rc => ProcConfig::rc_baseline(),
    }
}

/// Writer performs N remote writes and finishes; measures pure write-path
/// behaviour.
fn write_burst(model: Consistency) -> RunResult {
    let (locals, _, mem) = rig(2);
    let remote = locals[1];
    let ops: Vec<Op> = (0..12).map(|i| Op::Write(remote.offset(i * 16))).collect();
    let w = ScriptWorkload::new(vec![ops, vec![]]);
    Machine::new(cfg_for(model), Topology::new(2, 1), mem, w)
        .with_max_cycles(Cycle(10_000_000))
        .run()
        .expect("terminates")
}

#[test]
fn every_relaxed_model_buffers_writes() {
    let sc = write_burst(Consistency::Sc);
    for model in [Consistency::Pc, Consistency::Wc, Consistency::Rc] {
        let r = write_burst(model);
        assert_eq!(
            r.aggregate.write_stall,
            Cycle::ZERO,
            "{model} did not buffer writes"
        );
        assert!(
            r.elapsed < sc.elapsed,
            "{model} not faster than SC: {} !< {}",
            r.elapsed,
            sc.elapsed
        );
    }
    assert!(sc.aggregate.write_stall > Cycle::ZERO);
}

#[test]
fn pc_release_is_not_fenced_rc_release_is() {
    // Under PC the release retires FIFO right behind the data write;
    // under RC/WC it additionally waits for the data write's acks. With
    // no sharers the ack horizon equals the write completion, so instead
    // create an ack dependency: pre-share the written line.
    let run_with_sharers = |model: Consistency| {
        let (locals, shared, mem) = rig(4);
        let line = locals[1];
        let w = ScriptWorkload::new(vec![
            vec![
                Op::Read(line), // becomes a sharer
                Op::Compute(5),
                Op::Acquire(LockId(0)),
                Op::Write(line), // upgrade: invalidations + acks
                Op::Release(LockId(0)),
            ],
            vec![Op::Read(line)], // another sharer
            vec![
                Op::Compute(40),
                Op::Acquire(LockId(0)),
                Op::Release(LockId(0)),
            ],
            vec![],
        ])
        .with_locks(vec![shared]);
        Machine::new(cfg_for(model), Topology::new(4, 1), mem, w)
            .with_max_cycles(Cycle(10_000_000))
            .run()
            .expect("terminates")
    };
    let pc = run_with_sharers(Consistency::Pc);
    let rc = run_with_sharers(Consistency::Rc);
    // The RC run's critical-section handoff includes the ack wait; PC's
    // does not, so PC finishes no later than RC here.
    assert!(
        pc.elapsed <= rc.elapsed,
        "PC {} should not lag RC {} on the release path",
        pc.elapsed,
        rc.elapsed
    );
}

#[test]
fn wc_acquire_fences_on_prior_writes() {
    // A WC acquire after a burst of buffered writes must wait for the
    // buffer to drain; an RC acquire may proceed immediately.
    let mk = |model: Consistency| {
        let (locals, shared, mem) = rig(2);
        let remote = locals[1];
        let mut ops: Vec<Op> = (0..10).map(|i| Op::Write(remote.offset(i * 16))).collect();
        ops.push(Op::Acquire(LockId(0)));
        ops.push(Op::Release(LockId(0)));
        let w = ScriptWorkload::new(vec![ops, vec![]]).with_locks(vec![shared]);
        Machine::new(cfg_for(model), Topology::new(2, 1), mem, w)
            .with_max_cycles(Cycle(10_000_000))
            .run()
            .expect("terminates")
    };
    let wc = mk(Consistency::Wc);
    let rc = mk(Consistency::Rc);
    assert!(
        wc.aggregate.sync_stall > rc.aggregate.sync_stall,
        "WC acquire did not fence: sync {} !> {}",
        wc.aggregate.sync_stall,
        rc.aggregate.sync_stall
    );
    assert!(wc.elapsed >= rc.elapsed);
}

#[test]
fn spectrum_orders_sc_slowest() {
    // Mixed read/write/lock workload: SC must be the slowest of the four.
    let mk = |model: Consistency| {
        let (locals, shared, mem) = rig(2);
        let remote = locals[1];
        let ops: Vec<Op> = (0..20)
            .flat_map(|i| {
                [
                    Op::Compute(5),
                    Op::Write(remote.offset((i % 32) * 16)),
                    Op::Read(remote.offset(((i + 40) % 64) * 16)),
                    Op::Acquire(LockId(0)),
                    Op::Compute(3),
                    Op::Release(LockId(0)),
                ]
            })
            .collect();
        let w = ScriptWorkload::new(vec![ops, vec![]]).with_locks(vec![shared]);
        Machine::new(cfg_for(model), Topology::new(2, 1), mem, w)
            .with_max_cycles(Cycle(10_000_000))
            .run()
            .expect("terminates")
    };
    let sc = mk(Consistency::Sc).elapsed;
    for model in [Consistency::Pc, Consistency::Wc, Consistency::Rc] {
        let t = mk(model).elapsed;
        assert!(t < sc, "{model} {t} not faster than SC {sc}");
    }
}

#[test]
fn model_helpers_are_consistent() {
    assert!(!Consistency::Sc.buffers_writes());
    assert!(Consistency::Pc.buffers_writes());
    assert!(Consistency::Wc.buffers_writes());
    assert!(Consistency::Rc.buffers_writes());
    assert!(!Consistency::Pc.release_waits());
    assert!(Consistency::Wc.release_waits());
    assert!(Consistency::Rc.release_waits());
    assert!(Consistency::Wc.acquire_waits());
    assert!(!Consistency::Rc.acquire_waits());
    assert_eq!(Consistency::Pc.to_string(), "PC");
    assert_eq!(Consistency::Wc.to_string(), "WC");
}
