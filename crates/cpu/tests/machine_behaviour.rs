//! Behavioural tests of the machine executor: timing, consistency models,
//! context switching, synchronization and prefetching semantics.

use dashlat_cpu::config::ProcConfig;
use dashlat_cpu::machine::{Machine, RunError, RunResult};
use dashlat_cpu::ops::{BarrierId, LockId, Op, Topology};
use dashlat_cpu::script::ScriptWorkload;
use dashlat_mem::addr::{Addr, NodeId};
use dashlat_mem::layout::{AddressSpaceBuilder, Placement};
use dashlat_mem::system::{MemConfig, MemorySystem};
use dashlat_sim::Cycle;

/// Builds a machine with contention disabled (analytic Table 1 latencies)
/// and a per-node local page plus a shared round-robin region.
struct Rig {
    locals: Vec<Addr>,
    shared: Addr,
    mem: MemorySystem,
}

fn rig(nodes: usize) -> Rig {
    let mut b = AddressSpaceBuilder::new(nodes);
    let locals = b
        .alloc_per_node("local", 4096)
        .iter()
        .map(dashlat_mem::Segment::base)
        .collect();
    let shared = b
        .alloc("shared", 4096 * nodes as u64, Placement::RoundRobin)
        .base();
    let mut cfg = MemConfig::dash_scaled(nodes);
    cfg.contention = false;
    Rig {
        locals,
        shared,
        mem: MemorySystem::new(cfg, b.build()),
    }
}

fn run(cfg: ProcConfig, topo: Topology, mem: MemorySystem, w: ScriptWorkload) -> RunResult {
    Machine::new(cfg, topo, mem, w)
        .with_max_cycles(Cycle(50_000_000))
        .run()
        .expect("script terminates")
}

#[test]
fn compute_only_costs_exactly_busy_time() {
    let r = rig(1);
    let w = ScriptWorkload::new(vec![vec![Op::Compute(100), Op::Compute(23)]]);
    let res = run(ProcConfig::sc_baseline(), Topology::new(1, 1), r.mem, w);
    assert_eq!(res.elapsed, Cycle(123));
    assert_eq!(res.aggregate.busy, Cycle(123));
    assert_eq!(res.aggregate.total(), Cycle(123));
    assert!((res.utilization() - 1.0).abs() < 1e-12);
}

#[test]
fn cold_read_miss_charges_read_stall() {
    let r = rig(1);
    let a = r.locals[0];
    let w = ScriptWorkload::new(vec![vec![Op::Read(a), Op::Read(a)]]);
    let res = run(ProcConfig::sc_baseline(), Topology::new(1, 1), r.mem, w);
    // Cold read: 26 (local fill). Second read: primary hit, 1 busy cycle.
    assert_eq!(res.elapsed, Cycle(27));
    assert_eq!(res.aggregate.read_stall, Cycle(26));
    assert_eq!(res.aggregate.busy, Cycle(1));
    assert_eq!(res.shared_reads, 2);
}

#[test]
fn sc_stalls_on_writes_rc_buffers_them() {
    // Writes to consecutive lines of a *remote* page: 64 cycles each SC.
    let mk = |_| {
        let r = rig(2);
        let remote = r.locals[1];
        let ops: Vec<Op> = (0..8).map(|i| Op::Write(remote.offset(i * 16))).collect();
        let w = ScriptWorkload::new(vec![ops, vec![]]);
        (r, w)
    };
    let (r_sc, w_sc) = mk(());
    let sc = run(
        ProcConfig::sc_baseline(),
        Topology::new(2, 1),
        r_sc.mem,
        w_sc,
    );
    let (r_rc, w_rc) = mk(());
    let rc = run(
        ProcConfig::rc_baseline(),
        Topology::new(2, 1),
        r_rc.mem,
        w_rc,
    );
    // SC pays 8 × 64 cycles of write stall; RC hides all of it.
    assert_eq!(sc.breakdowns[0].write_stall, Cycle(8 * 64));
    assert_eq!(rc.breakdowns[0].write_stall, Cycle::ZERO);
    assert!(
        rc.elapsed < sc.elapsed,
        "RC {} !< SC {}",
        rc.elapsed,
        sc.elapsed
    );
    // Under RC the processor finishes issuing almost immediately.
    assert!(rc.breakdowns[0].busy >= Cycle(8));
}

#[test]
fn write_hit_is_a_short_stall_not_a_switch() {
    let r = rig(1);
    let a = r.locals[0];
    // First write acquires ownership (18, local); second is a 2-cycle hit.
    let w = ScriptWorkload::new(vec![vec![Op::Write(a), Op::Write(a)]]);
    let res = run(ProcConfig::sc_baseline(), Topology::new(1, 1), r.mem, w);
    assert_eq!(res.aggregate.write_stall, Cycle(18 + 2));
    assert_eq!(res.context_switches, 0);
}

#[test]
fn rc_write_buffer_full_stalls_the_processor() {
    let r = rig(2);
    let remote = r.locals[1];
    // 40 writes to distinct remote lines, zero compute between them: the
    // 16-entry buffer must fill and the processor must stall.
    let ops: Vec<Op> = (0..40).map(|i| Op::Write(remote.offset(i * 16))).collect();
    let w = ScriptWorkload::new(vec![ops, vec![]]);
    let res = run(ProcConfig::rc_baseline(), Topology::new(2, 1), r.mem, w);
    assert!(
        res.breakdowns[0].write_stall > Cycle::ZERO,
        "expected buffer-full stalls, breakdown: {}",
        res.breakdowns[0]
    );
    assert_eq!(res.shared_writes, 40);
}

#[test]
fn lock_handoff_serializes_critical_sections() {
    let r = rig(2);
    let lock_addr = r.shared;
    let make = |_: usize| {
        vec![
            Op::Acquire(LockId(0)),
            Op::Compute(100),
            Op::Release(LockId(0)),
        ]
    };
    let w = ScriptWorkload::new(vec![make(0), make(1)]).with_locks(vec![lock_addr]);
    let res = run(ProcConfig::sc_baseline(), Topology::new(2, 1), r.mem, w);
    // The two 100-cycle critical sections cannot overlap.
    assert!(
        res.elapsed >= Cycle(200),
        "critical sections overlapped: {}",
        res.elapsed
    );
    // The second process waited on the lock: sync stall recorded somewhere.
    let total_sync: u64 = res.breakdowns.iter().map(|b| b.sync_stall.as_u64()).sum();
    assert!(total_sync >= 100, "sync stall {total_sync} too small");
    assert_eq!(res.lock_acquires, 2);
}

#[test]
fn rc_release_waits_for_prior_writes() {
    // A release behind a slow remote write must not become visible before
    // that write's invalidation acks complete.
    let r = rig(2);
    let remote = r.locals[1];
    let lock_addr = r.shared;
    let w = ScriptWorkload::new(vec![
        vec![
            Op::Acquire(LockId(0)),
            Op::Write(remote), // slow write (64 + acks)
            Op::Release(LockId(0)),
            Op::Compute(1),
        ],
        vec![Op::Acquire(LockId(0)), Op::Release(LockId(0))],
    ])
    .with_locks(vec![lock_addr]);
    let res = run(ProcConfig::rc_baseline(), Topology::new(2, 1), r.mem, w);
    // P1's acquire can only succeed after P0's buffered write (≥64 cycles)
    // plus the release write propagate.
    assert!(
        res.elapsed > Cycle(64),
        "release became visible before the prior write: {}",
        res.elapsed
    );
}

#[test]
fn barrier_releases_everyone_and_charges_sync() {
    let r = rig(4);
    let barrier_addr = r.shared;
    let scripts: Vec<Vec<Op>> = (0..4)
        .map(|i| {
            vec![
                Op::Compute((i as u64 + 1) * 100), // staggered arrivals
                Op::Barrier(BarrierId(0)),
                Op::Compute(10),
            ]
        })
        .collect();
    let w = ScriptWorkload::new(scripts).with_barriers(vec![barrier_addr]);
    let res = run(ProcConfig::sc_baseline(), Topology::new(4, 1), r.mem, w);
    // Everyone leaves after the slowest (400 cycles) arrival.
    assert!(res.elapsed > Cycle(400));
    // Early arrivals accumulated sync time (p0 waited ~300 cycles).
    assert!(res.breakdowns[0].sync_stall >= Cycle(250));
    assert!(res.breakdowns[3].sync_stall < res.breakdowns[0].sync_stall);
    assert_eq!(res.barrier_arrivals, 4);
}

#[test]
fn prefetch_hides_read_latency() {
    let mk = |prefetch: bool| {
        let r = rig(2);
        let remote = r.locals[1];
        let mut ops = Vec::new();
        if prefetch {
            ops.push(Op::Prefetch {
                addr: remote,
                exclusive: false,
            });
        }
        ops.push(Op::Compute(200)); // plenty of time to cover the 72 cycles
        ops.push(Op::Read(remote));
        let w = ScriptWorkload::new(vec![ops, vec![]]);
        let cfg = if prefetch {
            ProcConfig::sc_baseline().with_prefetching()
        } else {
            ProcConfig::sc_baseline()
        };
        run(cfg, Topology::new(2, 1), r.mem, w)
    };
    let without = mk(false);
    let with = mk(true);
    assert_eq!(without.breakdowns[0].read_stall, Cycle(72));
    // With an early-enough prefetch the demand read hits in the cache.
    assert!(
        with.breakdowns[0].read_stall <= Cycle(1),
        "read stall not hidden: {}",
        with.breakdowns[0]
    );
    assert!(with.breakdowns[0].prefetch_overhead > Cycle::ZERO);
    assert!(with.elapsed < without.elapsed);
}

#[test]
fn late_prefetch_is_combined_not_duplicated() {
    let r = rig(2);
    let remote = r.locals[1];
    let w = ScriptWorkload::new(vec![
        vec![
            Op::Prefetch {
                addr: remote,
                exclusive: false,
            },
            Op::Compute(10), // far less than the 72-cycle fetch
            Op::Read(remote),
        ],
        vec![],
    ]);
    let res = run(
        ProcConfig::sc_baseline().with_prefetching(),
        Topology::new(2, 1),
        r.mem,
        w,
    );
    // The read waits only for the remainder of the in-flight prefetch, and
    // only one memory fetch happened (the demand was combined and never
    // re-issued to the memory system).
    assert!(res.breakdowns[0].read_stall < Cycle(72));
    assert!(res.breakdowns[0].read_stall > Cycle::ZERO);
    assert_eq!(res.shared_reads, 1);
    assert_eq!(
        res.mem.reads, 0,
        "combined demand must not re-access memory"
    );
    assert_eq!(res.mem.prefetches, 1);
}

#[test]
fn disabled_prefetching_is_free() {
    let r = rig(2);
    let remote = r.locals[1];
    let w = ScriptWorkload::new(vec![
        vec![
            Op::Prefetch {
                addr: remote,
                exclusive: false,
            },
            Op::Compute(5),
        ],
        vec![],
    ]);
    let res = run(ProcConfig::sc_baseline(), Topology::new(2, 1), r.mem, w);
    assert_eq!(res.aggregate.prefetch_overhead, Cycle::ZERO);
    assert_eq!(res.prefetches_issued, 0);
    assert_eq!(res.mem.prefetches, 0);
}

#[test]
fn two_contexts_overlap_misses() {
    // Each context alternates compute and remote misses; a second context
    // should hide a large part of the latency.
    let mk = |contexts: usize| {
        let r = rig(2);
        let remote = r.locals[1];
        let script = |c: usize| -> Vec<Op> {
            (0..32)
                .flat_map(|i| {
                    [
                        Op::Compute(10),
                        Op::Read(remote.offset(((c * 64 + i) * 16) as u64)),
                    ]
                })
                .collect()
        };
        let scripts: Vec<Vec<Op>> = (0..contexts).map(script).collect();
        let mut all = scripts;
        for _ in 0..contexts {
            all.push(vec![]); // processor 1 idle
        }
        let w = ScriptWorkload::new(all);
        run(
            ProcConfig::sc_baseline().with_contexts(contexts, Cycle(4)),
            Topology::new(2, contexts),
            r.mem,
            w,
        )
    };
    let one = mk(1);
    let two = mk(2);
    // Two contexts do twice the work; if latency were not hidden the time
    // would double. Require clearly better than 2x.
    assert!(
        two.elapsed.as_u64() < 2 * one.elapsed.as_u64() * 9 / 10,
        "no overlap: 1ctx={} 2ctx={}",
        one.elapsed,
        two.elapsed
    );
    assert!(two.context_switches > 0);
    assert!(two.aggregate.switching > Cycle::ZERO);
}

#[test]
fn switch_overhead_is_charged_per_switch() {
    let mk = |overhead: u64| {
        let r = rig(1);
        let a = r.shared;
        let script = |c: usize| -> Vec<Op> {
            (0..16)
                .flat_map(|i| {
                    [
                        Op::Compute(5),
                        Op::Read(a.offset(((c * 32 + i) * 16) as u64)),
                    ]
                })
                .collect()
        };
        let w = ScriptWorkload::new(vec![script(0), script(1)]);
        run(
            ProcConfig::sc_baseline().with_contexts(2, Cycle(overhead)),
            Topology::new(1, 2),
            r.mem,
            w,
        )
    };
    let fast = mk(4);
    let slow = mk(16);
    assert!(slow.aggregate.switching > fast.aggregate.switching);
    assert_eq!(fast.context_switches, slow.context_switches);
    assert_eq!(fast.aggregate.switching.as_u64(), fast.context_switches * 4);
}

#[test]
fn single_context_never_switches() {
    let r = rig(1);
    let a = r.locals[0];
    let w = ScriptWorkload::new(vec![(0..10).map(|i| Op::Read(a.offset(i * 16))).collect()]);
    let res = run(ProcConfig::sc_baseline(), Topology::new(1, 1), r.mem, w);
    assert_eq!(res.context_switches, 0);
    assert_eq!(res.aggregate.switching, Cycle::ZERO);
    assert_eq!(res.aggregate.all_idle, Cycle::ZERO);
}

#[test]
fn multi_context_idle_goes_to_all_idle() {
    // One context with long misses, the other finishes immediately: after
    // that, misses leave the processor with nothing to run.
    let r = rig(2);
    let remote = r.locals[1];
    let w = ScriptWorkload::new(vec![
        (0..8).map(|i| Op::Read(remote.offset(i * 16))).collect(),
        vec![],
        vec![],
        vec![],
    ]);
    let res = run(
        ProcConfig::sc_baseline().with_contexts(2, Cycle(4)),
        Topology::new(2, 2),
        r.mem,
        w,
    );
    assert!(res.breakdowns[0].all_idle > Cycle::ZERO);
    assert_eq!(res.breakdowns[0].read_stall, Cycle::ZERO);
}

#[test]
fn deadlock_is_reported() {
    let r = rig(1);
    // Acquire a lock that is never released by anyone else... then acquire
    // a second time from another process that can never get it.
    let w = ScriptWorkload::new(vec![
        vec![Op::Acquire(LockId(0)), Op::Acquire(LockId(1))],
        vec![Op::Acquire(LockId(1)), Op::Acquire(LockId(0))],
    ])
    .with_locks(vec![r.shared, r.shared.offset(16)]);
    // Both processes on one processor is fine for a deadlock test.
    let err = Machine::new(
        ProcConfig::sc_baseline().with_contexts(2, Cycle(4)),
        Topology::new(1, 2),
        r.mem,
        w,
    )
    .run()
    .expect_err("must deadlock");
    match err {
        RunError::Deadlock { stuck } => assert!(!stuck.is_empty()),
        other => panic!("expected deadlock, got {other}"),
    }
}

#[test]
fn runaway_workload_hits_cycle_budget() {
    struct Forever;
    impl dashlat_cpu::ops::Workload for Forever {
        fn processes(&self) -> usize {
            1
        }
        fn next_op(&mut self, _pid: dashlat_cpu::ops::ProcId) -> Op {
            Op::Compute(1000)
        }
        fn sync_config(&self) -> dashlat_cpu::ops::SyncConfig {
            dashlat_cpu::ops::SyncConfig::default()
        }
    }
    let r = rig(1);
    let err = Machine::new(
        ProcConfig::sc_baseline(),
        Topology::new(1, 1),
        r.mem,
        Forever,
    )
    .with_max_cycles(Cycle(10_000))
    .run()
    .expect_err("must exceed budget");
    assert!(matches!(err, RunError::CycleBudgetExceeded { .. }));
}

#[test]
fn per_node_placement_matters() {
    // Reading your own node's memory (26) vs another node's (72).
    let r = rig(2);
    let local = r.locals[0];
    let w = ScriptWorkload::new(vec![vec![Op::Read(local)], vec![Op::Read(local)]]);
    let res = run(ProcConfig::sc_baseline(), Topology::new(2, 1), r.mem, w);
    assert_eq!(res.breakdowns[0].read_stall, Cycle(26));
    assert_eq!(res.breakdowns[1].read_stall, Cycle(72));
}

#[test]
fn uncached_machine_pays_full_latency_repeatedly() {
    let mut b = AddressSpaceBuilder::new(1);
    let seg = b.alloc("x", 4096, Placement::Local(NodeId(0)));
    let mut cfg = MemConfig::uncached(1);
    cfg.contention = false;
    let mem = MemorySystem::new(cfg, b.build());
    let w = ScriptWorkload::new(vec![vec![
        Op::Read(seg.base()),
        Op::Read(seg.base()),
        Op::Write(seg.base()),
    ]]);
    let res = run(ProcConfig::sc_baseline(), Topology::new(1, 1), mem, w);
    // 20 + 20 + 12, nothing cached.
    assert_eq!(res.aggregate.read_stall, Cycle(40));
    assert_eq!(res.aggregate.write_stall, Cycle(12));
}

#[test]
fn breakdown_totals_are_consistent_with_elapsed() {
    // With one processor, the breakdown must exactly tile the elapsed time.
    let r = rig(1);
    let a = r.locals[0];
    let ops: Vec<Op> = (0..20)
        .flat_map(|i| {
            [
                Op::Compute(7),
                Op::Read(a.offset((i % 8) * 16)),
                Op::Write(a.offset((i % 4) * 16)),
            ]
        })
        .collect();
    let w = ScriptWorkload::new(vec![ops]);
    let res = run(ProcConfig::sc_baseline(), Topology::new(1, 1), r.mem, w);
    assert_eq!(res.aggregate.total(), res.elapsed);
}

#[test]
fn run_lengths_are_recorded() {
    let r = rig(2);
    let remote = r.locals[1];
    let ops: Vec<Op> = (0..10)
        .flat_map(|i| [Op::Compute(11), Op::Read(remote.offset(i * 16))])
        .collect();
    let w = ScriptWorkload::new(vec![ops, vec![]]);
    let res = run(ProcConfig::sc_baseline(), Topology::new(2, 1), r.mem, w);
    assert!(res.run_lengths.count() >= 10);
    let median = res.run_lengths.approx_median().expect("non-empty");
    assert!((8..=16).contains(&median.as_u64()), "median {median}");
}

#[test]
fn read_lookahead_hides_part_of_the_miss() {
    // The §4.1 what-if: a perfect 40-cycle lookahead window cuts every
    // 72-cycle remote miss to an effective 32-cycle stall.
    let mk = |lookahead: u64| {
        let r = rig(2);
        let remote = r.locals[1];
        let mut cfg = ProcConfig::sc_baseline();
        cfg.read_lookahead = Cycle(lookahead);
        let ops: Vec<Op> = (0..10)
            .flat_map(|i| [Op::Compute(5), Op::Read(remote.offset(i * 16))])
            .collect();
        let w = ScriptWorkload::new(vec![ops, vec![]]);
        run(cfg, Topology::new(2, 1), r.mem, w)
    };
    let blocking = mk(0);
    let oo40 = mk(40);
    let oo200 = mk(200);
    assert_eq!(blocking.breakdowns[0].read_stall, Cycle(10 * 72));
    assert_eq!(oo40.breakdowns[0].read_stall, Cycle(10 * 32));
    // A window beyond the latency leaves the 1-cycle issue slot.
    assert!(oo200.breakdowns[0].read_stall <= Cycle(10));
    assert!(oo200.elapsed < oo40.elapsed);
    assert!(oo40.elapsed < blocking.elapsed);
}
