//! Property-based fuzzing of the whole machine: arbitrary (but
//! deadlock-free) scripted workloads must terminate, account every cycle,
//! and behave deterministically under every consistency model and context
//! count.

use dashlat_cpu::config::{Consistency, ProcConfig};
use dashlat_cpu::machine::Machine;
use dashlat_cpu::ops::{BarrierId, LockId, Op, Topology};
use dashlat_cpu::script::ScriptWorkload;
use dashlat_mem::addr::Addr;
use dashlat_mem::layout::{AddressSpaceBuilder, Placement};
use dashlat_mem::system::{MemConfig, MemorySystem};
use dashlat_sim::Cycle;
use proptest::prelude::*;

/// A compact op encoding the strategy generates; locks are always used in
/// balanced acquire/release bracket pairs so no deadlock is possible
/// (single lock, non-nested).
#[derive(Debug, Clone)]
enum GenOp {
    Compute(u64),
    Read(u64),
    Write(u64),
    Prefetch(u64, bool),
    CriticalSection(u64),
    Barrier,
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        (1u64..40).prop_map(GenOp::Compute),
        (0u64..256).prop_map(GenOp::Read),
        (0u64..256).prop_map(GenOp::Write),
        ((0u64..256), any::<bool>()).prop_map(|(l, e)| GenOp::Prefetch(l, e)),
        (1u64..30).prop_map(GenOp::CriticalSection),
        Just(GenOp::Barrier),
    ]
}

/// Expands the generated ops into real scripts. Barriers must be emitted
/// by *every* process the same number of times, so barrier counts are
/// equalized across processes.
fn build_scripts(raw: Vec<Vec<GenOp>>, region: Addr) -> Vec<Vec<Op>> {
    let max_barriers = raw
        .iter()
        .map(|ops| ops.iter().filter(|o| matches!(o, GenOp::Barrier)).count())
        .max()
        .unwrap_or(0);
    raw.into_iter()
        .map(|ops| {
            let mut script = Vec::new();
            let mut barriers = 0;
            for op in ops {
                match op {
                    GenOp::Compute(n) => script.push(Op::Compute(n)),
                    GenOp::Read(l) => script.push(Op::Read(region.offset(l * 16))),
                    GenOp::Write(l) => script.push(Op::Write(region.offset(l * 16))),
                    GenOp::Prefetch(l, e) => script.push(Op::Prefetch {
                        addr: region.offset(l * 16),
                        exclusive: e,
                    }),
                    GenOp::CriticalSection(n) => {
                        script.push(Op::Acquire(LockId(0)));
                        script.push(Op::Compute(n));
                        script.push(Op::Release(LockId(0)));
                    }
                    GenOp::Barrier => {
                        script.push(Op::Barrier(BarrierId(0)));
                        barriers += 1;
                    }
                }
            }
            for _ in barriers..max_barriers {
                script.push(Op::Barrier(BarrierId(0)));
            }
            script
        })
        .collect()
}

fn run_cfg(
    scripts: Vec<Vec<Op>>,
    processors: usize,
    contexts: usize,
    model: Consistency,
    prefetch: bool,
) -> dashlat_cpu::machine::RunResult {
    let mut b = AddressSpaceBuilder::new(processors);
    let _region = b.alloc("region", 256 * 16, Placement::RoundRobin);
    let lock = b.alloc("lock", 16, Placement::RoundRobin);
    let barrier = b.alloc("barrier", 16, Placement::RoundRobin);
    let mem = MemorySystem::new(MemConfig::dash_scaled(processors), b.build());
    let w = ScriptWorkload::new(scripts)
        .with_locks(vec![lock.base()])
        .with_barriers(vec![barrier.base()]);
    let mut cfg = match model {
        Consistency::Sc => ProcConfig::sc_baseline(),
        Consistency::Pc => ProcConfig::pc_baseline(),
        Consistency::Wc => ProcConfig::wc_baseline(),
        Consistency::Rc => ProcConfig::rc_baseline(),
    };
    cfg.prefetching = prefetch;
    cfg = cfg.with_contexts(contexts, Cycle(4));
    Machine::new(cfg, Topology::new(processors, contexts), mem, w)
        .with_max_cycles(Cycle(50_000_000))
        .run()
        .expect("generated workload must terminate")
    // region is rebuilt per call; address identical across calls because
    // the allocation order is identical.
}

/// Region base is deterministic: first allocation in a fresh space.
fn region_base(processors: usize) -> Addr {
    let mut b = AddressSpaceBuilder::new(processors);
    b.alloc("region", 256 * 16, Placement::RoundRobin).base()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Single-context machines account every cycle: per-processor
    /// breakdown totals equal the wall clock exactly.
    #[test]
    fn single_context_accounting_is_exact(
        raw in proptest::collection::vec(proptest::collection::vec(gen_op(), 0..40), 1..4),
    ) {
        let processors = raw.len();
        let scripts = build_scripts(raw, region_base(processors));
        for model in [Consistency::Sc, Consistency::Rc] {
            let res = run_cfg(scripts.clone(), processors, 1, model, true);
            for (i, b) in res.breakdowns.iter().enumerate() {
                prop_assert_eq!(
                    b.total(), res.elapsed,
                    "{:?}: processor {} does not tile elapsed", model, i
                );
            }
        }
    }

    /// Runs are deterministic for every consistency model.
    #[test]
    fn all_models_are_deterministic(
        raw in proptest::collection::vec(proptest::collection::vec(gen_op(), 0..30), 2..5),
    ) {
        let processors = raw.len();
        let scripts = build_scripts(raw, region_base(processors));
        for model in [Consistency::Sc, Consistency::Pc, Consistency::Wc, Consistency::Rc] {
            let a = run_cfg(scripts.clone(), processors, 1, model, false);
            let b = run_cfg(scripts.clone(), processors, 1, model, false);
            prop_assert_eq!(a.elapsed, b.elapsed);
            prop_assert_eq!(a.aggregate, b.aggregate);
        }
    }

    /// Relaxed models never stall on data writes, and SC is never faster
    /// than RC by more than the sync-interleaving wiggle.
    #[test]
    fn relaxed_models_never_record_write_stall(
        raw in proptest::collection::vec(proptest::collection::vec(gen_op(), 0..40), 1..4),
    ) {
        let processors = raw.len();
        let scripts = build_scripts(raw, region_base(processors));
        for model in [Consistency::Pc, Consistency::Wc, Consistency::Rc] {
            let res = run_cfg(scripts.clone(), processors, 1, model, false);
            prop_assert_eq!(res.aggregate.write_stall, Cycle::ZERO, "{:?}", model);
        }
    }

    /// Multiple contexts never lose work: the same scripts spread over 2
    /// contexts per processor still terminate with identical op counts.
    #[test]
    fn contexts_preserve_op_counts(
        raw in proptest::collection::vec(proptest::collection::vec(gen_op(), 0..30), 2..5),
    ) {
        // Pad to an even process count.
        let mut raw = raw;
        if raw.len() % 2 == 1 {
            raw.push(Vec::new());
        }
        let processes = raw.len();
        let scripts = build_scripts(raw, region_base(processes / 2));
        let one = run_cfg(scripts.clone(), processes, 1, Consistency::Sc, false);
        let two = run_cfg(scripts.clone(), processes / 2, 2, Consistency::Sc, false);
        prop_assert_eq!(one.shared_reads, two.shared_reads);
        prop_assert_eq!(one.shared_writes, two.shared_writes);
        prop_assert_eq!(one.lock_acquires, two.lock_acquires);
        prop_assert_eq!(one.barrier_arrivals, two.barrier_arrivals);
    }
}
