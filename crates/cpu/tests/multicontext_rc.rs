//! Interaction tests: multiple contexts × consistency models × buffers.

use dashlat_cpu::config::ProcConfig;
use dashlat_cpu::machine::{Machine, RunResult};
use dashlat_cpu::ops::{LockId, Op, Topology};
use dashlat_cpu::script::ScriptWorkload;
use dashlat_mem::addr::Addr;
use dashlat_mem::layout::{AddressSpaceBuilder, Placement};
use dashlat_mem::system::{MemConfig, MemorySystem};
use dashlat_sim::Cycle;

struct Rig {
    locals: Vec<Addr>,
    shared: Addr,
    mem: MemorySystem,
}

fn rig(nodes: usize) -> Rig {
    let mut b = AddressSpaceBuilder::new(nodes);
    let locals = b
        .alloc_per_node("local", 4096)
        .iter()
        .map(dashlat_mem::Segment::base)
        .collect();
    let shared = b
        .alloc("shared", 4096 * nodes as u64, Placement::RoundRobin)
        .base();
    let mut cfg = MemConfig::dash_scaled(nodes);
    cfg.contention = false;
    Rig {
        locals,
        shared,
        mem: MemorySystem::new(cfg, b.build()),
    }
}

fn run(cfg: ProcConfig, topo: Topology, mem: MemorySystem, w: ScriptWorkload) -> RunResult {
    Machine::new(cfg, topo, mem, w)
        .with_max_cycles(Cycle(100_000_000))
        .run()
        .expect("script terminates")
}

#[test]
fn rc_with_two_contexts_hides_both_read_and_write_latency() {
    // Context A writes remote lines (RC buffers them); context B reads
    // remote lines (switch-on-miss hides them behind A's issue slots).
    let r = rig(2);
    let remote = r.locals[1];
    let writer: Vec<Op> = (0..16).map(|i| Op::Write(remote.offset(i * 16))).collect();
    let reader: Vec<Op> = (0..16)
        .flat_map(|i| [Op::Compute(5), Op::Read(remote.offset((256 + i) * 16))])
        .collect();
    let w = ScriptWorkload::new(vec![writer, reader, vec![], vec![]]);
    let res = run(
        ProcConfig::rc_baseline().with_contexts(2, Cycle(4)),
        Topology::new(2, 2),
        r.mem,
        w,
    );
    assert_eq!(res.breakdowns[0].write_stall, Cycle::ZERO);
    // All idle only once both contexts are simultaneously blocked.
    assert!(res.aggregate.switching > Cycle::ZERO);
    assert_eq!(
        res.aggregate.total(),
        res.elapsed + res.breakdowns[1].total()
    );
}

#[test]
fn context_switch_happens_on_secondary_miss_not_primary_hit() {
    let r = rig(1);
    let a = r.locals[0];
    // Context 0: one miss (fills the line), then pure hits.
    // Context 1: pure compute.
    let w = ScriptWorkload::new(vec![
        vec![Op::Read(a), Op::Read(a), Op::Read(a), Op::Read(a)],
        vec![Op::Compute(200)],
    ]);
    let res = run(
        ProcConfig::sc_baseline().with_contexts(2, Cycle(4)),
        Topology::new(1, 2),
        r.mem,
        w,
    );
    // Exactly two switches: out on the first miss, back when ctx1 is done
    // or blocked... ctx1 never blocks, so after its compute finishes ctx0
    // resumes. The primary hits cause no further switching.
    assert!(
        res.context_switches <= 2,
        "switched {} times",
        res.context_switches
    );
}

#[test]
fn write_buffer_drains_across_context_switches() {
    // A release issued by context 0 must still unlock even while context 1
    // monopolizes the processor afterwards.
    let r = rig(2);
    let lock = r.shared;
    let remote = r.locals[1];
    let w = ScriptWorkload::new(vec![
        vec![
            Op::Acquire(LockId(0)),
            Op::Write(remote),
            Op::Release(LockId(0)),
            Op::Compute(1),
        ],
        vec![Op::Compute(4000)],
        // The waiter on processor 1.
        vec![Op::Acquire(LockId(0)), Op::Release(LockId(0))],
        vec![],
    ])
    .with_locks(vec![lock]);
    let res = run(
        ProcConfig::rc_baseline().with_contexts(2, Cycle(4)),
        Topology::new(2, 2),
        r.mem,
        w,
    );
    assert_eq!(res.lock_acquires, 2);
    // Everything terminated: the release retired despite the busy sibling
    // context (the machine would report Deadlock otherwise).
    assert!(res.elapsed > Cycle::ZERO);
}

#[test]
fn cross_context_demand_combining() {
    // Two contexts of the same processor read the same remote line at the
    // same time: the second must combine with the first's in-flight fetch
    // (one memory access, both complete).
    let r = rig(2);
    let remote = r.locals[1];
    let w = ScriptWorkload::new(vec![
        vec![Op::Read(remote)],
        vec![Op::Read(remote)],
        vec![],
        vec![],
    ]);
    let res = run(
        ProcConfig::sc_baseline().with_contexts(2, Cycle(4)),
        Topology::new(2, 2),
        r.mem,
        w,
    );
    assert_eq!(res.shared_reads, 2);
    assert_eq!(res.mem.reads, 1, "second read should have combined");
}

#[test]
fn four_contexts_round_robin_fairly() {
    // Four contexts each with identical miss-compute loops: all must
    // finish, and the elapsed time must beat 4x the single-context time.
    let mk = |contexts: usize| {
        let r = rig(2);
        let remote = r.locals[1];
        let script = |c: usize| -> Vec<Op> {
            (0..24)
                .flat_map(|i| {
                    [
                        Op::Compute(8),
                        Op::Read(remote.offset(((c * 64 + i) * 16) as u64)),
                    ]
                })
                .collect()
        };
        let mut scripts: Vec<Vec<Op>> = (0..contexts).map(script).collect();
        for _ in 0..contexts {
            scripts.push(vec![]);
        }
        let w = ScriptWorkload::new(scripts);
        run(
            ProcConfig::sc_baseline().with_contexts(contexts, Cycle(4)),
            Topology::new(2, contexts),
            r.mem,
            w,
        )
    };
    let one = mk(1);
    let four = mk(4);
    assert!(
        four.elapsed.as_u64() < 4 * one.elapsed.as_u64() * 2 / 3,
        "4 contexts did not overlap: {} vs 4x{}",
        four.elapsed,
        one.elapsed
    );
}

#[test]
fn sixteen_cycle_switches_can_make_contexts_unprofitable() {
    // Very short run lengths + expensive switches: the paper's LU-style
    // pathology where 16-cycle switch overhead dominates.
    let mk = |contexts: usize, sw: u64| {
        let r = rig(1);
        let a = r.shared;
        let script = |c: usize| -> Vec<Op> {
            (0..64)
                .flat_map(|i| {
                    [
                        Op::Compute(2), // tiny run lengths
                        Op::Read(a.offset(((c * 128 + i) * 16) as u64)),
                    ]
                })
                .collect()
        };
        let w = ScriptWorkload::new((0..contexts).map(script).collect());
        run(
            ProcConfig::sc_baseline().with_contexts(contexts, Cycle(sw)),
            Topology::new(1, contexts),
            r.mem,
            w,
        )
    };
    let two_fast = mk(2, 4);
    let two_slow = mk(2, 16);
    // With 16-cycle switches, the switching section is a large fraction.
    let slow_frac =
        two_slow.aggregate.switching.as_u64() as f64 / two_slow.aggregate.total().as_u64() as f64;
    assert!(slow_frac > 0.15, "switch share only {slow_frac:.2}");
    assert!(two_fast.elapsed < two_slow.elapsed);
}

#[test]
fn release_consistency_lengthens_run_lengths() {
    // §6.2: removing write stalls raises the median run length between
    // long-latency operations (11 -> 22 cycles for MP3D).
    let mk = |cfg: ProcConfig| {
        let r = rig(2);
        let remote = r.locals[1];
        let ops: Vec<Op> = (0..64)
            .flat_map(|i| {
                [
                    Op::Compute(6),
                    Op::Write(remote.offset((i * 16) % 2048)),
                    Op::Compute(5),
                    Op::Read(remote.offset((i + 200) * 16)),
                ]
            })
            .collect();
        let w = ScriptWorkload::new(vec![ops, vec![]]);
        run(cfg, Topology::new(2, 1), r.mem, w)
    };
    let sc = mk(ProcConfig::sc_baseline());
    let rc = mk(ProcConfig::rc_baseline());
    let sc_med = sc.run_lengths.approx_median().expect("runs").as_u64();
    let rc_med = rc.run_lengths.approx_median().expect("runs").as_u64();
    assert!(
        rc_med > sc_med,
        "RC median run length {rc_med} not above SC {sc_med}"
    );
}
