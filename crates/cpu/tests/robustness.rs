//! Robustness-layer integration tests: watchdog diagnostics under a
//! crafted deadlock, and determinism of seeded fault injection.

use dashlat_cpu::config::ProcConfig;
use dashlat_cpu::machine::{Machine, RunError, RunResult};
use dashlat_cpu::ops::{LockId, Op, Topology};
use dashlat_cpu::script::ScriptWorkload;
use dashlat_mem::addr::Addr;
use dashlat_mem::layout::{AddressSpaceBuilder, Placement};
use dashlat_mem::system::{MemConfig, MemorySystem};
use dashlat_sim::fault::FaultPlan;
use dashlat_sim::Cycle;

fn mem(nodes: usize, faults: Option<FaultPlan>) -> (Addr, MemorySystem) {
    let mut b = AddressSpaceBuilder::new(nodes);
    let shared = b.alloc("shared", 64 * 1024, Placement::RoundRobin).base();
    let mut cfg = MemConfig::dash_scaled(nodes);
    cfg.faults = faults;
    (shared, MemorySystem::new(cfg, b.build()))
}

#[test]
fn deadlock_diagnostics_name_both_processors_and_the_contended_lock() {
    // Classic lock-order inversion on two processors: P0 takes L0 then
    // wants L1; P1 takes L1 then wants L0.
    let (shared, mem) = mem(2, None);
    let lock0 = shared;
    let lock1 = shared.offset(64);
    let w = ScriptWorkload::new(vec![
        vec![
            Op::Acquire(LockId(0)),
            Op::Compute(50),
            Op::Acquire(LockId(1)),
        ],
        vec![
            Op::Acquire(LockId(1)),
            Op::Compute(50),
            Op::Acquire(LockId(0)),
        ],
    ])
    .with_locks(vec![lock0, lock1]);
    let err = Machine::new(ProcConfig::sc_baseline(), Topology::new(2, 1), mem, w)
        .run()
        .expect_err("must deadlock");
    let stuck = match &err {
        RunError::Deadlock { stuck } => stuck,
        other => panic!("expected deadlock, got {other}"),
    };
    // Both processes appear, each blocked on an acquire naming the lock's
    // backing address and the process holding it.
    assert_eq!(stuck.len(), 2);
    let msg = err.to_string();
    assert!(msg.contains("P0"), "missing P0 in {msg:?}");
    assert!(msg.contains("P1"), "missing P1 in {msg:?}");
    assert!(
        msg.contains(&format!("{:#x}", lock0.0)) && msg.contains(&format!("{:#x}", lock1.0)),
        "missing contended lock addresses in {msg:?}"
    );
    assert!(msg.contains("held by"), "missing holder in {msg:?}");
}

fn faulted_run(plan: FaultPlan) -> RunResult {
    let (shared, mem) = mem(4, Some(plan));
    // Mixed cross-node read/write/sync traffic so NACKs, packet delays and
    // buffer-full events all get chances to fire.
    let scripts: Vec<Vec<Op>> = (0..4u64)
        .map(|p| {
            let mut ops = Vec::new();
            for i in 0..200u64 {
                let a = shared.offset(((p * 977 + i * 313) % 2000) * 16);
                if i % 3 == 0 {
                    ops.push(Op::Write(a));
                } else {
                    ops.push(Op::Read(a));
                }
                if i % 17 == 0 {
                    ops.push(Op::Acquire(LockId(0)));
                    ops.push(Op::Compute(5));
                    ops.push(Op::Release(LockId(0)));
                }
            }
            ops
        })
        .collect();
    // Lock line above the data region (data stays below 32000 bytes).
    let w = ScriptWorkload::new(scripts).with_locks(vec![shared.offset(60 * 1024)]);
    Machine::new(
        ProcConfig::rc_baseline()
            .with_faults(plan)
            .with_invariant_checks(true),
        Topology::new(4, 1),
        mem,
        w,
    )
    .with_max_cycles(Cycle(500_000_000))
    .run()
    .expect("faulted script terminates")
}

#[test]
fn same_fault_seed_gives_identical_results() {
    let plan = FaultPlan::heavy(0xFEED);
    let a = faulted_run(plan);
    let b = faulted_run(plan);
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.mem.faults, b.mem.faults);
    assert!(
        !a.mem.faults.is_empty(),
        "heavy plan injected nothing: {:?}",
        a.mem.faults
    );
    // The whole-machine injection fired on both sides of the wiring: the
    // memory system (NACKs/delays) and the processor buffers (transient
    // fulls are only possible under RC where the write buffer is active).
    assert!(a.mem.faults.nacks > 0, "no NACKs: {:?}", a.mem.faults);
}

#[test]
fn different_fault_seeds_perturb_differently() {
    let a = faulted_run(FaultPlan::heavy(1));
    let b = faulted_run(FaultPlan::heavy(2));
    // Not a hard guarantee for arbitrary seeds, but these two diverge; a
    // regression that ignores the seed would make them equal.
    assert!(
        a.elapsed != b.elapsed || a.mem.faults != b.mem.faults,
        "seeds 1 and 2 produced identical runs"
    );
}

#[test]
fn faults_slow_the_run_down_and_invariants_hold() {
    let clean = faulted_run(FaultPlan::default());
    let faulted = faulted_run(FaultPlan::heavy(7));
    assert!(clean.mem.faults.is_empty());
    assert!(
        faulted.elapsed >= clean.elapsed,
        "faults sped the run up: {} < {}",
        faulted.elapsed,
        clean.elapsed
    );
}
