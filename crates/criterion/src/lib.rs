//! Vendored, minimal stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! implements the slice of the criterion API the workspace's benches use:
//! `Criterion`, `bench_function`, `benchmark_group` (with `sample_size` and
//! `finish`), `Bencher::{iter, iter_batched}`, `BatchSize`,
//! `criterion_group!` and `criterion_main!`.
//!
//! Measurement is intentionally simple — a fixed warm-up iteration followed
//! by `sample_size` timed iterations, reporting min/mean — which is enough
//! to spot order-of-magnitude regressions while staying dependency-free.

use std::time::{Duration, Instant};

/// How batched inputs are grouped. Only a hint; the shim runs one input per
/// measured iteration regardless.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Passed to benchmark closures to drive timed iterations.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            timings: Vec::with_capacity(samples),
        }
    }

    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up iteration, untimed.
        std::hint::black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.timings.push(start.elapsed());
        }
    }

    /// Times `routine` over fresh inputs built by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.timings.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.timings.is_empty() {
            println!("{name:<48} (no samples)");
            return;
        }
        let min = self.timings.iter().min().unwrap();
        let total: Duration = self.timings.iter().sum();
        let mean = total / self.timings.len() as u32;
        println!(
            "{name:<48} min {:>12?}  mean {:>12?}  ({} samples)",
            min,
            mean,
            self.timings.len()
        );
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(name);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            prefix: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    prefix: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.prefix, name));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collects benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
