//! Addresses, cache lines and pages.
//!
//! The simulated machine uses 16-byte cache lines (both levels) and 4 KB
//! pages for the round-robin page placement policy. Newtypes keep byte
//! addresses, line numbers and page numbers from being mixed up.

use std::fmt;

/// Bytes per cache line in the DASH-like machine (paper §2.1).
pub const LINE_BYTES: u64 = 16;

/// Bytes per page for the page-placement policy.
pub const PAGE_BYTES: u64 = 4096;

/// A byte address in the simulated shared address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The cache line containing this address.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_BYTES)
    }

    /// The page containing this address.
    #[inline]
    pub fn page(self) -> PageId {
        PageId(self.0 / PAGE_BYTES)
    }

    /// Byte offset within the cache line.
    #[inline]
    pub fn line_offset(self) -> u64 {
        self.0 % LINE_BYTES
    }

    /// True when this address is the first byte of its cache line.
    #[inline]
    pub fn is_line_aligned(self) -> bool {
        self.line_offset() == 0
    }

    /// Address advanced by `bytes`.
    #[inline]
    pub fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

/// A cache-line number (byte address divided by [`LINE_BYTES`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// The line containing `addr` — the stable line-address export used by
    /// analysis passes to key per-line state (equivalent to
    /// [`Addr::line`], provided so line-keyed code reads left-to-right).
    #[inline]
    pub fn containing(addr: Addr) -> LineAddr {
        addr.line()
    }

    /// The raw line number (byte address divided by [`LINE_BYTES`]).
    #[inline]
    pub fn index(self) -> u64 {
        self.0
    }

    /// First byte address of the line.
    #[inline]
    pub fn base(self) -> Addr {
        Addr(self.0 * LINE_BYTES)
    }

    /// True when `addr` falls on this line.
    #[inline]
    pub fn covers(self, addr: Addr) -> bool {
        addr.line() == self
    }

    /// The page containing this line.
    #[inline]
    pub fn page(self) -> PageId {
        PageId(self.0 * LINE_BYTES / PAGE_BYTES)
    }

    /// The next line.
    #[inline]
    pub fn next(self) -> LineAddr {
        LineAddr(self.0 + 1)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line#{}", self.0)
    }
}

/// A page number (byte address divided by [`PAGE_BYTES`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageId(pub u64);

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page#{}", self.0)
    }
}

/// Identifier of a processing node (processor + local memory + directory).
/// The paper simulates a 16-node machine; the model supports up to 64 so the
/// sharer set fits a `u64` bitmask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Maximum number of nodes supported by the full-map directory bitmask.
    pub const MAX_NODES: usize = 64;
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A set of nodes, stored as a bitmask (full-map directory entry).
///
/// # Example
///
/// ```
/// use dashlat_mem::addr::{NodeId, NodeSet};
///
/// let mut s = NodeSet::default();
/// s.insert(NodeId(3));
/// s.insert(NodeId(7));
/// assert!(s.contains(NodeId(3)));
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![NodeId(3), NodeId(7)]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct NodeSet(u64);

impl NodeSet {
    /// The empty set.
    pub const EMPTY: NodeSet = NodeSet(0);

    /// A set containing a single node.
    ///
    /// # Panics
    ///
    /// Panics if `node.0 >= NodeId::MAX_NODES`.
    #[inline]
    pub fn singleton(node: NodeId) -> NodeSet {
        let mut s = NodeSet::EMPTY;
        s.insert(node);
        s
    }

    /// Inserts a node.
    ///
    /// # Panics
    ///
    /// Panics if `node.0 >= NodeId::MAX_NODES`.
    #[inline]
    pub fn insert(&mut self, node: NodeId) {
        assert!(node.0 < NodeId::MAX_NODES, "node id out of range");
        self.0 |= 1 << node.0;
    }

    /// Removes a node; returns whether it was present.
    #[inline]
    pub fn remove(&mut self, node: NodeId) -> bool {
        let bit = 1u64 << node.0;
        let present = self.0 & bit != 0;
        self.0 &= !bit;
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(self, node: NodeId) -> bool {
        node.0 < NodeId::MAX_NODES && self.0 & (1 << node.0) != 0
    }

    /// Number of members.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True when no node is in the set.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates members in increasing node order.
    ///
    /// Pops one set bit per step (`trailing_zeros` + clear-lowest-bit), so
    /// iterating a sparse sharer set costs O(members), not O(64) — this
    /// runs on every invalidation fan-out in the directory protocol.
    #[inline]
    pub fn iter(self) -> impl Iterator<Item = NodeId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                return None;
            }
            let i = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            Some(NodeId(i))
        })
    }

    /// Set difference: members of `self` not in `other`.
    #[inline]
    pub fn without(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 & !other.0)
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        let mut s = NodeSet::EMPTY;
        for n in iter {
            s.insert(n);
        }
        s
    }
}

impl fmt::Display for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, n) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", n.0)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_page_math() {
        let a = Addr(4096 + 17);
        assert_eq!(a.line(), LineAddr((4096 + 17) / 16));
        assert_eq!(a.page(), PageId(1));
        assert_eq!(a.line_offset(), 1);
        assert_eq!(a.line().base(), Addr(4096 + 16));
        assert_eq!(a.offset(15).line(), a.line().next());
    }

    #[test]
    fn stable_line_exports() {
        let a = Addr(0x123);
        assert_eq!(LineAddr::containing(a), a.line());
        assert_eq!(a.line().index(), 0x123 / 16);
        assert!(a.line().covers(a));
        assert!(a.line().covers(a.line().base()));
        assert!(!a.line().covers(a.offset(LINE_BYTES)));
        assert!(Addr(32).is_line_aligned());
        assert!(!Addr(33).is_line_aligned());
    }

    #[test]
    fn line_page_relation() {
        // 256 lines per 4KB page with 16-byte lines.
        assert_eq!(LineAddr(255).page(), PageId(0));
        assert_eq!(LineAddr(256).page(), PageId(1));
    }

    #[test]
    fn nodeset_operations() {
        let mut s = NodeSet::default();
        assert!(s.is_empty());
        s.insert(NodeId(0));
        s.insert(NodeId(15));
        s.insert(NodeId(15)); // idempotent
        assert_eq!(s.len(), 2);
        assert!(s.contains(NodeId(0)));
        assert!(!s.contains(NodeId(1)));
        assert!(s.remove(NodeId(0)));
        assert!(!s.remove(NodeId(0)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn nodeset_without() {
        let a: NodeSet = [NodeId(1), NodeId(2), NodeId(3)].into_iter().collect();
        let b = NodeSet::singleton(NodeId(2));
        let d = a.without(b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![NodeId(1), NodeId(3)]);
    }

    #[test]
    fn nodeset_display() {
        let s: NodeSet = [NodeId(2), NodeId(5)].into_iter().collect();
        assert_eq!(s.to_string(), "{2,5}");
        assert_eq!(NodeSet::EMPTY.to_string(), "{}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn nodeset_rejects_large_ids() {
        let mut s = NodeSet::default();
        s.insert(NodeId(64));
    }
}
