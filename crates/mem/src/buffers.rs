//! Write buffer and prefetch buffer.
//!
//! The processor environment (paper Figure 1) interposes a 16-entry write
//! buffer between the write-through primary cache and the write-back
//! secondary cache; reads may bypass the writes queued there when the
//! consistency model permits. Prefetches are issued to a separate 16-entry
//! prefetch buffer — identical to the write buffer but carrying only
//! prefetch requests — so that prefetches are not delayed behind writes
//! (§5.1).
//!
//! These types are pure bounded FIFOs plus the entry bookkeeping; the
//! *timing* of retirement (one entry in service at a time, service time from
//! the memory system) is driven by the processor model in `dashlat-cpu`.

use std::collections::VecDeque;

use dashlat_sim::Cycle;

use crate::addr::Addr;

/// Capacity of both buffers in the paper's machine.
pub const BUFFER_ENTRIES: usize = 16;

/// What a write-buffer entry represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteKind {
    /// An ordinary data write.
    Data,
    /// A release (e.g. an unlock): under RC it may not retire until all
    /// previously issued writes have completed, including their
    /// invalidation acknowledgements.
    Release,
}

/// A write waiting in the write buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingWrite {
    /// Target address.
    pub addr: Addr,
    /// When the processor issued it (for occupancy statistics).
    pub enqueued_at: Cycle,
    /// Data write or release.
    pub kind: WriteKind,
}

/// The 16-entry write buffer.
///
/// # Example
///
/// ```
/// use dashlat_mem::addr::Addr;
/// use dashlat_mem::buffers::{PendingWrite, WriteBuffer, WriteKind};
/// use dashlat_sim::Cycle;
///
/// let mut wb = WriteBuffer::new(2);
/// assert!(wb.try_push(PendingWrite { addr: Addr(0), enqueued_at: Cycle(0), kind: WriteKind::Data }));
/// assert!(wb.try_push(PendingWrite { addr: Addr(16), enqueued_at: Cycle(1), kind: WriteKind::Data }));
/// assert!(!wb.try_push(PendingWrite { addr: Addr(32), enqueued_at: Cycle(2), kind: WriteKind::Data }));
/// assert_eq!(wb.pop().map(|w| w.addr), Some(Addr(0)));
/// ```
#[derive(Debug, Clone)]
pub struct WriteBuffer {
    entries: VecDeque<PendingWrite>,
    capacity: usize,
    high_water: usize,
    total_pushed: u64,
    /// Enqueue sequence number of each queued entry, in lockstep with
    /// `entries` — the ground truth for W→W program order.
    seqs: VecDeque<u64>,
    next_seq: u64,
    serviced_high: Option<u64>,
    fifo_violation: Option<String>,
}

impl WriteBuffer {
    /// Creates a buffer with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "write buffer needs at least one entry");
        WriteBuffer {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            high_water: 0,
            total_pushed: 0,
            seqs: VecDeque::with_capacity(capacity),
            next_seq: 0,
            serviced_high: None,
            fifo_violation: None,
        }
    }

    /// Enqueues a write; returns false (and does nothing) when full.
    pub fn try_push(&mut self, w: PendingWrite) -> bool {
        if self.entries.len() >= self.capacity {
            return false;
        }
        self.entries.push_back(w);
        self.seqs.push_back(self.next_seq);
        self.next_seq += 1;
        self.high_water = self.high_water.max(self.entries.len());
        self.total_pushed += 1;
        true
    }

    /// Records that the entry with enqueue sequence `seq` left the
    /// buffer, flagging a W→W FIFO violation if a *later* write was
    /// already serviced before it.
    fn note_serviced(&mut self, seq: u64, addr: Addr) {
        if let Some(high) = self.serviced_high {
            if seq < high && self.fifo_violation.is_none() {
                self.fifo_violation = Some(format!(
                    "write buffer serviced write #{seq} (addr {:#x}) after \
                     newer write #{high} had already issued: W->W program \
                     order (FIFO retirement) broken",
                    addr.0
                ));
            }
        }
        self.serviced_high = Some(self.serviced_high.map_or(seq, |h| h.max(seq)));
    }

    /// Takes the pending W→W FIFO-order violation, if the buffer ever
    /// serviced an entry out of enqueue order. The normal head-only
    /// service path can never trip this; it exists as the detection side
    /// of the opt-in write-buffer FIFO invariant
    /// (`ProcConfig::enforce_wb_fifo` in `dashlat-cpu`), which is what
    /// lets chaos testing catch reordering bugs like the seeded
    /// `verify-mutations` one as first-class invariant violations.
    pub fn take_fifo_violation(&mut self) -> Option<String> {
        self.fifo_violation.take()
    }

    /// The entry currently at the head (next to retire).
    pub fn head(&self) -> Option<&PendingWrite> {
        self.entries.front()
    }

    /// Removes and returns the head entry.
    pub fn pop(&mut self) -> Option<PendingWrite> {
        let w = self.entries.pop_front()?;
        let seq = self.seqs.pop_front().expect("seqs in lockstep");
        self.note_serviced(seq, w.addr);
        Some(w)
    }

    /// Removes an entry *out of FIFO order* — the support surface for the
    /// verifier's deliberately seeded write-buffer reordering bug
    /// (`ProcConfig::relaxation_bug` in `dashlat-cpu`). Never part of the
    /// real machine model.
    #[cfg(feature = "verify-mutations")]
    pub fn remove_at(&mut self, index: usize) -> Option<PendingWrite> {
        let w = self.entries.remove(index)?;
        let seq = self.seqs.remove(index).expect("seqs in lockstep");
        self.note_serviced(seq, w.addr);
        Some(w)
    }

    /// Inspects an arbitrary entry — companion of
    /// [`WriteBuffer::remove_at`], same caveat.
    #[cfg(feature = "verify-mutations")]
    pub fn peek_at(&self, index: usize) -> Option<&PendingWrite> {
        self.entries.get(index)
    }

    /// Number of queued writes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when no further write can be accepted.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Deepest occupancy seen (telemetry).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total writes ever enqueued (telemetry).
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }
}

/// A prefetch waiting in the prefetch buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingPrefetch {
    /// Target address.
    pub addr: Addr,
    /// Read-exclusive (ownership) prefetch vs read-shared.
    pub exclusive: bool,
    /// When the processor issued it.
    pub enqueued_at: Cycle,
}

/// The 16-entry prefetch buffer.
///
/// When an entry reaches the head, the secondary cache is checked: if the
/// line is already present the prefetch is discarded, otherwise it is issued
/// to the memory system like a normal request (§5.1). That check-and-issue
/// sequencing is driven by the processor model.
#[derive(Debug, Clone)]
pub struct PrefetchBuffer {
    entries: VecDeque<PendingPrefetch>,
    capacity: usize,
    high_water: usize,
    total_pushed: u64,
}

impl PrefetchBuffer {
    /// Creates a buffer with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "prefetch buffer needs at least one entry");
        PrefetchBuffer {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            high_water: 0,
            total_pushed: 0,
        }
    }

    /// Enqueues a prefetch; returns false (and does nothing) when full.
    pub fn try_push(&mut self, p: PendingPrefetch) -> bool {
        if self.entries.len() >= self.capacity {
            return false;
        }
        self.entries.push_back(p);
        self.high_water = self.high_water.max(self.entries.len());
        self.total_pushed += 1;
        true
    }

    /// The entry next to be issued.
    pub fn head(&self) -> Option<&PendingPrefetch> {
        self.entries.front()
    }

    /// Removes and returns the head entry.
    pub fn pop(&mut self) -> Option<PendingPrefetch> {
        self.entries.pop_front()
    }

    /// Number of queued prefetches.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when no further prefetch can be accepted.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Deepest occupancy seen (telemetry).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total prefetches ever enqueued (telemetry).
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(addr: u64) -> PendingWrite {
        PendingWrite {
            addr: Addr(addr),
            enqueued_at: Cycle::ZERO,
            kind: WriteKind::Data,
        }
    }

    #[test]
    fn write_buffer_fifo_order() {
        let mut wb = WriteBuffer::new(4);
        for i in 0..4 {
            assert!(wb.try_push(w(i * 16)));
        }
        assert!(wb.is_full());
        for i in 0..4 {
            assert_eq!(wb.pop().map(|e| e.addr), Some(Addr(i * 16)));
        }
        assert!(wb.is_empty());
    }

    #[test]
    fn write_buffer_rejects_when_full() {
        let mut wb = WriteBuffer::new(1);
        assert!(wb.try_push(w(0)));
        assert!(!wb.try_push(w(16)));
        assert_eq!(wb.len(), 1);
        assert_eq!(wb.total_pushed(), 1);
    }

    #[test]
    fn write_buffer_head_peeks() {
        let mut wb = WriteBuffer::new(2);
        wb.try_push(w(0));
        wb.try_push(PendingWrite {
            addr: Addr(16),
            enqueued_at: Cycle(5),
            kind: WriteKind::Release,
        });
        assert_eq!(wb.head().map(|e| e.addr), Some(Addr(0)));
        wb.pop();
        assert_eq!(wb.head().map(|e| e.kind), Some(WriteKind::Release));
    }

    #[test]
    fn high_water_tracks_depth() {
        let mut wb = WriteBuffer::new(8);
        wb.try_push(w(0));
        wb.try_push(w(16));
        wb.try_push(w(32));
        wb.pop();
        wb.pop();
        wb.try_push(w(48));
        assert_eq!(wb.high_water(), 3);
    }

    #[test]
    fn fifo_service_never_flags_violation() {
        let mut wb = WriteBuffer::new(4);
        for i in 0..4 {
            wb.try_push(w(i * 16));
        }
        wb.pop();
        wb.pop();
        wb.try_push(w(64));
        while wb.pop().is_some() {}
        assert_eq!(wb.take_fifo_violation(), None);
    }

    #[cfg(feature = "verify-mutations")]
    #[test]
    fn out_of_order_removal_flags_violation() {
        let mut wb = WriteBuffer::new(4);
        wb.try_push(w(0));
        wb.try_push(w(16));
        wb.try_push(w(32));
        // Service #1 ahead of #0 — the seeded bug's exact move. The
        // violation fires when the *older* #0 is then serviced late.
        assert_eq!(wb.remove_at(1).map(|e| e.addr), Some(Addr(16)));
        assert_eq!(wb.take_fifo_violation(), None);
        wb.pop();
        let detail = wb.take_fifo_violation().expect("violation detected");
        assert!(detail.contains("write #0"), "detail: {detail}");
        assert!(detail.contains("write #1"), "detail: {detail}");
        // take() drains it; later in-order service stays clean.
        assert_eq!(wb.take_fifo_violation(), None);
        wb.pop();
        assert_eq!(wb.take_fifo_violation(), None);
    }

    #[test]
    fn prefetch_buffer_basics() {
        let mut pb = PrefetchBuffer::new(2);
        assert!(pb.is_empty());
        assert!(pb.try_push(PendingPrefetch {
            addr: Addr(0),
            exclusive: false,
            enqueued_at: Cycle(0),
        }));
        assert!(pb.try_push(PendingPrefetch {
            addr: Addr(16),
            exclusive: true,
            enqueued_at: Cycle(1),
        }));
        assert!(pb.is_full());
        assert!(!pb.try_push(PendingPrefetch {
            addr: Addr(32),
            exclusive: false,
            enqueued_at: Cycle(2),
        }));
        let first = pb.pop().expect("non-empty");
        assert!(!first.exclusive);
        let second = pb.pop().expect("non-empty");
        assert!(second.exclusive);
        assert_eq!(pb.total_pushed(), 2);
        assert_eq!(pb.high_water(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = WriteBuffer::new(0);
    }
}
