//! Direct-mapped cache model.
//!
//! Both cache levels in the paper's machine are direct-mapped with 16-byte
//! lines: a 64 KB write-through primary and a 256 KB write-back secondary
//! (scaled to 2 KB / 4 KB for the experiments, §2.3). The model tracks tags
//! and coherence states only — data values live in the workloads' logical
//! state, so the cache answers "would this access hit, and in what state?".

use crate::addr::{LineAddr, LINE_BYTES};

/// Coherence state of a cached line.
///
/// The protocol is an invalidating ownership protocol: a line is either
/// `Shared` (clean, possibly cached elsewhere) or `Dirty` (exclusively owned
/// and modified; memory is stale).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// Clean copy; other caches may hold the line too.
    Shared,
    /// Exclusively owned, modified copy.
    Dirty,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    tag: LineAddr,
    state: LineState,
}

/// What `fill` evicted, if anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Eviction {
    /// The set was empty or held the same line.
    None,
    /// A clean line was displaced (no write-back needed).
    Clean(LineAddr),
    /// A dirty line was displaced and must be written back.
    Dirty(LineAddr),
}

/// A direct-mapped cache with 16-byte lines.
///
/// # Example
///
/// ```
/// use dashlat_mem::addr::LineAddr;
/// use dashlat_mem::cache::{Cache, Eviction, LineState};
///
/// let mut c = Cache::new(2048); // the scaled 2 KB primary: 128 lines
/// assert_eq!(c.probe(LineAddr(7)), None);
/// c.fill(LineAddr(7), LineState::Shared);
/// assert_eq!(c.probe(LineAddr(7)), Some(LineState::Shared));
/// // A different line mapping to the same set displaces it:
/// assert_eq!(c.fill(LineAddr(7 + 128), LineState::Dirty), Eviction::Clean(LineAddr(7)));
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Option<Slot>>,
    /// `sets.len() - 1` when the set count is a power of two (the common
    /// geometry), letting `set_of` mask instead of divide on the hot path;
    /// `usize::MAX` otherwise.
    mask: usize,
}

impl Cache {
    /// Creates a cache of `capacity_bytes` (must be a positive multiple of
    /// the 16-byte line size; direct-mapped, one line per set).
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is zero or not line-aligned.
    pub fn new(capacity_bytes: u64) -> Self {
        assert!(
            capacity_bytes > 0 && capacity_bytes.is_multiple_of(LINE_BYTES),
            "capacity must be a positive multiple of {LINE_BYTES} bytes"
        );
        let lines = (capacity_bytes / LINE_BYTES) as usize;
        let mask = if lines.is_power_of_two() {
            lines - 1
        } else {
            usize::MAX
        };
        Cache {
            sets: vec![None; lines],
            mask,
        }
    }

    /// Number of lines (= sets, direct-mapped).
    pub fn lines(&self) -> usize {
        self.sets.len()
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.sets.len() as u64 * LINE_BYTES
    }

    #[inline]
    fn set_of(&self, line: LineAddr) -> usize {
        if self.mask != usize::MAX {
            (line.0 as usize) & self.mask
        } else {
            (line.0 as usize) % self.sets.len()
        }
    }

    /// Returns the state of `line` if present.
    #[inline]
    pub fn probe(&self, line: LineAddr) -> Option<LineState> {
        let slot = self.sets[self.set_of(line)]?;
        (slot.tag == line).then_some(slot.state)
    }

    /// Installs `line` in `state`, returning what was displaced.
    ///
    /// Filling a line that is already present just updates its state (e.g.
    /// Shared → Dirty on an ownership upgrade) and reports
    /// [`Eviction::None`].
    #[inline]
    pub fn fill(&mut self, line: LineAddr, state: LineState) -> Eviction {
        let idx = self.set_of(line);
        let evicted = match self.sets[idx] {
            Some(slot) if slot.tag == line => Eviction::None,
            Some(slot) => match slot.state {
                LineState::Dirty => Eviction::Dirty(slot.tag),
                LineState::Shared => Eviction::Clean(slot.tag),
            },
            None => Eviction::None,
        };
        self.sets[idx] = Some(Slot { tag: line, state });
        evicted
    }

    /// Invalidates `line`; returns its prior state if it was present.
    #[inline]
    pub fn invalidate(&mut self, line: LineAddr) -> Option<LineState> {
        let idx = self.set_of(line);
        match self.sets[idx] {
            Some(slot) if slot.tag == line => {
                self.sets[idx] = None;
                Some(slot.state)
            }
            _ => None,
        }
    }

    /// Downgrades a dirty line to shared (another node read it); no-op when
    /// the line is absent or already shared.
    #[inline]
    pub fn downgrade(&mut self, line: LineAddr) {
        let idx = self.set_of(line);
        if let Some(slot) = &mut self.sets[idx] {
            if slot.tag == line {
                slot.state = LineState::Shared;
            }
        }
    }

    /// Upgrades a present line to dirty (ownership acquired).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the line is absent — ownership upgrades are
    /// only meaningful for resident lines.
    #[inline]
    pub fn upgrade(&mut self, line: LineAddr) {
        let idx = self.set_of(line);
        match &mut self.sets[idx] {
            Some(slot) if slot.tag == line => slot.state = LineState::Dirty,
            _ => debug_assert!(false, "upgrade of non-resident {line}"),
        }
    }

    /// Empties the cache (used between experiment phases in tests).
    pub fn clear(&mut self) {
        for s in &mut self.sets {
            *s = None;
        }
    }

    /// Number of currently valid lines.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().filter(|s| s.is_some()).count()
    }

    /// Iterates over resident lines (for writeback-all style maintenance).
    pub fn resident(&self) -> impl Iterator<Item = (LineAddr, LineState)> + '_ {
        self.sets.iter().flatten().map(|s| (s.tag, s.state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(4 * LINE_BYTES) // 4 lines
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert_eq!(c.probe(LineAddr(1)), None);
        assert_eq!(c.fill(LineAddr(1), LineState::Shared), Eviction::None);
        assert_eq!(c.probe(LineAddr(1)), Some(LineState::Shared));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn conflict_evicts() {
        let mut c = small();
        c.fill(LineAddr(2), LineState::Shared);
        // line 6 maps to the same set in a 4-line cache
        assert_eq!(
            c.fill(LineAddr(6), LineState::Shared),
            Eviction::Clean(LineAddr(2))
        );
        assert_eq!(c.probe(LineAddr(2)), None);
        assert_eq!(c.probe(LineAddr(6)), Some(LineState::Shared));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = small();
        c.fill(LineAddr(3), LineState::Dirty);
        assert_eq!(
            c.fill(LineAddr(7), LineState::Shared),
            Eviction::Dirty(LineAddr(3))
        );
    }

    #[test]
    fn refill_same_line_updates_state() {
        let mut c = small();
        c.fill(LineAddr(5), LineState::Shared);
        assert_eq!(c.fill(LineAddr(5), LineState::Dirty), Eviction::None);
        assert_eq!(c.probe(LineAddr(5)), Some(LineState::Dirty));
    }

    #[test]
    fn invalidate_and_downgrade() {
        let mut c = small();
        c.fill(LineAddr(0), LineState::Dirty);
        c.downgrade(LineAddr(0));
        assert_eq!(c.probe(LineAddr(0)), Some(LineState::Shared));
        assert_eq!(c.invalidate(LineAddr(0)), Some(LineState::Shared));
        assert_eq!(c.probe(LineAddr(0)), None);
        assert_eq!(c.invalidate(LineAddr(0)), None);
        // Downgrading / invalidating the wrong tag in an occupied set is a no-op.
        c.fill(LineAddr(1), LineState::Dirty);
        c.downgrade(LineAddr(5));
        assert_eq!(c.probe(LineAddr(1)), Some(LineState::Dirty));
        assert_eq!(c.invalidate(LineAddr(5)), None);
    }

    #[test]
    fn upgrade_marks_dirty() {
        let mut c = small();
        c.fill(LineAddr(2), LineState::Shared);
        c.upgrade(LineAddr(2));
        assert_eq!(c.probe(LineAddr(2)), Some(LineState::Dirty));
    }

    #[test]
    fn clear_empties() {
        let mut c = small();
        c.fill(LineAddr(0), LineState::Shared);
        c.fill(LineAddr(1), LineState::Dirty);
        c.clear();
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.probe(LineAddr(0)), None);
    }

    #[test]
    fn geometry() {
        let c = Cache::new(2048);
        assert_eq!(c.lines(), 128);
        assert_eq!(c.capacity_bytes(), 2048);
    }

    #[test]
    #[should_panic(expected = "positive multiple")]
    fn rejects_unaligned_capacity() {
        let _ = Cache::new(100);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// After any sequence of fills/invalidates, a probe hit implies the
        /// line was filled more recently than it was evicted/invalidated,
        /// and occupancy never exceeds the set count.
        #[test]
        fn cache_agrees_with_reference_model(
            ops in proptest::collection::vec((0u64..64, any::<bool>(), any::<bool>()), 1..200)
        ) {
            let mut c = Cache::new(8 * LINE_BYTES);
            // Reference: map set index -> Option<(line, dirty)>
            let mut reference: Vec<Option<(u64, bool)>> = vec![None; 8];
            for (line, dirty, invalidate) in ops {
                let set = (line % 8) as usize;
                if invalidate {
                    let expected = match reference[set] {
                        Some((l, d)) if l == line => {
                            reference[set] = None;
                            Some(if d { LineState::Dirty } else { LineState::Shared })
                        }
                        _ => None,
                    };
                    prop_assert_eq!(c.invalidate(LineAddr(line)), expected);
                } else {
                    let state = if dirty { LineState::Dirty } else { LineState::Shared };
                    let expected = match reference[set] {
                        Some((l, _)) if l == line => Eviction::None,
                        Some((l, d)) => if d { Eviction::Dirty(LineAddr(l)) } else { Eviction::Clean(LineAddr(l)) },
                        None => Eviction::None,
                    };
                    prop_assert_eq!(c.fill(LineAddr(line), state), expected);
                    reference[set] = Some((line, dirty));
                }
                prop_assert!(c.occupancy() <= 8);
            }
            // Final state agreement.
            for set in 0..8u64 {
                match reference[set as usize] {
                    Some((l, d)) => {
                        let st = if d { LineState::Dirty } else { LineState::Shared };
                        prop_assert_eq!(c.probe(LineAddr(l)), Some(st));
                    }
                    None => {
                        // every line mapping here must miss
                        prop_assert_eq!(c.probe(LineAddr(set)), None);
                    }
                }
            }
        }
    }
}
