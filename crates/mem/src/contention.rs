//! Occupancy-based contention model for buses, network ports and
//! directory/memory controllers.
//!
//! The paper models "the contention and arbitration for buses … in detail"
//! (§2.3) on top of the fixed Table 1 latencies. We reproduce that with a
//! queueing model: every serially-shared resource (a node's bus, its network
//! in/out ports, its memory/directory controller) has a `busy-until` time;
//! a transaction that needs the resource starts no earlier than that time
//! and pushes it forward by the transaction's occupancy. Because the
//! simulator processes requests in nondecreasing simulated time, this yields
//! a consistent FCFS queueing discipline.
//!
//! Occupancies are derived from the paper's bandwidths: a 16-byte line on a
//! 133 Mbyte/s node bus takes ~120 ns = 4 pclocks; the ~150 Mbyte/s network
//! ports are similar.

use dashlat_sim::Cycle;

use crate::addr::NodeId;

/// A serially shared resource with FCFS queueing.
#[derive(Debug, Clone, Copy, Default)]
pub struct Resource {
    free_at: Cycle,
}

impl Resource {
    /// Acquires the resource at or after `now` for `occupancy` cycles;
    /// returns the queueing delay suffered (start − now).
    ///
    /// This is the whole bookkeeping cost of the contention model: an idle
    /// resource stores only the time it last went free, so idle cycles
    /// cost nothing and each acquisition is one compare and one add.
    #[inline]
    pub fn acquire(&mut self, now: Cycle, occupancy: Cycle) -> Cycle {
        let start = self.free_at.max(now);
        self.free_at = start + occupancy;
        start.saturating_sub(now)
    }

    /// When the resource next becomes free.
    #[inline]
    pub fn free_at(&self) -> Cycle {
        self.free_at
    }
}

/// Occupancy parameters (cycles a transaction holds each resource).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccupancyTable {
    /// Node bus occupancy per bus transaction (16-byte line @133 MB/s).
    pub bus: Cycle,
    /// Network port occupancy per line-sized message (@150 MB/s).
    pub network: Cycle,
    /// Memory/directory controller occupancy per request.
    pub memory: Cycle,
}

impl OccupancyTable {
    /// DASH-prototype derived defaults.
    pub fn dash() -> Self {
        OccupancyTable {
            bus: Cycle(4),
            network: Cycle(4),
            memory: Cycle(8),
        }
    }
}

impl Default for OccupancyTable {
    fn default() -> Self {
        Self::dash()
    }
}

/// How the interconnection network's queueing is modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NetworkModel {
    /// Per-node in/out port occupancy (endpoint queueing only).
    #[default]
    Ports,
    /// A 2-D wormhole mesh with dimension-ordered routing: queueing on
    /// every directed link along the route (see [`crate::mesh::Mesh`]).
    Mesh2D,
}

/// All contended resources of the machine.
///
/// `Clone` supports warm-state snapshots: the whole model is a handful of
/// `busy-until` vectors, so a snapshot is a flat memcpy.
#[derive(Debug, Clone)]
pub struct Contention {
    enabled: bool,
    occ: OccupancyTable,
    bus: Vec<Resource>,
    net_out: Vec<Resource>,
    net_in: Vec<Resource>,
    memory: Vec<Resource>,
    mesh: Option<crate::mesh::Mesh>,
}

impl Contention {
    /// Creates the resource pools for `nodes` nodes. When `enabled` is
    /// false every acquisition is free (useful for isolating protocol
    /// effects in tests).
    pub fn new(nodes: usize, occ: OccupancyTable, enabled: bool) -> Self {
        Self::with_network(nodes, occ, enabled, NetworkModel::Ports)
    }

    /// Creates the resource pools with an explicit network model.
    pub fn with_network(
        nodes: usize,
        occ: OccupancyTable,
        enabled: bool,
        network: NetworkModel,
    ) -> Self {
        let mesh = match network {
            NetworkModel::Ports => None,
            NetworkModel::Mesh2D => Some(crate::mesh::Mesh::new(nodes, occ.network)),
        };
        Contention {
            enabled,
            occ,
            bus: vec![Resource::default(); nodes],
            net_out: vec![Resource::default(); nodes],
            net_in: vec![Resource::default(); nodes],
            memory: vec![Resource::default(); nodes],
            mesh,
        }
    }

    /// Queueing delay for a transaction on `node`'s bus.
    #[inline]
    pub fn bus(&mut self, now: Cycle, node: NodeId) -> Cycle {
        if !self.enabled {
            return Cycle::ZERO;
        }
        self.bus[node.0].acquire(now, self.occ.bus)
    }

    /// Queueing delay for `node`'s memory/directory controller.
    #[inline]
    pub fn memory(&mut self, now: Cycle, node: NodeId) -> Cycle {
        if !self.enabled {
            return Cycle::ZERO;
        }
        self.memory[node.0].acquire(now, self.occ.memory)
    }

    /// Queueing delay for a network message `from → to`. Under the port
    /// model this occupies the sender's out port and the receiver's in
    /// port; under the mesh model every directed link along the
    /// dimension-ordered route.
    #[inline]
    pub fn network(&mut self, now: Cycle, from: NodeId, to: NodeId) -> Cycle {
        self.network_perturbed(now, from, to, Cycle::ZERO)
    }

    /// Like [`Contention::network`], but the packet is `slow_by` cycles
    /// slower in transit (fault injection): the extra time is added to the
    /// returned delay *and* to the occupancy of every resource the packet
    /// crosses, so traffic behind a delayed packet queues longer too.
    pub fn network_perturbed(
        &mut self,
        now: Cycle,
        from: NodeId,
        to: NodeId,
        slow_by: Cycle,
    ) -> Cycle {
        if from == to {
            return Cycle::ZERO;
        }
        if !self.enabled {
            return slow_by;
        }
        let occ = self.occ.network + slow_by;
        if let Some(mesh) = &mut self.mesh {
            let d1 = self.net_out[from.0].acquire(now, occ);
            let d2 = mesh.send_occupying(now + d1, from, to, occ);
            return d1 + d2 + slow_by;
        }
        let d1 = self.net_out[from.0].acquire(now, occ);
        let d2 = self.net_in[to.0].acquire(now + d1, occ);
        d1 + d2 + slow_by
    }

    /// Whether queueing is being modelled.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_resource_is_free() {
        let mut r = Resource::default();
        assert_eq!(r.acquire(Cycle(100), Cycle(4)), Cycle::ZERO);
        assert_eq!(r.free_at(), Cycle(104));
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut r = Resource::default();
        assert_eq!(r.acquire(Cycle(0), Cycle(4)), Cycle::ZERO);
        assert_eq!(r.acquire(Cycle(0), Cycle(4)), Cycle(4));
        assert_eq!(r.acquire(Cycle(0), Cycle(4)), Cycle(8));
        assert_eq!(r.free_at(), Cycle(12));
    }

    #[test]
    fn late_request_after_idle_is_free() {
        let mut r = Resource::default();
        r.acquire(Cycle(0), Cycle(4));
        assert_eq!(r.acquire(Cycle(50), Cycle(4)), Cycle::ZERO);
        assert_eq!(r.free_at(), Cycle(54));
    }

    #[test]
    fn disabled_contention_is_always_free() {
        let mut c = Contention::new(2, OccupancyTable::dash(), false);
        for _ in 0..10 {
            assert_eq!(c.bus(Cycle(0), NodeId(0)), Cycle::ZERO);
            assert_eq!(c.network(Cycle(0), NodeId(0), NodeId(1)), Cycle::ZERO);
            assert_eq!(c.memory(Cycle(0), NodeId(0)), Cycle::ZERO);
        }
        assert!(!c.is_enabled());
    }

    #[test]
    fn buses_are_per_node() {
        let mut c = Contention::new(2, OccupancyTable::dash(), true);
        assert_eq!(c.bus(Cycle(0), NodeId(0)), Cycle::ZERO);
        // Other node's bus is independent.
        assert_eq!(c.bus(Cycle(0), NodeId(1)), Cycle::ZERO);
        // Same node queues.
        assert_eq!(c.bus(Cycle(0), NodeId(0)), Cycle(4));
    }

    #[test]
    fn local_network_hop_is_free() {
        let mut c = Contention::new(2, OccupancyTable::dash(), true);
        assert_eq!(c.network(Cycle(0), NodeId(0), NodeId(0)), Cycle::ZERO);
        assert_eq!(c.network(Cycle(0), NodeId(0), NodeId(0)), Cycle::ZERO);
    }

    #[test]
    fn network_occupies_both_ports() {
        let mut c = Contention::new(3, OccupancyTable::dash(), true);
        assert_eq!(c.network(Cycle(0), NodeId(0), NodeId(1)), Cycle::ZERO);
        // 2 -> 1 contends on node 1's in-port.
        let d = c.network(Cycle(0), NodeId(2), NodeId(1));
        assert_eq!(d, Cycle(4));
        // 0 -> 2: node 0's out port is busy until cycle 4.
        let d2 = c.network(Cycle(0), NodeId(0), NodeId(2));
        assert_eq!(d2, Cycle(4));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// FCFS invariant: serving requests in time order, each request's
        /// start time (now + delay) is at least the previous request's start
        /// and the resource is never double-booked.
        #[test]
        fn resource_never_double_books(gaps in proptest::collection::vec(0u64..10, 1..100),
                                       occ in 1u64..8) {
            let mut r = Resource::default();
            let mut now = Cycle::ZERO;
            let mut prev_end = Cycle::ZERO;
            for g in gaps {
                now += Cycle(g);
                let delay = r.acquire(now, Cycle(occ));
                let start = now + delay;
                prop_assert!(start >= prev_end, "overlapping service intervals");
                prev_end = start + Cycle(occ);
                prop_assert_eq!(r.free_at(), prev_end);
            }
        }
    }
}
