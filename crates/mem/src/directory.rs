//! Invalidating directory: full-map, or limited-pointer with broadcast.
//!
//! For every memory block the directory at the block's home node tracks the
//! set of remote caches holding it (§2.1). On a write, point-to-point
//! invalidations go to all sharers and acknowledgements flow back to the
//! requester. The model keeps one logical directory keyed by line address;
//! the home node of a line (from the [`PageMap`](crate::layout::PageMap))
//! decides which node's directory controller — and thus which resources —
//! a transaction occupies.
//!
//! Besides the paper's full-map organisation, a classic *limited-pointer
//! with broadcast* (Dir_i-B) variant is provided as an extension: each
//! entry holds at most `i` sharer pointers; when an `i+1`-th sharer
//! arrives, the entry degrades to an overflow state and a later write must
//! broadcast invalidations to every node. This exposes the
//! directory-storage vs invalidation-traffic trade-off that full-map
//! machines like DASH avoided by paying the full bit vector.

use dashlat_sim::FxHashMap;

use crate::addr::{LineAddr, NodeId, NodeSet};

/// Directory organisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DirectoryKind {
    /// One presence bit per node (the paper's machine).
    #[default]
    FullMap,
    /// At most `pointers` sharer pointers; overflow degrades to broadcast
    /// invalidation (Dir_i-B).
    LimitedPtr {
        /// Pointers per entry (the `i` in Dir_i-B).
        pointers: usize,
    },
}

/// Directory knowledge about one line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DirState {
    /// No cache holds the line; memory is up to date.
    #[default]
    Uncached,
    /// The listed caches hold clean copies; memory is up to date.
    Shared(NodeSet),
    /// Pointer overflow (limited-pointer directories only): an unknown
    /// superset of nodes may hold clean copies; a write must broadcast.
    SharedOverflow,
    /// Exactly one cache holds a modified copy; memory is stale.
    Dirty(NodeId),
}

/// What the directory did in response to a request (used by the memory
/// system to charge latencies and update remote caches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirOutcome {
    /// State the line was in when the request arrived.
    pub prev: DirState,
    /// Caches that must be invalidated (write requests only).
    pub invalidate: NodeSet,
    /// Cache that must supply the data and be downgraded (dirty-remote reads)
    /// or invalidated (dirty-remote writes).
    pub dirty_owner: Option<NodeId>,
}

/// The machine-wide directory (one logical map; entries are homed by page).
///
/// Storage is a struct-of-arrays arena: the layout allocates shared pages
/// contiguously from address zero, so line numbers are dense and the
/// pre-sized `dense` vector resolves a lookup with one indexed load — no
/// hashing, no probing — on the dispatch hot path. Lines beyond the
/// pre-sized range (possible only for addresses outside the declared
/// layout, e.g. hand-written litmus programs) spill to a hash map with
/// identical semantics.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    /// State of line `i` at index `i`, for lines below the pre-sized bound.
    dense: Vec<DirState>,
    /// Sparse fallback for lines past the dense range.
    spill: FxHashMap<LineAddr, DirState>,
    kind: DirectoryKind,
    /// Total nodes (needed to build broadcast invalidation sets).
    nodes: usize,
    /// Writes that had to broadcast because of pointer overflow.
    broadcasts: u64,
    /// Count of non-[`DirState::Uncached`] entries, maintained on every
    /// transition so telemetry never walks the arena.
    tracked: usize,
}

impl Directory {
    /// Creates an empty full-map directory (all lines `Uncached`).
    /// Prefer [`Directory::with_kind`] when the node count matters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a directory of the given organisation for `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics for a limited-pointer directory with zero pointers.
    pub fn with_kind(kind: DirectoryKind, nodes: usize) -> Self {
        Self::with_kind_sized(kind, nodes, 0)
    }

    /// Like [`Directory::with_kind`], but pre-sizes the dense line arena
    /// for `lines` tracked lines (typically the machine layout's
    /// shared-segment line count) so every lookup in the sweep's steady
    /// state is a single indexed load.
    ///
    /// # Panics
    ///
    /// Panics for a limited-pointer directory with zero pointers.
    pub fn with_kind_sized(kind: DirectoryKind, nodes: usize, lines: usize) -> Self {
        if let DirectoryKind::LimitedPtr { pointers } = kind {
            assert!(pointers > 0, "Dir_i-B needs at least one pointer");
        }
        Directory {
            dense: vec![DirState::Uncached; lines],
            spill: FxHashMap::default(),
            kind,
            nodes,
            broadcasts: 0,
            tracked: 0,
        }
    }

    /// Writes that degraded to broadcast invalidation (telemetry).
    pub fn broadcasts(&self) -> u64 {
        self.broadcasts
    }

    /// The set every node belongs to (broadcast target), minus `except`.
    fn all_but(&self, except: NodeId) -> NodeSet {
        let mut s = NodeSet::EMPTY;
        for n in 0..self.nodes.max(1) {
            if n != except.0 {
                s.insert(NodeId(n));
            }
        }
        s
    }

    /// Current state of a line.
    #[inline]
    pub fn state(&self, line: LineAddr) -> DirState {
        match self.dense.get(line.0 as usize) {
            Some(&s) => s,
            None => self.spill.get(&line).copied().unwrap_or_default(),
        }
    }

    /// Stores `next` for a line whose previous state was `prev`, keeping
    /// the tracked-entry count in lockstep.
    #[inline]
    fn put(&mut self, line: LineAddr, prev: DirState, next: DirState) {
        if prev == next {
            return;
        }
        self.tracked = self.tracked + usize::from(next != DirState::Uncached)
            - usize::from(prev != DirState::Uncached);
        match self.dense.get_mut(line.0 as usize) {
            Some(slot) => *slot = next,
            None => {
                if next == DirState::Uncached {
                    self.spill.remove(&line);
                } else {
                    self.spill.insert(line, next);
                }
            }
        }
    }

    /// Handles a read request from `node`: the line becomes shared by
    /// `node` (plus the previous owner if it was dirty, which supplies the
    /// data and keeps a clean copy — "sharing writeback").
    pub fn read(&mut self, line: LineAddr, node: NodeId) -> DirOutcome {
        let prev = self.state(line);
        let (next, dirty_owner) = match prev {
            DirState::Uncached => (DirState::Shared(NodeSet::singleton(node)), None),
            DirState::Shared(mut set) => {
                set.insert(node);
                (self.clamp_shared(set), None)
            }
            DirState::SharedOverflow => (DirState::SharedOverflow, None),
            DirState::Dirty(owner) if owner == node => {
                // The owner re-reading its own line; directory unchanged.
                (prev, None)
            }
            DirState::Dirty(owner) => {
                let mut set = NodeSet::singleton(node);
                set.insert(owner);
                (self.clamp_shared(set), Some(owner))
            }
        };
        self.put(line, prev, next);
        DirOutcome {
            prev,
            invalidate: NodeSet::EMPTY,
            dirty_owner,
        }
    }

    /// Handles a read request from `node` under the *lazy sharing
    /// write-back* protocol variant: a remotely dirty line stays dirty at
    /// its owner (no sharing write-back, no downgrade) — the owner just
    /// forwards the data and the reader caches nothing. All other states
    /// behave exactly like [`Directory::read`].
    pub fn read_lazy(&mut self, line: LineAddr, node: NodeId) -> DirOutcome {
        let prev = self.state(line);
        if let DirState::Dirty(owner) = prev {
            if owner != node {
                // Entry unchanged: the owner keeps exclusive ownership.
                return DirOutcome {
                    prev,
                    invalidate: NodeSet::EMPTY,
                    dirty_owner: Some(owner),
                };
            }
        }
        self.read(line, node)
    }

    /// Applies the pointer limit: a sharer set that no longer fits the
    /// entry degrades to the overflow state.
    fn clamp_shared(&self, set: NodeSet) -> DirState {
        match self.kind {
            DirectoryKind::FullMap => DirState::Shared(set),
            DirectoryKind::LimitedPtr { pointers } => {
                if set.len() <= pointers {
                    DirState::Shared(set)
                } else {
                    DirState::SharedOverflow
                }
            }
        }
    }

    /// Handles a write (ownership) request from `node`: all other copies are
    /// invalidated and the line becomes dirty at `node`.
    pub fn write(&mut self, line: LineAddr, node: NodeId) -> DirOutcome {
        let prev = self.state(line);
        let (invalidate, dirty_owner) = match prev {
            DirState::Uncached => (NodeSet::EMPTY, None),
            DirState::Shared(set) => (set.without(NodeSet::singleton(node)), None),
            DirState::SharedOverflow => {
                // The pointers were lost: broadcast to everyone else.
                self.broadcasts += 1;
                (self.all_but(node), None)
            }
            DirState::Dirty(owner) if owner == node => (NodeSet::EMPTY, None),
            DirState::Dirty(owner) => (NodeSet::EMPTY, Some(owner)),
        };
        self.put(line, prev, DirState::Dirty(node));
        DirOutcome {
            prev,
            invalidate,
            dirty_owner,
        }
    }

    /// A cache evicted a clean copy of `line`; remove it from the sharer set.
    pub fn evict_clean(&mut self, line: LineAddr, node: NodeId) {
        let prev = self.state(line);
        if let DirState::Shared(mut set) = prev {
            set.remove(node);
            let next = if set.is_empty() {
                DirState::Uncached
            } else {
                DirState::Shared(set)
            };
            self.put(line, prev, next);
        }
        // Overflow entries have no pointers to prune: the eviction is
        // silent, exactly the information loss Dir_i-B pays for.
    }

    /// A cache wrote back and dropped its dirty copy of `line`.
    ///
    /// No-op unless the directory indeed believed `node` owned the line
    /// (a race-free model keeps these in lockstep, but eviction and
    /// invalidation can cross in simplified orderings).
    pub fn writeback(&mut self, line: LineAddr, node: NodeId) {
        let prev = self.state(line);
        if prev == DirState::Dirty(node) {
            self.put(line, prev, DirState::Uncached);
        }
    }

    /// Number of lines with a non-`Uncached` entry (for tests/telemetry).
    pub fn tracked_lines(&self) -> usize {
        self.tracked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: LineAddr = LineAddr(42);
    const N0: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);
    const N2: NodeId = NodeId(2);

    #[test]
    fn read_from_uncached() {
        let mut d = Directory::new();
        let out = d.read(L, N0);
        assert_eq!(out.prev, DirState::Uncached);
        assert_eq!(out.dirty_owner, None);
        assert_eq!(d.state(L), DirState::Shared(NodeSet::singleton(N0)));
    }

    #[test]
    fn multiple_readers_accumulate() {
        let mut d = Directory::new();
        d.read(L, N0);
        d.read(L, N1);
        match d.state(L) {
            DirState::Shared(set) => {
                assert!(set.contains(N0) && set.contains(N1));
                assert_eq!(set.len(), 2);
            }
            s => panic!("unexpected state {s:?}"),
        }
    }

    #[test]
    fn write_invalidates_other_sharers() {
        let mut d = Directory::new();
        d.read(L, N0);
        d.read(L, N1);
        d.read(L, N2);
        let out = d.write(L, N1);
        assert_eq!(out.invalidate.len(), 2);
        assert!(out.invalidate.contains(N0) && out.invalidate.contains(N2));
        assert!(!out.invalidate.contains(N1));
        assert_eq!(d.state(L), DirState::Dirty(N1));
    }

    #[test]
    fn read_of_dirty_line_downgrades_owner() {
        let mut d = Directory::new();
        d.write(L, N0);
        let out = d.read(L, N1);
        assert_eq!(out.dirty_owner, Some(N0));
        match d.state(L) {
            DirState::Shared(set) => {
                assert!(set.contains(N0) && set.contains(N1));
            }
            s => panic!("unexpected state {s:?}"),
        }
    }

    #[test]
    fn owner_rereading_does_not_change_state() {
        let mut d = Directory::new();
        d.write(L, N0);
        let out = d.read(L, N0);
        assert_eq!(out.dirty_owner, None);
        assert_eq!(d.state(L), DirState::Dirty(N0));
    }

    #[test]
    fn write_to_dirty_remote_transfers_ownership() {
        let mut d = Directory::new();
        d.write(L, N0);
        let out = d.write(L, N1);
        assert_eq!(out.dirty_owner, Some(N0));
        assert!(out.invalidate.is_empty());
        assert_eq!(d.state(L), DirState::Dirty(N1));
    }

    #[test]
    fn rewrite_by_owner_is_silent() {
        let mut d = Directory::new();
        d.write(L, N0);
        let out = d.write(L, N0);
        assert!(out.invalidate.is_empty());
        assert_eq!(out.dirty_owner, None);
        assert_eq!(d.state(L), DirState::Dirty(N0));
    }

    #[test]
    fn clean_eviction_prunes_sharers() {
        let mut d = Directory::new();
        d.read(L, N0);
        d.read(L, N1);
        d.evict_clean(L, N0);
        assert_eq!(d.state(L), DirState::Shared(NodeSet::singleton(N1)));
        d.evict_clean(L, N1);
        assert_eq!(d.state(L), DirState::Uncached);
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn writeback_clears_dirty_owner() {
        let mut d = Directory::new();
        d.write(L, N0);
        d.writeback(L, N0);
        assert_eq!(d.state(L), DirState::Uncached);
        // Stale writeback from a non-owner is ignored.
        d.write(L, N1);
        d.writeback(L, N0);
        assert_eq!(d.state(L), DirState::Dirty(N1));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Read(usize),
        Write(usize),
        EvictClean(usize),
        Writeback(usize),
    }

    fn op_strategy(nodes: usize) -> impl Strategy<Value = Op> {
        prop_oneof![
            (0..nodes).prop_map(Op::Read),
            (0..nodes).prop_map(Op::Write),
            (0..nodes).prop_map(Op::EvictClean),
            (0..nodes).prop_map(Op::Writeback),
        ]
    }

    proptest! {
        /// The dense pre-sized arena and the spill hash map are
        /// observationally equivalent: the same operation sequence applied
        /// to a directory whose line fits the arena and to one where it
        /// spills produces identical outcomes, states, and telemetry.
        #[test]
        fn dense_arena_matches_spill_map(
            ops in proptest::collection::vec(op_strategy(4), 1..200),
            line in 0u64..64,
        ) {
            let mut dense = Directory::with_kind_sized(DirectoryKind::FullMap, 4, 64);
            let mut spill = Directory::with_kind_sized(DirectoryKind::FullMap, 4, 0);
            let l = LineAddr(line);
            for op in ops {
                let (a, b) = match op {
                    Op::Read(n) => (dense.read(l, NodeId(n)), spill.read(l, NodeId(n))),
                    Op::Write(n) => (dense.write(l, NodeId(n)), spill.write(l, NodeId(n))),
                    Op::EvictClean(n) => {
                        dense.evict_clean(l, NodeId(n));
                        spill.evict_clean(l, NodeId(n));
                        continue;
                    }
                    Op::Writeback(n) => {
                        dense.writeback(l, NodeId(n));
                        spill.writeback(l, NodeId(n));
                        continue;
                    }
                };
                prop_assert_eq!(a, b);
                prop_assert_eq!(dense.state(l), spill.state(l));
                prop_assert_eq!(dense.tracked_lines(), spill.tracked_lines());
            }
        }

        /// Directory invariants under arbitrary operation sequences:
        /// a Dirty line never coexists with sharers, writes always end with
        /// the writer as owner, and invalidation sets never include the
        /// requester.
        #[test]
        fn directory_invariants(ops in proptest::collection::vec(op_strategy(4), 1..200)) {
            let mut d = Directory::new();
            let line = LineAddr(9);
            for op in ops {
                match op {
                    Op::Read(n) => {
                        let out = d.read(line, NodeId(n));
                        prop_assert!(out.invalidate.is_empty());
                        match d.state(line) {
                            DirState::Shared(set) => prop_assert!(set.contains(NodeId(n))),
                            DirState::SharedOverflow => {} // pointers lost
                            DirState::Dirty(owner) => prop_assert_eq!(owner, NodeId(n)),
                            DirState::Uncached => prop_assert!(false, "read left line uncached"),
                        }
                    }
                    Op::Write(n) => {
                        let out = d.write(line, NodeId(n));
                        prop_assert!(!out.invalidate.contains(NodeId(n)));
                        prop_assert_eq!(d.state(line), DirState::Dirty(NodeId(n)));
                    }
                    Op::EvictClean(n) => d.evict_clean(line, NodeId(n)),
                    Op::Writeback(n) => d.writeback(line, NodeId(n)),
                }
                // Shared sets are never empty (normalised to Uncached).
                if let DirState::Shared(set) = d.state(line) {
                    prop_assert!(!set.is_empty());
                }
            }
        }
    }
}
