//! Memory-operation latencies (the paper's Table 1).
//!
//! All values are in processor clock cycles (1 pclock = 30 ns) and describe
//! the *uncontended* service time; queueing delay from bus/network/directory
//! contention is added on top by [`crate::contention`].

use dashlat_sim::Cycle;

/// Latency parameters of the simulated memory hierarchy.
///
/// The defaults are exactly the paper's Table 1. Write latencies are the
/// time to retire the request from the write buffer — i.e. to acquire
/// exclusive ownership — and do *not* include invalidation acknowledgements,
/// which are tracked separately (`inval_roundtrip`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyTable {
    /// Read hit in the primary cache.
    pub read_primary_hit: Cycle,
    /// Read fill from the secondary cache.
    pub read_fill_secondary: Cycle,
    /// Read fill from the local node's memory (home = local).
    pub read_fill_local: Cycle,
    /// Read fill from the home node (home ≠ local, line clean at home).
    pub read_fill_home: Cycle,
    /// Read fill from a remote (dirty-third-party) node.
    pub read_fill_remote: Cycle,
    /// Read fill when the home is local but the line is dirty in a remote
    /// cache. Not in Table 1 (it lists the three-party case); one
    /// network round trip shorter than `read_fill_remote`.
    pub read_fill_remote_home_local: Cycle,

    /// Write hit on a line already owned by the secondary cache.
    pub write_owned_secondary: Cycle,
    /// Ownership acquired at the local node (home = local).
    pub write_owned_local: Cycle,
    /// Ownership acquired at the home node (home ≠ local).
    pub write_owned_home: Cycle,
    /// Ownership acquired from a dirty remote third-party node.
    pub write_owned_remote: Cycle,
    /// Ownership when home is local but line dirty in a remote cache.
    pub write_owned_remote_home_local: Cycle,

    /// Extra cycles, beyond the ownership grant, until all invalidation
    /// acknowledgements reach the requester. The home sends invalidations
    /// while processing the request, so acks arrive shortly after the
    /// grant; a release under RC waits for them.
    pub inval_roundtrip: Cycle,

    /// Uncached (cache-bypassing) access latencies; the paper says these are
    /// five to ten cycles less than the cached-fill latencies because there
    /// is no fill overhead.
    pub uncached_read_local: Cycle,
    /// Uncached read serviced at a non-local home node.
    pub uncached_read_home: Cycle,
    /// Uncached write to local memory.
    pub uncached_write_local: Cycle,
    /// Uncached write to a non-local home node.
    pub uncached_write_home: Cycle,

    /// Cycles the processor is locked out of the primary cache while a
    /// prefetched/filled line is written into it (four words, §5.1).
    pub primary_fill_lockout: Cycle,
}

impl LatencyTable {
    /// The paper's Table 1 values (DASH prototype derived).
    pub fn dash() -> Self {
        LatencyTable {
            read_primary_hit: Cycle(1),
            read_fill_secondary: Cycle(14),
            read_fill_local: Cycle(26),
            read_fill_home: Cycle(72),
            read_fill_remote: Cycle(90),
            read_fill_remote_home_local: Cycle(78),
            write_owned_secondary: Cycle(2),
            write_owned_local: Cycle(18),
            write_owned_home: Cycle(64),
            write_owned_remote: Cycle(82),
            write_owned_remote_home_local: Cycle(70),
            inval_roundtrip: Cycle(20),
            uncached_read_local: Cycle(20),
            uncached_read_home: Cycle(64),
            uncached_write_local: Cycle(12),
            uncached_write_home: Cycle(56),
            primary_fill_lockout: Cycle(4),
        }
    }

    /// Every latency equal to `c` (and no invalidation-ack surcharge).
    ///
    /// Used by the memory-model verifier: with all classes costing the
    /// same, the *value*-visible behaviour of a run depends only on the
    /// order events are scheduled in, never on which cache level happened
    /// to service an access — so enumerating event-queue tie-breaks
    /// enumerates exactly the machine's memory-ordering nondeterminism.
    pub fn uniform(c: Cycle) -> Self {
        LatencyTable {
            read_primary_hit: c,
            read_fill_secondary: c,
            read_fill_local: c,
            read_fill_home: c,
            read_fill_remote: c,
            read_fill_remote_home_local: c,
            write_owned_secondary: c,
            write_owned_local: c,
            write_owned_home: c,
            write_owned_remote: c,
            write_owned_remote_home_local: c,
            inval_roundtrip: Cycle::ZERO,
            uncached_read_local: c,
            uncached_read_home: c,
            uncached_write_local: c,
            uncached_write_home: c,
            primary_fill_lockout: Cycle::ZERO,
        }
    }
}

impl Default for LatencyTable {
    fn default() -> Self {
        Self::dash()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let t = LatencyTable::dash();
        // Read operations (paper Table 1).
        assert_eq!(t.read_primary_hit, Cycle(1));
        assert_eq!(t.read_fill_secondary, Cycle(14));
        assert_eq!(t.read_fill_local, Cycle(26));
        assert_eq!(t.read_fill_home, Cycle(72));
        assert_eq!(t.read_fill_remote, Cycle(90));
        // Write operations.
        assert_eq!(t.write_owned_secondary, Cycle(2));
        assert_eq!(t.write_owned_local, Cycle(18));
        assert_eq!(t.write_owned_home, Cycle(64));
        assert_eq!(t.write_owned_remote, Cycle(82));
    }

    #[test]
    fn latencies_are_monotone_with_distance() {
        let t = LatencyTable::dash();
        assert!(t.read_primary_hit < t.read_fill_secondary);
        assert!(t.read_fill_secondary < t.read_fill_local);
        assert!(t.read_fill_local < t.read_fill_home);
        assert!(t.read_fill_home < t.read_fill_remote);
        assert!(t.write_owned_secondary < t.write_owned_local);
        assert!(t.write_owned_local < t.write_owned_home);
        assert!(t.write_owned_home < t.write_owned_remote);
    }

    #[test]
    fn uncached_is_cheaper_than_cached_fill() {
        // "The latencies for non-cached shared data are five to ten cycles
        // less than those in Table 1" (§3).
        let t = LatencyTable::dash();
        let read_delta = t.read_fill_local.as_u64() - t.uncached_read_local.as_u64();
        assert!((5..=10).contains(&read_delta), "delta {read_delta}");
        let home_delta = t.read_fill_home.as_u64() - t.uncached_read_home.as_u64();
        assert!((5..=10).contains(&home_delta), "delta {home_delta}");
        let write_delta = t.write_owned_local.as_u64() - t.uncached_write_local.as_u64();
        assert!((5..=10).contains(&write_delta), "delta {write_delta}");
    }

    #[test]
    fn default_is_dash() {
        assert_eq!(LatencyTable::default(), LatencyTable::dash());
    }
}
