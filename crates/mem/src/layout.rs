//! Shared-address-space layout and page placement.
//!
//! The paper's applications control data placement explicitly: MP3D
//! allocates each processor's particles from that processor's node memory,
//! LU allocates owned columns locally, and everything without a directive is
//! distributed round-robin across nodes page by page (§2.3). The
//! [`AddressSpaceBuilder`] reproduces those semantics: workloads allocate
//! named segments with a [`Placement`], and the resulting [`PageMap`] tells
//! the memory system which node is the *home* of every page.

use std::fmt;

use crate::addr::{Addr, NodeId, PAGE_BYTES};

/// Where the pages of a segment live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// All pages homed on one node (the "allocate from local shared memory"
    /// directive the applications use for per-processor data).
    Local(NodeId),
    /// Pages distributed round-robin across all nodes — the default policy
    /// for data without directives.
    RoundRobin,
}

/// A contiguous allocation returned by the builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    base: Addr,
    len: u64,
}

impl Segment {
    /// First byte of the segment.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Size in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True for zero-length segments.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Address of byte `offset` within the segment.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= len` (the segment does not contain that byte).
    pub fn at(&self, offset: u64) -> Addr {
        assert!(
            offset < self.len,
            "offset {offset} beyond segment of {} bytes",
            self.len
        );
        self.base.offset(offset)
    }

    /// Address of element `index` in an array of `stride`-byte records.
    ///
    /// # Panics
    ///
    /// Panics if the element extends past the end of the segment.
    pub fn elem(&self, index: u64, stride: u64) -> Addr {
        let off = index * stride;
        assert!(
            off + stride <= self.len,
            "element {index} (stride {stride}) beyond segment of {} bytes",
            self.len
        );
        self.base.offset(off)
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, +{})", self.base, self.len)
    }
}

/// Maps every page of the shared space to its home node.
#[derive(Debug, Clone)]
pub struct PageMap {
    homes: Vec<NodeId>,
    nodes: usize,
}

impl PageMap {
    /// Rebuilds a page map from explicit per-page homes (e.g. from a
    /// recorded trace).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or any home is out of range.
    pub fn from_homes(homes: Vec<NodeId>, nodes: usize) -> Self {
        assert!(nodes > 0, "page map needs at least one node");
        assert!(homes.iter().all(|h| h.0 < nodes), "page home out of range");
        PageMap { homes, nodes }
    }

    /// Per-page home nodes (index = page number).
    pub fn homes(&self) -> &[NodeId] {
        &self.homes
    }

    /// Home node of `addr`'s page.
    ///
    /// Pages beyond the allocated space fall back to round-robin by page
    /// number, so stray addresses still have a well-defined home.
    pub fn home_of(&self, addr: Addr) -> NodeId {
        let page = addr.page();
        self.homes
            .get(page.0 as usize)
            .copied()
            .unwrap_or(NodeId(page.0 as usize % self.nodes))
    }

    /// Number of mapped pages.
    pub fn pages(&self) -> usize {
        self.homes.len()
    }

    /// Number of nodes in the machine.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Total shared bytes that have been allocated.
    pub fn allocated_bytes(&self) -> u64 {
        self.homes.len() as u64 * PAGE_BYTES
    }
}

/// Incrementally builds the shared address space for a workload.
///
/// Each allocation is rounded up to whole pages (placement is a per-page
/// property) and segments never share a page, so a `Local` directive for one
/// structure can't accidentally re-home another.
///
/// # Example
///
/// ```
/// use dashlat_mem::addr::NodeId;
/// use dashlat_mem::layout::{AddressSpaceBuilder, Placement};
///
/// let mut b = AddressSpaceBuilder::new(4);
/// let particles = b.alloc("particles-p0", 10_000, Placement::Local(NodeId(0)));
/// let cells = b.alloc("cells", 100_000, Placement::RoundRobin);
/// let map = b.build();
/// assert_eq!(map.home_of(particles.base()), NodeId(0));
/// assert!(map.home_of(cells.base()).0 < 4);
/// ```
#[derive(Debug)]
pub struct AddressSpaceBuilder {
    nodes: usize,
    homes: Vec<NodeId>,
    rr_next: usize,
    segments: Vec<(String, Segment)>,
}

impl AddressSpaceBuilder {
    /// Starts a layout for a machine with `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or exceeds [`NodeId::MAX_NODES`].
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0 && nodes <= crate::addr::NodeId::MAX_NODES);
        AddressSpaceBuilder {
            nodes,
            homes: Vec::new(),
            rr_next: 0,
            segments: Vec::new(),
        }
    }

    /// Allocates `bytes` (rounded up to whole pages) with the given
    /// placement, returning the segment.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero or a `Local` placement names a node outside
    /// the machine.
    pub fn alloc(&mut self, name: &str, bytes: u64, placement: Placement) -> Segment {
        assert!(bytes > 0, "zero-byte allocation for segment {name:?}");
        if let Placement::Local(n) = placement {
            assert!(n.0 < self.nodes, "local placement on nonexistent {n}");
        }
        let pages = bytes.div_ceil(PAGE_BYTES);
        let base = Addr(self.homes.len() as u64 * PAGE_BYTES);
        for _ in 0..pages {
            let home = match placement {
                Placement::Local(n) => n,
                Placement::RoundRobin => {
                    let n = NodeId(self.rr_next);
                    self.rr_next = (self.rr_next + 1) % self.nodes;
                    n
                }
            };
            self.homes.push(home);
        }
        let seg = Segment { base, len: bytes };
        self.segments.push((name.to_owned(), seg));
        seg
    }

    /// Allocates one segment per node, each `bytes_per_node` long and homed
    /// on its node — the common "per-processor local arrays" pattern.
    pub fn alloc_per_node(&mut self, name: &str, bytes_per_node: u64) -> Vec<Segment> {
        (0..self.nodes)
            .map(|n| {
                self.alloc(
                    &format!("{name}-n{n}"),
                    bytes_per_node,
                    Placement::Local(NodeId(n)),
                )
            })
            .collect()
    }

    /// Total bytes allocated so far (page granular).
    pub fn allocated_bytes(&self) -> u64 {
        self.homes.len() as u64 * PAGE_BYTES
    }

    /// Finishes the layout.
    pub fn build(self) -> PageMap {
        PageMap {
            homes: self.homes,
            nodes: self.nodes,
        }
    }

    /// Named segments allocated so far (for debugging/reporting).
    pub fn segments(&self) -> impl Iterator<Item = (&str, Segment)> {
        self.segments.iter().map(|(n, s)| (n.as_str(), *s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_placement_homes_all_pages() {
        let mut b = AddressSpaceBuilder::new(8);
        let seg = b.alloc("x", 3 * PAGE_BYTES + 1, Placement::Local(NodeId(5)));
        let map = b.build();
        for off in [0, PAGE_BYTES, 2 * PAGE_BYTES, 3 * PAGE_BYTES] {
            assert_eq!(map.home_of(seg.base().offset(off)), NodeId(5));
        }
    }

    #[test]
    fn round_robin_cycles_nodes() {
        let mut b = AddressSpaceBuilder::new(4);
        let seg = b.alloc("y", 8 * PAGE_BYTES, Placement::RoundRobin);
        let map = b.build();
        let homes: Vec<usize> = (0..8)
            .map(|p| map.home_of(seg.base().offset(p * PAGE_BYTES)).0)
            .collect();
        assert_eq!(homes, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn round_robin_continues_across_allocations() {
        let mut b = AddressSpaceBuilder::new(4);
        b.alloc("a", PAGE_BYTES, Placement::RoundRobin); // takes node 0
        let seg = b.alloc("b", PAGE_BYTES, Placement::RoundRobin);
        let map = b.build();
        assert_eq!(map.home_of(seg.base()), NodeId(1));
    }

    #[test]
    fn segments_do_not_share_pages() {
        let mut b = AddressSpaceBuilder::new(2);
        let a = b.alloc("a", 10, Placement::Local(NodeId(0)));
        let c = b.alloc("c", 10, Placement::Local(NodeId(1)));
        assert_eq!(c.base().0, a.base().0 + PAGE_BYTES);
        let map = b.build();
        assert_eq!(map.home_of(a.base()), NodeId(0));
        assert_eq!(map.home_of(c.base()), NodeId(1));
    }

    #[test]
    fn elem_addressing() {
        let mut b = AddressSpaceBuilder::new(1);
        let seg = b.alloc("arr", 64, Placement::RoundRobin);
        assert_eq!(seg.elem(0, 16), seg.base());
        assert_eq!(seg.elem(3, 16), seg.base().offset(48));
    }

    #[test]
    #[should_panic(expected = "beyond segment")]
    fn elem_out_of_bounds_panics() {
        let mut b = AddressSpaceBuilder::new(1);
        let seg = b.alloc("arr", 64, Placement::RoundRobin);
        let _ = seg.elem(4, 16);
    }

    #[test]
    fn per_node_allocation() {
        let mut b = AddressSpaceBuilder::new(3);
        let segs = b.alloc_per_node("loc", 100);
        let map = b.build();
        assert_eq!(segs.len(), 3);
        for (i, s) in segs.iter().enumerate() {
            assert_eq!(map.home_of(s.base()), NodeId(i));
        }
    }

    #[test]
    fn unmapped_pages_fall_back_round_robin() {
        let b = AddressSpaceBuilder::new(4);
        let map = b.build();
        assert_eq!(map.home_of(Addr(0)), NodeId(0));
        assert_eq!(map.home_of(Addr(PAGE_BYTES)), NodeId(1));
        assert_eq!(map.home_of(Addr(5 * PAGE_BYTES)), NodeId(1));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every address inside an allocated segment has a home within the
        /// machine, and Local segments are homed exactly where requested.
        #[test]
        fn homes_are_valid(nodes in 1usize..16,
                           sizes in proptest::collection::vec(1u64..20_000, 1..10),
                           locals in proptest::collection::vec(any::<bool>(), 10)) {
            let mut b = AddressSpaceBuilder::new(nodes);
            let mut segs = Vec::new();
            for (i, &sz) in sizes.iter().enumerate() {
                let placement = if locals[i % locals.len()] {
                    Placement::Local(NodeId(i % nodes))
                } else {
                    Placement::RoundRobin
                };
                segs.push((b.alloc(&format!("s{i}"), sz, placement), placement));
            }
            let map = b.build();
            for (seg, placement) in segs {
                for probe in [0, seg.len() / 2, seg.len() - 1] {
                    let home = map.home_of(seg.at(probe));
                    prop_assert!(home.0 < nodes);
                    if let Placement::Local(n) = placement {
                        prop_assert_eq!(home, n);
                    }
                }
            }
        }
    }
}
