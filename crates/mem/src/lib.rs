#![deny(missing_docs)]

//! DASH-like memory-system substrate for the `dash-latency` simulator.
//!
//! This crate models the memory hierarchy of the paper's machine (§2.1):
//! per-node write-through primary and write-back lockup-free secondary
//! caches with 16-byte lines, a 16-entry write buffer and a 16-entry
//! prefetch buffer, physically distributed memory with round-robin page
//! placement (plus node-local allocation directives), an invalidating
//! full-map directory protocol, and FCFS queueing contention on node buses,
//! network ports and directory controllers.
//!
//! The central type is [`system::MemorySystem`]: the processor model asks it
//! to service an access at a given simulated time and receives the
//! completion time, the Table 1 service class, and the coherence actions
//! performed.
//!
//! # Example
//!
//! ```
//! use dashlat_mem::addr::NodeId;
//! use dashlat_mem::layout::{AddressSpaceBuilder, Placement};
//! use dashlat_mem::system::{AccessKind, MemConfig, MemorySystem, ServiceClass};
//! use dashlat_sim::Cycle;
//!
//! let mut space = AddressSpaceBuilder::new(4);
//! let data = space.alloc("data", 4096, Placement::Local(NodeId(0)));
//! let mut cfg = MemConfig::dash_scaled(4);
//! cfg.contention = false;
//! let mut mem = MemorySystem::new(cfg, space.build());
//!
//! // A cold read from the local node's memory takes 26 cycles (Table 1).
//! let r = mem.access(Cycle(0), NodeId(0), data.base(), AccessKind::Read);
//! assert_eq!(r.class, ServiceClass::LocalMem);
//! assert_eq!(r.done_at, Cycle(26));
//! ```

pub mod addr;
pub mod buffers;
pub mod cache;
pub mod contention;
pub mod directory;
pub mod latency;
pub mod layout;
pub mod mesh;
pub mod system;

pub use addr::{Addr, LineAddr, NodeId, NodeSet, LINE_BYTES, PAGE_BYTES};
pub use buffers::{
    PendingPrefetch, PendingWrite, PrefetchBuffer, WriteBuffer, WriteKind, BUFFER_ENTRIES,
};
pub use cache::{Cache, Eviction, LineState};
pub use contention::NetworkModel;
pub use latency::LatencyTable;
pub use layout::{AddressSpaceBuilder, PageMap, Placement, Segment};
pub use mesh::Mesh;
pub use system::{
    AccessKind, AccessRecord, AccessResult, MemConfig, MemStats, MemorySystem, ServiceClass,
};
