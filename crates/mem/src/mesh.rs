//! 2-D mesh interconnect model.
//!
//! The paper's machine uses "a low-latency scalable interconnection
//! network" (DASH's is a pair of 2-D wormhole-routed meshes). The default
//! contention model charges queueing at each node's network ports; this
//! module provides the finer alternative: a 2-D mesh with
//! dimension-ordered (X then Y) routing where every *directed link* is a
//! serially shared resource, so messages crossing the same link queue
//! behind each other and hot links become visible.
//!
//! The Table 1 latencies already include uncontended network transit time;
//! the mesh therefore only contributes *queueing* delay, exactly like the
//! port model — just at link rather than endpoint granularity.

use dashlat_sim::Cycle;

use crate::addr::NodeId;
use crate::contention::Resource;

/// Direction of a mesh link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    East,
    West,
    North,
    South,
}

impl Dir {
    fn index(self) -> usize {
        match self {
            Dir::East => 0,
            Dir::West => 1,
            Dir::North => 2,
            Dir::South => 3,
        }
    }
}

/// A 2-D mesh of directed links with dimension-ordered routing.
///
/// Nodes are numbered row-major: node `i` sits at
/// `(i % width, i / width)`.
#[derive(Debug, Clone)]
pub struct Mesh {
    width: usize,
    height: usize,
    /// `links[node * 4 + dir]`: the outgoing link of `node` in `dir`.
    links: Vec<Resource>,
    /// Cycles a line-sized message occupies each link.
    occupancy: Cycle,
    /// `coords[node]` = grid `(x, y)`, precomputed so routing never
    /// divides by the mesh width on the per-message path.
    coords: Vec<(u32, u32)>,
}

impl Mesh {
    /// Builds the smallest mesh that fits `nodes` (width = ⌈√nodes⌉).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: usize, occupancy: Cycle) -> Self {
        assert!(nodes > 0, "mesh needs at least one node");
        let width = (nodes as f64).sqrt().ceil() as usize;
        let height = nodes.div_ceil(width);
        let coords = (0..width * height)
            .map(|n| ((n % width) as u32, (n / width) as u32))
            .collect();
        Mesh {
            width,
            height,
            links: vec![Resource::default(); width * height * 4],
            occupancy,
            coords,
        }
    }

    /// Grid position of a node.
    #[inline]
    fn pos(&self, n: NodeId) -> (usize, usize) {
        let (x, y) = self.coords[n.0];
        (x as usize, y as usize)
    }

    /// Mesh dimensions `(width, height)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Number of hops of the dimension-ordered route between two nodes
    /// (the Manhattan distance).
    #[inline]
    pub fn hops(&self, from: NodeId, to: NodeId) -> usize {
        let (fx, fy) = self.pos(from);
        let (tx, ty) = self.pos(to);
        fx.abs_diff(tx) + fy.abs_diff(ty)
    }

    /// Sends a line-sized message `from → to` starting at `now`;
    /// returns the total queueing delay over the route's links
    /// (dimension-ordered: X first, then Y). Zero for `from == to`.
    pub fn send(&mut self, now: Cycle, from: NodeId, to: NodeId) -> Cycle {
        self.send_occupying(now, from, to, self.occupancy)
    }

    /// Like [`Mesh::send`], but the message holds each link for an explicit
    /// `occupancy` — used by fault injection to model a delayed packet
    /// congesting every link it crosses.
    pub fn send_occupying(
        &mut self,
        now: Cycle,
        from: NodeId,
        to: NodeId,
        occupancy: Cycle,
    ) -> Cycle {
        if from == to {
            return Cycle::ZERO;
        }
        let (mut x, mut y) = self.pos(from);
        let (tx, ty) = self.pos(to);
        let mut t = now;
        let mut delay = Cycle::ZERO;
        while x != tx {
            let (dir, nx) = if x < tx {
                (Dir::East, x + 1)
            } else {
                (Dir::West, x - 1)
            };
            let node = y * self.width + x;
            let d = self.links[node * 4 + dir.index()].acquire(t, occupancy);
            delay += d;
            t += d;
            x = nx;
        }
        while y != ty {
            let (dir, ny) = if y < ty {
                (Dir::South, y + 1)
            } else {
                (Dir::North, y - 1)
            };
            let node = y * self.width + x;
            let d = self.links[node * 4 + dir.index()].acquire(t, occupancy);
            delay += d;
            t += d;
            y = ny;
        }
        delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_cover_the_node_count() {
        for n in [1usize, 2, 4, 9, 15, 16, 17, 64] {
            let m = Mesh::new(n, Cycle(4));
            let (w, h) = m.dims();
            assert!(w * h >= n, "{n} nodes don't fit a {w}x{h} mesh");
        }
        let m = Mesh::new(16, Cycle(4));
        assert_eq!(m.dims(), (4, 4));
    }

    #[test]
    fn hops_are_manhattan_distance() {
        let m = Mesh::new(16, Cycle(4)); // 4x4
        assert_eq!(m.hops(NodeId(0), NodeId(0)), 0);
        assert_eq!(m.hops(NodeId(0), NodeId(3)), 3); // same row
        assert_eq!(m.hops(NodeId(0), NodeId(12)), 3); // same column
        assert_eq!(m.hops(NodeId(0), NodeId(15)), 6); // opposite corner
        assert_eq!(m.hops(NodeId(5), NodeId(10)), 2);
    }

    #[test]
    fn local_send_is_free() {
        let mut m = Mesh::new(16, Cycle(4));
        assert_eq!(m.send(Cycle(0), NodeId(7), NodeId(7)), Cycle::ZERO);
    }

    #[test]
    fn uncontended_send_has_no_queueing() {
        let mut m = Mesh::new(16, Cycle(4));
        assert_eq!(m.send(Cycle(0), NodeId(0), NodeId(15)), Cycle::ZERO);
    }

    #[test]
    fn messages_sharing_a_link_queue() {
        let mut m = Mesh::new(16, Cycle(4));
        // 0 -> 3 and 1 -> 3 share the links 1->2 and 2->3 (X routing).
        assert_eq!(m.send(Cycle(0), NodeId(0), NodeId(3)), Cycle::ZERO);
        let d = m.send(Cycle(0), NodeId(1), NodeId(3));
        assert!(d > Cycle::ZERO, "no queueing on the shared row links");
    }

    #[test]
    fn disjoint_routes_do_not_interfere() {
        let mut m = Mesh::new(16, Cycle(4));
        assert_eq!(m.send(Cycle(0), NodeId(0), NodeId(3)), Cycle::ZERO);
        // Row 1 is untouched by the first message.
        assert_eq!(m.send(Cycle(0), NodeId(4), NodeId(7)), Cycle::ZERO);
    }

    #[test]
    fn dimension_order_goes_x_first() {
        let mut m = Mesh::new(16, Cycle(4));
        // 0 -> 5 routes 0->1 (east) then 1->5 (south). A prior message on
        // 0's south link must NOT delay it.
        assert_eq!(m.send(Cycle(0), NodeId(0), NodeId(4)), Cycle::ZERO); // uses 0's south link
        let d = m.send(Cycle(0), NodeId(0), NodeId(5));
        assert_eq!(
            d,
            Cycle::ZERO,
            "X-first routing should avoid 0's south link"
        );
        // But a message using 0's east link does delay it.
        let d2 = m.send(Cycle(0), NodeId(0), NodeId(1));
        assert!(d2 > Cycle::ZERO);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Total queueing is finite and monotone: issuing the same message
        /// set twice in a row can only see equal-or-larger delays, and
        /// every send's delay is bounded by (messages so far) × occupancy ×
        /// hops.
        #[test]
        fn delays_are_bounded(sends in proptest::collection::vec((0usize..16, 0usize..16), 1..100)) {
            let occ = 4u64;
            let mut m = Mesh::new(16, Cycle(occ));
            for (i, &(f, t)) in sends.iter().enumerate() {
                let hops = m.hops(NodeId(f), NodeId(t)) as u64;
                let d = m.send(Cycle::ZERO, NodeId(f), NodeId(t));
                prop_assert!(
                    d.as_u64() <= (i as u64 + 1) * occ * hops.max(1),
                    "send {i} delayed {d} beyond the all-conflict bound"
                );
            }
        }
    }
}
